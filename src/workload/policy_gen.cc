#include "workload/policy_gen.h"

#include <algorithm>
#include <functional>

namespace spstream {

namespace {

SchemaPtr JoinSchema(const std::string& name) {
  return MakeSchema(name, {Field{"key", ValueType::kInt64},
                           Field{"payload", ValueType::kInt64}});
}

/// Emit one punctuated stream: segments of `k` tuples, each preceded by an
/// sp with the provided per-segment policy roles.
std::vector<StreamElement> EmitStream(
    const std::string& stream_name, size_t num_tuples, int k,
    const std::function<RoleSet(size_t segment)>& segment_policy,
    size_t key_cardinality, Timestamp start_ts, Rng* rng) {
  std::vector<StreamElement> out;
  out.reserve(num_tuples + num_tuples / static_cast<size_t>(k) + 1);
  Timestamp ts = start_ts;
  size_t emitted = 0, segment = 0;
  while (emitted < num_tuples) {
    const size_t block = std::min<size_t>(static_cast<size_t>(k),
                                          num_tuples - emitted);
    SecurityPunctuation sp(Pattern::Literal(stream_name), Pattern::Any(),
                           Pattern::Any(), Pattern::Any(), Sign::kPositive,
                           /*immutable=*/false, ts);
    sp.SetResolvedRoles(segment_policy(segment));
    out.emplace_back(std::move(sp));
    for (size_t i = 0; i < block; ++i) {
      const int64_t key =
          static_cast<int64_t>(rng->NextBounded(key_cardinality));
      Tuple t(0, static_cast<TupleId>(emitted),
              {Value(key), Value(static_cast<int64_t>(emitted))}, ts);
      out.emplace_back(std::move(t));
      ts += 1;
      ++emitted;
    }
    ++segment;
  }
  return out;
}

}  // namespace

JoinWorkload GenerateJoinWorkload(RoleCatalog* catalog,
                                  const JoinWorkloadOptions& options) {
  Rng rng(options.seed);
  const RoleId shared = catalog->RegisterRole("g_shared");
  // Private padding pools.
  std::vector<RoleId> left_private, right_private;
  for (size_t i = 0; i < std::max<size_t>(1, options.roles_per_policy);
       ++i) {
    left_private.push_back(
        catalog->RegisterRole("lp" + std::to_string(i + 1)));
    right_private.push_back(
        catalog->RegisterRole("rp" + std::to_string(i + 1)));
  }

  auto pad = [&](RoleSet base, const std::vector<RoleId>& pool) {
    while (base.Count() < options.roles_per_policy && !pool.empty()) {
      base.Insert(pool[rng.NextBounded(pool.size())]);
    }
    return base;
  };

  JoinWorkload wl;
  wl.left_schema = JoinSchema(options.left_stream);
  wl.right_schema = JoinSchema(options.right_stream);
  wl.left = EmitStream(
      options.left_stream, options.tuples_per_stream, options.tuples_per_sp,
      [&](size_t) { return pad(RoleSet::Of(shared), left_private); },
      options.join_key_cardinality, options.start_ts, &rng);
  wl.right = EmitStream(
      options.right_stream, options.tuples_per_stream, options.tuples_per_sp,
      [&](size_t) {
        if (rng.NextBool(options.sp_selectivity)) {
          return pad(RoleSet::Of(shared), right_private);
        }
        RoleSet only_private =
            RoleSet::Of(right_private[rng.NextBounded(
                right_private.size())]);
        return pad(std::move(only_private), right_private);
      },
      options.join_key_cardinality, options.start_ts, &rng);
  return wl;
}

std::vector<RoleSet> RandomQueryPredicates(size_t count, size_t roles_each,
                                           size_t pool, Rng* rng) {
  std::vector<RoleSet> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    RoleSet roles;
    while (roles.Count() < std::min(roles_each, pool)) {
      roles.Insert(static_cast<RoleId>(rng->NextBounded(pool)));
    }
    out.push_back(std::move(roles));
  }
  return out;
}

}  // namespace spstream
