#include "workload/health_streams.h"

#include <algorithm>

namespace spstream {

HospitalRoles RegisterHospitalRoles(RoleCatalog* catalog) {
  HospitalRoles r;
  r.cardiologist = catalog->RegisterRole("C");
  r.general_physician = catalog->RegisterRole("GP");
  r.doctor = catalog->RegisterRole("D");
  r.dermatologist = catalog->RegisterRole("DM");
  r.nurse_on_duty = catalog->RegisterRole("ND");
  r.employee = catalog->RegisterRole("E");
  return r;
}

SchemaPtr HeartRateSchema() {
  return MakeSchema("HeartRate", {Field{"patient_id", ValueType::kInt64},
                                  Field{"beats_per_min", ValueType::kInt64}});
}

SchemaPtr BodyTemperatureSchema() {
  return MakeSchema("BodyTemperature",
                    {Field{"patient_id", ValueType::kInt64},
                     Field{"temperature", ValueType::kDouble}});
}

SchemaPtr BreathingRateSchema() {
  return MakeSchema("BreathingRate",
                    {Field{"patient_id", ValueType::kInt64},
                     Field{"frequency", ValueType::kInt64},
                     Field{"depth", ValueType::kInt64}});
}

namespace {

struct PatientState {
  int emergency_remaining = 0;  // updates left in escalated state
};

SecurityPunctuation PatientSp(const std::string& stream, TupleId patient,
                              const Pattern& role_pattern,
                              const RoleSet& roles, Timestamp ts) {
  SecurityPunctuation sp(Pattern::Literal(stream),
                         Pattern::Literal(std::to_string(patient)),
                         Pattern::Any(), role_pattern, Sign::kPositive,
                         /*immutable=*/false, ts);
  sp.SetResolvedRoles(roles);
  return sp;
}

}  // namespace

HealthWorkload GenerateHealthWorkload(RoleCatalog* catalog,
                                      const HealthStreamOptions& options) {
  const HospitalRoles roles = RegisterHospitalRoles(catalog);
  Rng rng(options.seed);
  HealthWorkload wl;

  // Example stream-level policy: only cardiologists query HeartRate.
  {
    SecurityPunctuation stream_sp(
        Pattern::Literal("HeartRate"), Pattern::Any(), Pattern::Any(),
        Pattern::Literal("C"), Sign::kPositive, /*immutable=*/false,
        options.start_ts - 1);
    stream_sp.SetResolvedRoles(RoleSet::Of(roles.cardiologist));
    wl.heart_rate.emplace_back(std::move(stream_sp));
  }
  // Example attribute-level policy on temperature: D or ND only.
  {
    SecurityPunctuation attr_sp(
        Pattern::Literal("BodyTemperature"), Pattern::Any(),
        Pattern::Literal("temperature"), Pattern::Compile("D|ND").value(),
        Sign::kPositive, /*immutable=*/false, options.start_ts - 1);
    attr_sp.SetResolvedRoles(RoleSet::FromIds(
        {roles.doctor, roles.nurse_on_duty}));
    wl.body_temperature.emplace_back(std::move(attr_sp));
  }

  const RoleSet gp_only = RoleSet::Of(roles.general_physician);
  RoleSet escalated = gp_only;
  escalated.Insert(roles.employee);  // ER staff gain access in emergencies

  std::vector<PatientState> patients(options.num_patients);
  Timestamp ts = options.start_ts;

  for (size_t round = 0; round < options.updates_per_patient; ++round) {
    for (size_t p = 0; p < options.num_patients; ++p) {
      const TupleId pid =
          options.first_patient_id + static_cast<TupleId>(p);
      PatientState& st = patients[p];
      const bool spike = rng.NextBool(options.emergency_prob);
      if (spike) st.emergency_remaining = 8;
      const bool emergency = st.emergency_remaining > 0;
      if (st.emergency_remaining > 0) --st.emergency_remaining;

      const RoleSet& policy = emergency ? escalated : gp_only;
      const Pattern role_pattern =
          emergency ? Pattern::Compile("GP|E").value()
                    : Pattern::Literal("GP");

      // Tuple-level policy for this patient precedes each of his updates
      // (Example 2: the patient controls who sees his vitals; an emergency
      // escalates the policy via a newer-ts sp).
      wl.heart_rate.push_back(
          PatientSp("HeartRate", pid, role_pattern, policy, ts));
      const int64_t bpm =
          emergency ? 150 + static_cast<int64_t>(rng.NextBounded(40))
                    : 60 + static_cast<int64_t>(rng.NextBounded(40));
      wl.heart_rate.push_back(
          Tuple(0, pid, {Value(static_cast<int64_t>(pid)), Value(bpm)}, ts));

      wl.body_temperature.push_back(
          PatientSp("BodyTemperature", pid, role_pattern, policy, ts));
      const double temp = emergency ? 103.0 + rng.NextDouble() * 3
                                    : 97.5 + rng.NextDouble() * 2;
      wl.body_temperature.push_back(Tuple(
          1, pid, {Value(static_cast<int64_t>(pid)), Value(temp)}, ts));

      wl.breathing_rate.push_back(
          PatientSp("BreathingRate", pid, role_pattern, policy, ts));
      const int64_t freq =
          emergency ? 25 + static_cast<int64_t>(rng.NextBounded(15))
                    : 8 + static_cast<int64_t>(rng.NextBounded(8));
      wl.breathing_rate.push_back(
          Tuple(2, pid,
                {Value(static_cast<int64_t>(pid)), Value(freq),
                 Value(static_cast<int64_t>(20 + rng.NextBounded(30)))},
                ts));
      ts += 1;
    }
  }
  return wl;
}

}  // namespace spstream
