// Synthetic road network + movement model: our substitute for the
// Brinkhoff network-based moving-objects generator the paper used (the
// original is a Java tool over proprietary map files). A jittered grid with
// random diagonals gives an irregular connected graph; objects random-walk
// along edges at per-object speeds, emitting interpolated positions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace spstream {

struct RoadNetworkOptions {
  int grid_width = 20;       ///< intersections per row
  int grid_height = 20;      ///< rows
  double cell_size = 100.0;  ///< nominal intersection spacing (meters)
  double jitter = 25.0;      ///< max random displacement of an intersection
  double diagonal_prob = 0.15;  ///< chance of an extra diagonal edge
  uint64_t seed = 7;
};

/// \brief Undirected road graph with embedded coordinates.
class RoadNetwork {
 public:
  struct Node {
    double x = 0, y = 0;
    std::vector<int> neighbors;
  };

  /// \brief Build the jittered-grid network.
  static RoadNetwork Grid(const RoadNetworkOptions& options);

  const Node& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  size_t size() const { return nodes_.size(); }

  /// \brief Width/height of the embedded bounding box.
  double extent_x() const { return extent_x_; }
  double extent_y() const { return extent_y_; }

  /// \brief Movement state of one object travelling the network.
  struct Travel {
    int from = 0;
    int to = 0;
    double progress = 0;  ///< 0..1 along (from -> to)
    double speed = 10.0;  ///< meters per tick
  };

  /// \brief Start a random journey.
  Travel StartTravel(Rng* rng) const;

  /// \brief Advance one tick; on reaching `to`, turn onto a random next
  /// edge (avoiding immediate backtracking when possible).
  void Advance(Travel* t, Rng* rng) const;

  /// \brief Current interpolated position.
  void Position(const Travel& t, double* x, double* y) const;

 private:
  std::vector<Node> nodes_;
  double extent_x_ = 0, extent_y_ = 0;
};

}  // namespace spstream
