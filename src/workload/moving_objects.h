// Punctuated location-update streams: moving objects that "continuously and
// selectively restrict access to their current location" (§VII.A). This is
// the workload behind Figures 7 and 8.
//
// Tuples arrive in blocks of `tuples_per_sp` (the sp:tuple ratio knob):
// each block is preceded by one sp carrying the block's tuple-granularity
// policy, whose DDP names the block's object-id range — so the same
// workload is addressable both positionally (punctuation semantics) and by
// object id (the store-and-probe baseline's policy table).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "security/role_catalog.h"
#include "stream/stream_element.h"
#include "workload/road_network.h"

namespace spstream {

struct MovingObjectsOptions {
  size_t num_objects = 1000;    ///< distinct moving objects
  size_t num_updates = 10000;   ///< total location tuples to emit
  int tuples_per_sp = 10;       ///< sp:tuple ratio 1/k (1 = unique policies)
  size_t roles_per_policy = 1;  ///< |R|: role authorizations per policy
  size_t role_pool = 100;       ///< roles drawn from r1..r<role_pool>
  /// Partition the object-id space into this many equal ranges, each with
  /// one fixed policy (0 = every sp draws a fresh policy). Small values
  /// model the real-world case where many objects share few policies: the
  /// sp DDP then names the whole partition, so a central policy table
  /// stores exactly `distinct_policies` rows.
  size_t distinct_policies = 0;
  uint64_t seed = 42;
  Timestamp start_ts = 1;
  Timestamp ts_step = 1;        ///< timestamp increment per tuple
  std::string stream_name = "Location";
  StreamId sid = 0;
};

/// \brief Generates the punctuated location stream.
class MovingObjectsGenerator {
 public:
  MovingObjectsGenerator(const RoleCatalog* catalog, RoadNetwork network,
                         MovingObjectsOptions options);

  /// \brief Schema: (object_id:INT64, x:DOUBLE, y:DOUBLE, speed:DOUBLE).
  static SchemaPtr LocationSchema(const std::string& stream_name);

  /// \brief Produce the full element sequence (sps interleaved with
  /// tuples). Deterministic for a given seed.
  std::vector<StreamElement> Generate();

  /// \brief Register r1..r<role_pool> into `catalog` (idempotent); returns
  /// their ids. Call before constructing the generator.
  static std::vector<RoleId> SeedRoles(RoleCatalog* catalog,
                                       size_t role_pool);

 private:
  RoleSet DrawPolicyRoles();

  const RoleCatalog* catalog_;
  RoadNetwork network_;
  MovingObjectsOptions options_;
  Rng rng_;
  std::vector<RoadNetwork::Travel> travels_;
  std::vector<RoleSet> policy_pool_;
};

}  // namespace spstream
