#include "workload/moving_objects.h"

#include <algorithm>

namespace spstream {

MovingObjectsGenerator::MovingObjectsGenerator(const RoleCatalog* catalog,
                                               RoadNetwork network,
                                               MovingObjectsOptions options)
    : catalog_(catalog),
      network_(std::move(network)),
      options_(std::move(options)),
      rng_(options_.seed) {
  travels_.reserve(options_.num_objects);
  for (size_t i = 0; i < options_.num_objects; ++i) {
    travels_.push_back(network_.StartTravel(&rng_));
  }
  if (options_.distinct_policies > 0) {
    policy_pool_.reserve(options_.distinct_policies);
    for (size_t i = 0; i < options_.distinct_policies; ++i) {
      RoleSet roles;
      while (roles.Count() < options_.roles_per_policy) {
        roles.Insert(static_cast<RoleId>(
            rng_.NextBounded(std::max<size_t>(1, options_.role_pool))));
      }
      policy_pool_.push_back(std::move(roles));
    }
  }
}

SchemaPtr MovingObjectsGenerator::LocationSchema(
    const std::string& stream_name) {
  return MakeSchema(stream_name, {Field{"object_id", ValueType::kInt64},
                                  Field{"x", ValueType::kDouble},
                                  Field{"y", ValueType::kDouble},
                                  Field{"speed", ValueType::kDouble}});
}

std::vector<RoleId> MovingObjectsGenerator::SeedRoles(RoleCatalog* catalog,
                                                      size_t role_pool) {
  return catalog->RegisterSyntheticRoles(role_pool);
}

RoleSet MovingObjectsGenerator::DrawPolicyRoles() {
  if (!policy_pool_.empty()) {
    return policy_pool_[rng_.NextBounded(policy_pool_.size())];
  }
  RoleSet roles;
  while (roles.Count() <
         std::min<size_t>(options_.roles_per_policy, options_.role_pool)) {
    roles.Insert(static_cast<RoleId>(
        rng_.NextBounded(std::max<size_t>(1, options_.role_pool))));
  }
  return roles;
}

std::vector<StreamElement> MovingObjectsGenerator::Generate() {
  std::vector<StreamElement> out;
  const int k = std::max(1, options_.tuples_per_sp);
  out.reserve(options_.num_updates + options_.num_updates / k + 1);

  Timestamp ts = options_.start_ts;
  size_t emitted = 0;
  size_t next_object = 0;

  // With a policy pool, the id space splits into equal partitions, one
  // policy each; a block's sp then names its whole partition, and blocks
  // never straddle a partition boundary.
  const size_t partitions =
      policy_pool_.empty() ? 0 : policy_pool_.size();
  const size_t partition_size =
      partitions == 0
          ? options_.num_objects
          : std::max<size_t>(1, (options_.num_objects + partitions - 1) /
                                    partitions);

  while (emitted < options_.num_updates) {
    const size_t partition_end =
        ((next_object / partition_size) + 1) * partition_size;
    const size_t block = std::min<size_t>(
        {static_cast<size_t>(k), options_.num_updates - emitted,
         options_.num_objects - next_object,
         partition_end - next_object});
    // The block covers objects [next_object, next_object + block); the
    // sp's DDP names either that range exactly, or (with a policy pool)
    // the whole partition the block belongs to.
    TupleId lo = static_cast<TupleId>(next_object);
    TupleId hi = static_cast<TupleId>(next_object + block - 1);
    RoleSet roles;
    if (partitions > 0) {
      const size_t p = next_object / partition_size;
      lo = static_cast<TupleId>(p * partition_size);
      hi = static_cast<TupleId>(
          std::min(options_.num_objects, (p + 1) * partition_size) - 1);
      roles = policy_pool_[p % policy_pool_.size()];
    } else {
      roles = DrawPolicyRoles();
    }
    Pattern tuple_pattern =
        lo == hi ? Pattern::Literal(std::to_string(lo))
                 : Pattern::Range(lo, hi);

    SecurityPunctuation sp(Pattern::Literal(options_.stream_name),
                           std::move(tuple_pattern), Pattern::Any(),
                           Pattern::Any(), Sign::kPositive,
                           /*immutable=*/false, ts);
    sp.SetResolvedRoles(std::move(roles));
    out.emplace_back(std::move(sp));

    for (size_t i = 0; i < block; ++i) {
      const size_t obj = next_object + i;
      RoadNetwork::Travel& travel = travels_[obj % travels_.size()];
      network_.Advance(&travel, &rng_);
      double x, y;
      network_.Position(travel, &x, &y);
      Tuple t(options_.sid, static_cast<TupleId>(obj),
              {Value(static_cast<int64_t>(obj)), Value(x), Value(y),
               Value(travel.speed)},
              ts);
      out.emplace_back(std::move(t));
      ts += options_.ts_step;
      ++emitted;
    }
    next_object = (next_object + block) % options_.num_objects;
  }
  return out;
}

}  // namespace spstream
