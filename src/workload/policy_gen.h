// Policy-controlled workload generators for the join experiments (Figure 9)
// and other parameterized studies: two punctuated streams whose policy
// compatibility fraction σ_sp is controlled exactly.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "security/role_catalog.h"
#include "stream/stream_element.h"

namespace spstream {

struct JoinWorkloadOptions {
  size_t tuples_per_stream = 5000;
  int tuples_per_sp = 10;      ///< sp:tuple ratio 1/k on both streams
  double sp_selectivity = 0.5; ///< σ_sp: fraction of right segments whose
                               ///  policy is compatible with left policies
  size_t join_key_cardinality = 100;  ///< distinct join-key values
  size_t roles_per_policy = 1;        ///< extra private roles per policy
  uint64_t seed = 42;
  Timestamp start_ts = 1;
  std::string left_stream = "s1";
  std::string right_stream = "s2";
};

struct JoinWorkload {
  std::vector<StreamElement> left;
  std::vector<StreamElement> right;
  SchemaPtr left_schema;
  SchemaPtr right_schema;
};

/// \brief Build the two streams. Construction: one designated *shared* role
/// g; every left policy contains g (plus private padding roles); each right
/// segment's policy contains g with probability σ_sp, otherwise only
/// right-private roles. Tuple-pair policy compatibility is then exactly
/// σ_sp in expectation. Registers the needed roles into `catalog`.
JoinWorkload GenerateJoinWorkload(RoleCatalog* catalog,
                                  const JoinWorkloadOptions& options);

/// \brief Roles used by a stream of query specifiers: `count` random role
/// sets of `roles_each` roles drawn from the first `pool` catalog roles.
std::vector<RoleSet> RandomQueryPredicates(size_t count, size_t roles_each,
                                           size_t pool, Rng* rng);

}  // namespace spstream
