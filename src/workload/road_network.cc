#include "workload/road_network.h"

#include <algorithm>
#include <cmath>

namespace spstream {

RoadNetwork RoadNetwork::Grid(const RoadNetworkOptions& options) {
  RoadNetwork net;
  Rng rng(options.seed);
  const int w = std::max(2, options.grid_width);
  const int h = std::max(2, options.grid_height);
  net.nodes_.resize(static_cast<size_t>(w) * static_cast<size_t>(h));

  auto idx = [w](int col, int row) { return row * w + col; };

  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      Node& n = net.nodes_[static_cast<size_t>(idx(col, row))];
      n.x = col * options.cell_size +
            (rng.NextDouble() * 2 - 1) * options.jitter;
      n.y = row * options.cell_size +
            (rng.NextDouble() * 2 - 1) * options.jitter;
    }
  }
  auto connect = [&](int a, int b) {
    net.nodes_[static_cast<size_t>(a)].neighbors.push_back(b);
    net.nodes_[static_cast<size_t>(b)].neighbors.push_back(a);
  };
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      if (col + 1 < w) connect(idx(col, row), idx(col + 1, row));
      if (row + 1 < h) connect(idx(col, row), idx(col, row + 1));
      if (col + 1 < w && row + 1 < h &&
          rng.NextBool(options.diagonal_prob)) {
        connect(idx(col, row), idx(col + 1, row + 1));
      }
    }
  }
  net.extent_x_ = (w - 1) * options.cell_size;
  net.extent_y_ = (h - 1) * options.cell_size;
  return net;
}

RoadNetwork::Travel RoadNetwork::StartTravel(Rng* rng) const {
  Travel t;
  t.from = static_cast<int>(rng->NextBounded(nodes_.size()));
  const Node& n = nodes_[static_cast<size_t>(t.from)];
  t.to = n.neighbors[rng->NextBounded(n.neighbors.size())];
  t.progress = rng->NextDouble();
  t.speed = 5.0 + rng->NextDouble() * 25.0;  // 5..30 m/tick
  return t;
}

void RoadNetwork::Advance(Travel* t, Rng* rng) const {
  const Node& a = nodes_[static_cast<size_t>(t->from)];
  const Node& b = nodes_[static_cast<size_t>(t->to)];
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len = std::max(1.0, std::sqrt(dx * dx + dy * dy));
  t->progress += t->speed / len;
  while (t->progress >= 1.0) {
    t->progress -= 1.0;
    const int prev = t->from;
    t->from = t->to;
    const Node& cur = nodes_[static_cast<size_t>(t->from)];
    // Prefer not to immediately backtrack.
    int next = cur.neighbors[rng->NextBounded(cur.neighbors.size())];
    if (next == prev && cur.neighbors.size() > 1) {
      next = cur.neighbors[rng->NextBounded(cur.neighbors.size())];
    }
    t->to = next;
    t->progress *= t->speed /
                   std::max(1.0, std::hypot(node(t->to).x - cur.x,
                                            node(t->to).y - cur.y)) *
                   (len / t->speed);
    t->progress = std::min(t->progress, 0.99);
  }
}

void RoadNetwork::Position(const Travel& t, double* x, double* y) const {
  const Node& a = nodes_[static_cast<size_t>(t.from)];
  const Node& b = nodes_[static_cast<size_t>(t.to)];
  *x = a.x + (b.x - a.x) * t.progress;
  *y = a.y + (b.y - a.y) * t.progress;
}

}  // namespace spstream
