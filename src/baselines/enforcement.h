// The three access-control enforcement mechanisms of §I.C, driven over an
// identical workload for the Figure 7 comparison:
//
//   * store-and-probe  — policies in a central PolicyStore; every sp is a
//     table update, every tuple access a table probe;
//   * tuple-embedded   — every tuple carries its own policy copy; the
//     select-project pipeline checks it per tuple;
//   * security punctuations — the paper's approach: the spstream engine
//     runs SS -> select -> project over the punctuated stream.
//
// All three execute the same logical query (the "two-mile region" select-
// project of §VII.A) and report processing time, output rate, and resident
// policy-metadata memory.
#pragma once

#include <string>
#include <vector>

#include "exec/expr.h"
#include "security/policy_store.h"
#include "security/role_catalog.h"
#include "stream/stream_element.h"

namespace spstream {

/// \brief The workload all drivers replay.
struct EnforcementWorkload {
  std::vector<StreamElement> elements;
  SchemaPtr schema;
  std::string stream_name;
};

/// \brief The query all drivers execute.
struct EnforcementQuery {
  ExprPtr select_predicate;        // null = pass-through
  std::vector<int> project_columns;
  RoleSet query_roles;
};

/// \brief What one driver run reports.
struct EnforcementResult {
  std::string mechanism;
  int64_t tuples_in = 0;
  int64_t tuples_out = 0;
  double elapsed_ms = 0;
  double output_rate_per_ms = 0;   ///< Figure 7a
  double cost_per_tuple_us = 0;    ///< Figures 7b / 7d
  size_t policy_memory_bytes = 0;  ///< Figure 7c

  std::string ToString() const;
};

/// \brief Common interface of the three mechanisms.
class EnforcementDriver {
 public:
  virtual ~EnforcementDriver() = default;
  virtual EnforcementResult Run(const EnforcementWorkload& workload,
                                const EnforcementQuery& query) = 0;
};

/// \brief §I.C "non-streaming: store-and-probe".
class StoreAndProbeDriver : public EnforcementDriver {
 public:
  explicit StoreAndProbeDriver(const RoleCatalog* catalog)
      : catalog_(catalog) {}
  EnforcementResult Run(const EnforcementWorkload& workload,
                        const EnforcementQuery& query) override;

 private:
  const RoleCatalog* catalog_;
};

/// \brief §I.C "streaming: tuple-embedded".
class TupleEmbeddedDriver : public EnforcementDriver {
 public:
  explicit TupleEmbeddedDriver(const RoleCatalog* catalog)
      : catalog_(catalog) {}
  EnforcementResult Run(const EnforcementWorkload& workload,
                        const EnforcementQuery& query) override;

 private:
  const RoleCatalog* catalog_;
};

/// \brief §I.C "streaming: punctuation-based" — the paper's sp framework,
/// executed by the spstream engine (SS -> σ -> π pipeline).
class SpFrameworkDriver : public EnforcementDriver {
 public:
  SpFrameworkDriver(RoleCatalog* catalog, StreamCatalog* streams)
      : catalog_(catalog), streams_(streams) {}
  EnforcementResult Run(const EnforcementWorkload& workload,
                        const EnforcementQuery& query) override;

 private:
  RoleCatalog* catalog_;
  StreamCatalog* streams_;
};

/// \brief Policy-metadata bytes resident at once while the stream is in
/// transit, modelled over a sliding span of `span` elements: sps count once
/// per appearance (punctuation model) or per covered tuple (embedded
/// model). Used for the Figure 7c accounting of the two streaming
/// mechanisms; store-and-probe reports its table size instead.
size_t PeakTransitPolicyBytes(const std::vector<StreamElement>& elements,
                              bool embedded, size_t span = 1000);

}  // namespace spstream
