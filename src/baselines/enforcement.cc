#include "baselines/enforcement.h"

#include <deque>
#include <sstream>

#include "common/metrics.h"
#include "exec/policy_tracker.h"
#include "exec/sa_project.h"
#include "exec/sa_select.h"
#include "exec/ss_operator.h"
#include "security/sp_codec.h"

namespace spstream {

std::string EnforcementResult::ToString() const {
  std::ostringstream os;
  os << mechanism << ": in=" << tuples_in << " out=" << tuples_out
     << " elapsed_ms=" << elapsed_ms
     << " output_rate=" << output_rate_per_ms << "/ms"
     << " cost_per_tuple_us=" << cost_per_tuple_us
     << " policy_mem_bytes=" << policy_memory_bytes;
  return os.str();
}

namespace {

void FillRates(EnforcementResult* r, int64_t elapsed_nanos) {
  r->elapsed_ms = static_cast<double>(elapsed_nanos) / 1e6;
  if (r->elapsed_ms > 0) {
    r->output_rate_per_ms =
        static_cast<double>(r->tuples_out) / r->elapsed_ms;
  }
  if (r->tuples_in > 0) {
    r->cost_per_tuple_us = static_cast<double>(elapsed_nanos) / 1e3 /
                           static_cast<double>(r->tuples_in);
  }
}

}  // namespace

namespace {

/// The store-and-probe access-control filter as an engine operator: every
/// arriving sp updates the central policy table; every tuple access probes
/// it. Sps do not flow downstream (the table is the policy medium).
class StoreProbeFilter : public Operator {
 public:
  StoreProbeFilter(ExecContext* ctx, PolicyStore* store,
                   std::string stream_name, RoleSet query_roles)
      : Operator(ctx, "store_probe"),
        store_(store),
        stream_name_(std::move(stream_name)),
        query_roles_(std::move(query_roles)) {}

 protected:
  void Process(StreamElement elem, int) override {
    ScopedTimer timer(&metrics_.total_nanos);
    if (elem.is_sp()) {
      ++metrics_.sps_in;
      (void)store_->Apply(std::move(elem.sp()));  // central-table update
      return;
    }
    if (!elem.is_tuple()) {
      Emit(std::move(elem));
      return;
    }
    ++metrics_.tuples_in;
    const Tuple& t = elem.tuple();
    if (!store_->Probe(stream_name_, t.tid, query_roles_)) {
      ++metrics_.tuples_dropped_security;
      return;
    }
    EmitTuple(std::move(elem.tuple()));
  }

 private:
  PolicyStore* store_;
  std::string stream_name_;
  RoleSet query_roles_;
};

}  // namespace

EnforcementResult StoreAndProbeDriver::Run(
    const EnforcementWorkload& workload, const EnforcementQuery& query) {
  EnforcementResult r;
  r.mechanism = "store-and-probe";
  PolicyStore store(catalog_);
  RoleCatalog* catalog = const_cast<RoleCatalog*>(catalog_);
  StreamCatalog streams;
  ExecContext ctx{catalog, &streams};
  Pipeline pipeline(&ctx);
  auto* src = pipeline.Add<SourceOperator>("src", workload.elements);
  auto* filter = pipeline.Add<StoreProbeFilter>(
      &store, workload.stream_name, query.query_roles);
  src->AddOutput(filter);
  Operator* top = filter;
  if (query.select_predicate) {
    auto* sel = pipeline.Add<SaSelect>(query.select_predicate);
    top->AddOutput(sel);
    top = sel;
  }
  auto* proj =
      pipeline.Add<SaProject>(query.project_columns, workload.schema);
  top->AddOutput(proj);
  auto* sink = pipeline.Add<CollectorSink>();
  proj->AddOutput(sink);

  int64_t elapsed = 0;
  {
    ScopedTimer timer(&elapsed);
    pipeline.Run(/*batch_per_poll=*/256);
  }
  r.tuples_in = filter->metrics().tuples_in;
  r.tuples_out = proj->metrics().tuples_out;
  FillRates(&r, elapsed);
  r.policy_memory_bytes = store.PolicyMetadataBytes();
  return r;
}

namespace {

/// Encode a role set as the embedded policy blob carried in the tuple's
/// extra field (delta varints over ascending role ids).
std::string EncodePolicyBlob(const RoleSet& roles) {
  std::string blob;
  RoleId prev = 0;
  roles.ForEach([&](RoleId id) {
    PutVarint(id - prev, &blob);
    prev = id;
  });
  return blob;
}

/// Does the embedded policy blob authorize any of `query_roles`?
bool BlobAuthorizes(const std::string& blob, const RoleSet& query_roles) {
  size_t off = 0;
  RoleId cur = 0;
  while (off < blob.size()) {
    auto delta = GetVarint(blob, &off);
    if (!delta.ok()) return false;
    cur += static_cast<RoleId>(*delta);
    if (query_roles.Contains(cur)) return true;
  }
  return false;
}

/// Per-tuple access-control filter of the tuple-embedded mechanism: decodes
/// the policy field of EVERY tuple and checks the query's roles against it.
/// No punctuation sharing, no per-segment short-circuit.
class EmbeddedPolicyFilter : public Operator {
 public:
  EmbeddedPolicyFilter(ExecContext* ctx, RoleSet query_roles, int policy_col)
      : Operator(ctx, "embedded_filter"),
        query_roles_(std::move(query_roles)),
        policy_col_(policy_col) {}

 protected:
  void Process(StreamElement elem, int) override {
    ScopedTimer timer(&metrics_.total_nanos);
    if (!elem.is_tuple()) {
      Emit(std::move(elem));
      return;
    }
    ++metrics_.tuples_in;
    const Tuple& t = elem.tuple();
    const size_t col = static_cast<size_t>(policy_col_);
    if (col >= t.values.size() || !t.values[col].is_string() ||
        !BlobAuthorizes(t.values[col].str(), query_roles_)) {
      ++metrics_.tuples_dropped_security;
      return;
    }
    EmitTuple(std::move(elem.tuple()));
  }

 private:
  RoleSet query_roles_;
  int policy_col_;
};

}  // namespace

EnforcementResult TupleEmbeddedDriver::Run(
    const EnforcementWorkload& workload, const EnforcementQuery& query) {
  EnforcementResult r;
  r.mechanism = "tuple-embedded";
  // Phase 1 (at the data source, not timed as server work): embed the
  // policy into every tuple as an extra field — §I.C's "extra tuple fields
  // ... for meta-data". Adjacent tuples with identical policies still each
  // carry their own copy.
  std::vector<StreamElement> stream;
  stream.reserve(workload.elements.size());
  {
    PolicyTracker tracker(const_cast<RoleCatalog*>(catalog_),
                          workload.stream_name);
    for (const StreamElement& elem : workload.elements) {
      if (elem.is_sp()) {
        tracker.OnSp(elem.sp());
      } else if (elem.is_tuple()) {
        PolicyPtr p = tracker.PolicyFor(elem.tuple());
        Tuple t = elem.tuple();
        t.values.emplace_back(EncodePolicyBlob(p->allowed()));
        stream.emplace_back(std::move(t));
      }
    }
  }
  const int policy_col =
      static_cast<int>(workload.schema->num_fields());

  // Phase 2 (timed): the same engine as the sp mechanism, but with the
  // per-tuple policy filter and the policy field carried through every
  // operator (projection keeps it: results stay policy-tagged).
  RoleCatalog* catalog = const_cast<RoleCatalog*>(catalog_);
  StreamCatalog streams;
  ExecContext ctx{catalog, &streams};
  Pipeline pipeline(&ctx);
  auto* src = pipeline.Add<SourceOperator>("src", std::move(stream));
  auto* filter = pipeline.Add<EmbeddedPolicyFilter>(query.query_roles,
                                                    policy_col);
  src->AddOutput(filter);
  Operator* top = filter;
  if (query.select_predicate) {
    auto* sel = pipeline.Add<SaSelect>(query.select_predicate);
    top->AddOutput(sel);
    top = sel;
  }
  std::vector<int> cols = query.project_columns;
  cols.push_back(policy_col);  // the embedded policy travels with results
  std::vector<Field> embedded_fields = workload.schema->fields();
  embedded_fields.push_back(Field{"__policy", ValueType::kString});
  SchemaPtr embedded_schema = MakeSchema(workload.stream_name + "_embedded",
                                         std::move(embedded_fields));
  auto* proj = pipeline.Add<SaProject>(cols, embedded_schema);
  top->AddOutput(proj);
  auto* sink = pipeline.Add<CollectorSink>();
  proj->AddOutput(sink);

  int64_t elapsed = 0;
  {
    ScopedTimer timer(&elapsed);
    pipeline.Run(/*batch_per_poll=*/256);
  }
  r.tuples_in = filter->metrics().tuples_in;
  r.tuples_out = proj->metrics().tuples_out;
  FillRates(&r, elapsed);
  r.policy_memory_bytes =
      PeakTransitPolicyBytes(workload.elements, /*embedded=*/true);
  return r;
}

EnforcementResult SpFrameworkDriver::Run(const EnforcementWorkload& workload,
                                         const EnforcementQuery& query) {
  EnforcementResult r;
  r.mechanism = "security-punctuations";
  ExecContext ctx{catalog_, streams_};
  Pipeline pipeline(&ctx);
  auto* src = pipeline.Add<SourceOperator>("src", workload.elements);
  SsOptions ss_opts;
  ss_opts.predicates = {query.query_roles};
  ss_opts.stream_name = workload.stream_name;
  ss_opts.schema = workload.schema;
  auto* ss = pipeline.Add<SsOperator>(std::move(ss_opts));
  src->AddOutput(ss);
  Operator* top = ss;
  SaSelect* sel = nullptr;
  if (query.select_predicate) {
    sel = pipeline.Add<SaSelect>(query.select_predicate);
    top->AddOutput(sel);
    top = sel;
  }
  auto* proj =
      pipeline.Add<SaProject>(query.project_columns, workload.schema);
  top->AddOutput(proj);
  auto* sink = pipeline.Add<CollectorSink>();
  proj->AddOutput(sink);

  int64_t elapsed = 0;
  {
    ScopedTimer timer(&elapsed);
    pipeline.Run(/*batch_per_poll=*/256);
  }
  r.tuples_in = ss->metrics().tuples_in;
  r.tuples_out = proj->metrics().tuples_out;
  FillRates(&r, elapsed);
  r.policy_memory_bytes =
      PeakTransitPolicyBytes(workload.elements, /*embedded=*/false);
  return r;
}

size_t PeakTransitPolicyBytes(const std::vector<StreamElement>& elements,
                              bool embedded, size_t span) {
  // Sliding window of `span` elements; track policy bytes contributed by
  // each element: an sp contributes its compact encoded size once; with the
  // embedded model every *tuple* instead carries its segment policy's size
  // as its own private field.
  size_t peak = 0, current = 0;
  std::deque<size_t> contrib;
  size_t current_policy_bytes = 0;
  for (const StreamElement& e : elements) {
    size_t c = 0;
    if (e.is_sp()) {
      const size_t sp_bytes = EncodedSpSize(e.sp());
      current_policy_bytes = sp_bytes;
      if (!embedded) c = sp_bytes;
    } else if (e.is_tuple() && embedded) {
      c = current_policy_bytes;
    }
    contrib.push_back(c);
    current += c;
    if (contrib.size() > span) {
      current -= contrib.front();
      contrib.pop_front();
    }
    peak = std::max(peak, current);
  }
  return peak;
}

}  // namespace spstream
