#include "storage/durability.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/audit_log.h"
#include "common/fault.h"
#include "common/metrics_registry.h"
#include "security/sp_codec.h"

namespace spstream::storage {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestMagic[] = "SPM1";
constexpr char kDeltaMagic[] = "SPD1";
constexpr uint64_t kMaxChainLen = 1u << 16;
constexpr uint64_t kMaxDeltaEntries = 1u << 24;

void PutFixed32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetFixed32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(
             static_cast<uint8_t>(data[offset + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

/// Strip and verify the trailing crc32; returns the body on success.
Result<std::string_view> CheckCrcFrame(std::string_view data,
                                       const char* what) {
  if (data.size() < 4) {
    return Status::OutOfRange(std::string(what) + ": truncated");
  }
  const std::string_view body = data.substr(0, data.size() - 4);
  if (GetFixed32(data, data.size() - 4) != Crc32(body)) {
    return Status::Internal(std::string(what) + ": crc mismatch");
  }
  return body;
}

bool IsCatalogRecord(WalRecordType type) {
  switch (type) {
    case WalRecordType::kRoleRegister:
    case WalRecordType::kStreamRegister:
    case WalRecordType::kSubjectRegister:
    case WalRecordType::kSubjectRoles:
    case WalRecordType::kQueryRegister:
    case WalRecordType::kQueryDeregister:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---- session codec -------------------------------------------------------

void EncodeSession(const DurableSession& s, std::string* out) {
  PutVarint(s.id, out);
  PutVarint(s.token, out);
  PutLengthPrefixed(s.client_name, out);
  PutVarint(ZigZagEncode(s.detached_at_ms), out);
  PutVarint(s.subscriptions.size(), out);
  for (uint32_t q : s.subscriptions) PutVarint(q, out);
}

Result<DurableSession> DecodeSession(std::string_view data) {
  DurableSession s;
  size_t off = 0;
  SP_ASSIGN_OR_RETURN(s.id, GetVarint(data, &off));
  SP_ASSIGN_OR_RETURN(s.token, GetVarint(data, &off));
  SP_ASSIGN_OR_RETURN(s.client_name, GetLengthPrefixed(data, &off));
  SP_ASSIGN_OR_RETURN(uint64_t detached, GetVarint(data, &off));
  s.detached_at_ms = ZigZagDecode(detached);
  SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, &off));
  if (n > 1u << 20) return Status::InvalidArgument("session: sub count");
  s.subscriptions.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SP_ASSIGN_OR_RETURN(uint64_t q, GetVarint(data, &off));
    s.subscriptions.push_back(static_cast<uint32_t>(q));
  }
  return s;
}

// ---- manifest / delta codecs ---------------------------------------------

void DurabilityManager::EncodeManifest(const Manifest& m, std::string* out) {
  out->append(kManifestMagic);
  PutVarint(m.meta.epoch, out);
  PutVarint(ZigZagEncode(m.meta.next_default_ts), out);
  PutVarint(static_cast<uint64_t>(m.meta.num_shards), out);
  PutVarint(m.meta.batch_size, out);
  PutVarint(m.wal_floor_seq, out);
  PutVarint(m.delta_epochs.size(), out);
  for (uint64_t e : m.delta_epochs) PutVarint(e, out);
  PutFixed32(Crc32(*out), out);
}

Result<DurabilityManager::Manifest> DurabilityManager::DecodeManifest(
    std::string_view data) {
  SP_ASSIGN_OR_RETURN(std::string_view body, CheckCrcFrame(data, "manifest"));
  if (body.substr(0, 4) != kManifestMagic) {
    return Status::Internal("manifest: bad magic");
  }
  Manifest m;
  size_t off = 4;
  SP_ASSIGN_OR_RETURN(m.meta.epoch, GetVarint(body, &off));
  SP_ASSIGN_OR_RETURN(uint64_t ts, GetVarint(body, &off));
  m.meta.next_default_ts = ZigZagDecode(ts);
  SP_ASSIGN_OR_RETURN(uint64_t shards, GetVarint(body, &off));
  m.meta.num_shards = static_cast<int>(shards);
  SP_ASSIGN_OR_RETURN(m.meta.batch_size, GetVarint(body, &off));
  SP_ASSIGN_OR_RETURN(m.wal_floor_seq, GetVarint(body, &off));
  SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(body, &off));
  if (n > kMaxChainLen) return Status::Internal("manifest: chain length");
  m.delta_epochs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SP_ASSIGN_OR_RETURN(uint64_t e, GetVarint(body, &off));
    m.delta_epochs.push_back(e);
  }
  return m;
}

std::string DurabilityManager::DeltaName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt/%06llu.delta",
                static_cast<unsigned long long>(epoch));
  return buf;
}

// ---- lifecycle -----------------------------------------------------------

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    Options options, MetricsRegistry* metrics, AuditLog* audit) {
  auto dm = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(std::move(options), metrics, audit));
  SP_RETURN_NOT_OK(dm->Recover());
  return dm;
}

Status DurabilityManager::Recover() {
  if (SP_FAULT_FIRED(fault::kStorageRecoveryReplay)) {
    Count("storage.recovery_failures");
    return Status::Internal("injected fault: storage.recovery_replay");
  }
  SP_ASSIGN_OR_RETURN(disk_, DiskManager::Open(options_.data_dir));

  uint64_t floor = 1;
  if (disk_->Exists(kManifestName)) {
    SP_ASSIGN_OR_RETURN(std::string raw, disk_->ReadFile(kManifestName));
    SP_ASSIGN_OR_RETURN(manifest_, DecodeManifest(raw));
    have_manifest_ = true;
    floor = manifest_.wal_floor_seq;
    recovered_.found = true;
    recovered_.epoch = manifest_.meta.epoch;
    recovered_.next_default_ts = manifest_.meta.next_default_ts;
    recovered_.num_shards = manifest_.meta.num_shards;
    recovered_.batch_size = manifest_.meta.batch_size;
  }

  SP_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(*disk_, floor));
  recovered_.tail_torn = replay.tail_torn;
  if (!replay.records.empty()) recovered_.found = true;

  std::map<uint64_t, DurableSession> sessions;
  uint64_t max_session_id = 0;
  for (WalRecord& rec : replay.records) {
    if (IsCatalogRecord(rec.type)) {
      catalog_replica_.push_back(rec);
      recovered_.catalog.push_back(std::move(rec));
      continue;
    }
    if (rec.type == WalRecordType::kSessionUpsert) {
      SP_ASSIGN_OR_RETURN(DurableSession s, DecodeSession(rec.payload));
      max_session_id = std::max(max_session_id, s.id);
      sessions[s.id] = std::move(s);
    } else if (rec.type == WalRecordType::kSessionErase) {
      size_t off = 0;
      SP_ASSIGN_OR_RETURN(uint64_t id, GetVarint(rec.payload, &off));
      max_session_id = std::max(max_session_id, id);
      sessions.erase(id);
    }
    // kSpAdmitted / kAuditEvent / kEpochCommit / kRebaseReplica are
    // forensic or structural; replay does not act on them.
  }
  session_replica_ = sessions;
  for (auto& [id, s] : sessions) recovered_.sessions.push_back(s);
  recovered_.next_session_id = max_session_id + 1;

  // The delta chain named by the manifest, oldest first.
  for (uint64_t epoch : manifest_.delta_epochs) {
    SP_ASSIGN_OR_RETURN(std::string raw, disk_->ReadFile(DeltaName(epoch)));
    SP_ASSIGN_OR_RETURN(std::string_view body, CheckCrcFrame(raw, "delta"));
    if (body.substr(0, 4) != kDeltaMagic) {
      return Status::Internal("delta: bad magic");
    }
    size_t off = 4;
    SP_RETURN_NOT_OK(GetVarint(body, &off).status());  // full flag
    SP_ASSIGN_OR_RETURN(uint64_t delta_epoch, GetVarint(body, &off));
    if (delta_epoch != epoch) return Status::Internal("delta: epoch mismatch");
    SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(body, &off));
    if (n > kMaxDeltaEntries) return Status::Internal("delta: entry count");
    for (uint64_t i = 0; i < n; ++i) {
      StateEntry entry;
      SP_ASSIGN_OR_RETURN(uint64_t q, GetVarint(body, &off));
      SP_ASSIGN_OR_RETURN(uint64_t shard, GetVarint(body, &off));
      SP_ASSIGN_OR_RETURN(uint64_t op, GetVarint(body, &off));
      entry.key = {static_cast<uint32_t>(q), static_cast<uint32_t>(shard),
                   static_cast<uint32_t>(op)};
      SP_ASSIGN_OR_RETURN(entry.label, GetLengthPrefixed(body, &off));
      SP_ASSIGN_OR_RETURN(entry.blob, GetLengthPrefixed(body, &off));
      recovered_.blobs.push_back(std::move(entry));
    }
  }

  // Everything parsed: now (and only now) mutate the directory — heal the
  // torn tail, drop files outside the manifest, open the active segment.
  SP_RETURN_NOT_OK(CleanupStaleFiles(replay));

  uint64_t active = replay.max_seq;
  if (replay.stale_replica_seq > 0) active = replay.stale_replica_seq - 1;
  if (replay.tail_torn) active = replay.torn_seq;
  active = std::max(active, floor);
  if (active == 0) active = 1;
  SP_ASSIGN_OR_RETURN(wal_, WalWriter::Open(disk_.get(), active));
  next_seq_ = std::max(replay.max_seq, active) + 1;

  Count("storage.recoveries");
  if (recovered_.found) {
    AuditStorageEvent("recovered epoch=" + std::to_string(recovered_.epoch) +
                      " wal_records=" +
                      std::to_string(replay.records.size()) +
                      (replay.tail_torn ? " torn_tail" : ""));
  }
  return Status::OK();
}

Status DurabilityManager::CleanupStaleFiles(const WalReplay& replay) {
  SP_ASSIGN_OR_RETURN(std::vector<std::string> wal_names,
                      disk_->ListDir("wal"));
  const uint64_t floor = have_manifest_ ? manifest_.wal_floor_seq : 1;
  for (const std::string& name : wal_names) {
    if (name.size() != 10 || name.substr(6) != ".wal") {
      SP_RETURN_NOT_OK(disk_->RemoveFile("wal/" + name));  // tmp leftovers
      continue;
    }
    const uint64_t seq = std::strtoull(name.c_str(), nullptr, 10);
    const bool below_floor = seq < floor;
    const bool stale_replica = replay.stale_replica_seq > 0 &&
                               seq >= replay.stale_replica_seq;
    const bool past_torn = replay.tail_torn && seq > replay.torn_seq;
    if (below_floor || stale_replica || past_torn) {
      SP_RETURN_NOT_OK(disk_->RemoveFile("wal/" + name));
    }
  }
  if (replay.tail_torn && replay.stale_replica_seq == 0) {
    SP_RETURN_NOT_OK(disk_->TruncateFile(
        "wal/" + WalSegmentName(replay.torn_seq), replay.torn_valid_bytes));
  }

  SP_ASSIGN_OR_RETURN(std::vector<std::string> ckpt_names,
                      disk_->ListDir("ckpt"));
  for (const std::string& name : ckpt_names) {
    bool live = false;
    for (uint64_t epoch : manifest_.delta_epochs) {
      if ("ckpt/" + name == DeltaName(epoch)) {
        live = true;
        break;
      }
    }
    if (!live) SP_RETURN_NOT_OK(disk_->RemoveFile("ckpt/" + name));
  }
  return Status::OK();
}

// ---- logging -------------------------------------------------------------

Status DurabilityManager::LogCatalogRecord(WalRecordType type,
                                           std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_->Append(type, payload);
  Status st = wal_->Commit();
  if (!st.ok()) {
    Count("storage.wal_commit_failures");
    return st;
  }
  Count("storage.wal_appends");
  Count("storage.wal_commits");
  catalog_replica_.push_back(WalRecord{type, std::move(payload)});
  return Status::OK();
}

void DurabilityManager::BufferForensic(WalRecordType type,
                                       std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_forensics_.push_back(WalRecord{type, std::move(payload)});
}

Status DurabilityManager::LogSessionUpsert(const DurableSession& s) {
  std::string payload;
  EncodeSession(s, &payload);
  std::lock_guard<std::mutex> lock(mu_);
  wal_->Append(WalRecordType::kSessionUpsert, payload);
  Status st = wal_->Commit();
  if (!st.ok()) {
    Count("storage.wal_commit_failures");
    return st;
  }
  Count("storage.wal_appends");
  Count("storage.wal_commits");
  session_replica_[s.id] = s;
  return Status::OK();
}

Status DurabilityManager::LogSessionErase(uint64_t id) {
  std::string payload;
  PutVarint(id, &payload);
  std::lock_guard<std::mutex> lock(mu_);
  wal_->Append(WalRecordType::kSessionErase, payload);
  Status st = wal_->Commit();
  if (!st.ok()) {
    Count("storage.wal_commit_failures");
    return st;
  }
  Count("storage.wal_appends");
  Count("storage.wal_commits");
  session_replica_.erase(id);
  return Status::OK();
}

Status DurabilityManager::FlushAuditTail(const AuditLog& audit) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t max_seq = last_flushed_audit_seq_;
  size_t appended = 0;
  for (const AuditEvent& ev : audit.Events()) {
    if (ev.seq <= last_flushed_audit_seq_) continue;
    wal_->Append(WalRecordType::kAuditEvent, ev.ToJson());
    max_seq = std::max(max_seq, ev.seq);
    ++appended;
  }
  if (appended == 0) return Status::OK();
  Status st = wal_->Commit();
  if (!st.ok()) {
    Count("storage.wal_commit_failures");
    return st;
  }
  Count("storage.wal_appends", static_cast<int64_t>(appended));
  Count("storage.wal_commits");
  last_flushed_audit_seq_ = max_seq;
  return Status::OK();
}

// ---- epoch commit --------------------------------------------------------

bool DurabilityManager::WantsFullCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.delta_epochs.size() + 1 >=
         static_cast<size_t>(std::max(1, options_.rebase_every));
}

uint64_t DurabilityManager::committed_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return have_manifest_ ? manifest_.meta.epoch : 0;
}

Result<std::vector<StateEntry>> DurabilityManager::ReadQueryCheckpoint(
    uint32_t query) {
  std::lock_guard<std::mutex> lock(mu_);
  // Same walk as Recover(): the manifest's delta chain, oldest first, so a
  // caller applying the entries in order ends at the last committed epoch.
  // Only files the current manifest references are read — an in-flight or
  // failed commit can never leak into a recovery.
  std::vector<StateEntry> out;
  for (uint64_t epoch : manifest_.delta_epochs) {
    SP_ASSIGN_OR_RETURN(std::string raw, disk_->ReadFile(DeltaName(epoch)));
    SP_ASSIGN_OR_RETURN(std::string_view body, CheckCrcFrame(raw, "delta"));
    if (body.substr(0, 4) != kDeltaMagic) {
      return Status::Internal("delta: bad magic");
    }
    size_t off = 4;
    SP_RETURN_NOT_OK(GetVarint(body, &off).status());  // full flag
    SP_ASSIGN_OR_RETURN(uint64_t delta_epoch, GetVarint(body, &off));
    if (delta_epoch != epoch) return Status::Internal("delta: epoch mismatch");
    SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(body, &off));
    if (n > kMaxDeltaEntries) return Status::Internal("delta: entry count");
    for (uint64_t i = 0; i < n; ++i) {
      StateEntry entry;
      SP_ASSIGN_OR_RETURN(uint64_t q, GetVarint(body, &off));
      SP_ASSIGN_OR_RETURN(uint64_t shard, GetVarint(body, &off));
      SP_ASSIGN_OR_RETURN(uint64_t op, GetVarint(body, &off));
      entry.key = {static_cast<uint32_t>(q), static_cast<uint32_t>(shard),
                   static_cast<uint32_t>(op)};
      SP_ASSIGN_OR_RETURN(entry.label, GetLengthPrefixed(body, &off));
      SP_ASSIGN_OR_RETURN(entry.blob, GetLengthPrefixed(body, &off));
      if (entry.key.query == query) out.push_back(std::move(entry));
    }
  }
  return out;
}

Status DurabilityManager::CommitEpoch(const EpochMeta& meta, bool full,
                                      const std::vector<StateEntry>& entries) {
  std::lock_guard<std::mutex> lock(mu_);

  // 1. Serialize the delta and write it durable (tmp + fsync + rename).
  //    The file is unreferenced until the manifest names it.
  std::string delta;
  delta.append(kDeltaMagic);
  PutVarint(full ? 1 : 0, &delta);
  PutVarint(meta.epoch, &delta);
  PutVarint(entries.size(), &delta);
  for (const StateEntry& e : entries) {
    PutVarint(e.key.query, &delta);
    PutVarint(e.key.shard, &delta);
    PutVarint(e.key.op_index, &delta);
    PutLengthPrefixed(e.label, &delta);
    PutLengthPrefixed(e.blob, &delta);
  }
  PutFixed32(Crc32(delta), &delta);

  if (SP_FAULT_FIRED(fault::kStorageCheckpointWrite)) {
    Count("storage.epoch_commit_failures");
    return Status::Internal("injected fault: storage.checkpoint_write");
  }

  const uint64_t old_seq = wal_->seq();
  if (full) {
    // Compaction: seed a fresh segment with the live catalog + session
    // replica. The kRebaseReplica marker keeps this segment invisible to
    // replay until the manifest below makes it the floor.
    SP_RETURN_NOT_OK(wal_->Rotate(next_seq_++));
    wal_->Append(WalRecordType::kRebaseReplica, "");
    for (const WalRecord& rec : catalog_replica_) {
      wal_->Append(rec.type, rec.payload);
    }
    std::string payload;
    for (const auto& [id, s] : session_replica_) {
      payload.clear();
      EncodeSession(s, &payload);
      wal_->Append(WalRecordType::kSessionUpsert, payload);
    }
    pending_forensics_.clear();  // bounded trail: dropped at compaction
  }

  Status st = disk_->AtomicWriteFile(DeltaName(meta.epoch), delta);
  if (!st.ok()) {
    Count("storage.epoch_commit_failures");
    if (full) (void)wal_->Rotate(old_seq);  // reattach the live segment
    return st;
  }

  // 2. One group commit: the epoch's forensics + the commit record.
  for (const WalRecord& rec : pending_forensics_) {
    wal_->Append(rec.type, rec.payload);
  }
  std::string epoch_payload;
  PutVarint(meta.epoch, &epoch_payload);
  wal_->Append(WalRecordType::kEpochCommit, epoch_payload);
  const size_t committed_records = wal_->staged_records();
  st = wal_->Commit();
  pending_forensics_.clear();  // lost on failure by design (never acked)
  if (!st.ok()) {
    Count("storage.epoch_commit_failures");
    if (full) (void)wal_->Rotate(old_seq);
    return st;
  }
  Count("storage.wal_appends", static_cast<int64_t>(committed_records));
  Count("storage.wal_commits");

  // 3. Manifest rename: the commit point.
  Manifest next = manifest_;
  next.meta = meta;
  if (full) {
    next.wal_floor_seq = wal_->seq();
    next.delta_epochs = {meta.epoch};
  } else {
    next.delta_epochs.push_back(meta.epoch);
  }
  std::string raw;
  EncodeManifest(next, &raw);
  st = disk_->AtomicWriteFile(kManifestName, raw);
  if (!st.ok()) {
    Count("storage.epoch_commit_failures");
    if (full) (void)wal_->Rotate(old_seq);
    return st;
  }
  const Manifest prev = manifest_;
  manifest_ = std::move(next);
  have_manifest_ = true;

  Count("storage.checkpoints");
  Count("storage.checkpoint_bytes", static_cast<int64_t>(delta.size()));
  if (metrics_ != nullptr) {
    metrics_->SetGauge("storage.committed_epoch",
                       static_cast<int64_t>(meta.epoch));
    metrics_->SetGauge("storage.delta_chain_len",
                       static_cast<int64_t>(manifest_.delta_epochs.size()));
  }

  if (full) {
    // The old chain and pre-compaction segments are garbage now; failing
    // to delete them is not a commit failure.
    Count("storage.rebases");
    AuditStorageEvent("rebase epoch=" + std::to_string(meta.epoch));
    for (uint64_t epoch : prev.delta_epochs) {
      if (epoch != meta.epoch) (void)disk_->RemoveFile(DeltaName(epoch));
    }
    for (uint64_t seq = prev.wal_floor_seq; seq < manifest_.wal_floor_seq;
         ++seq) {
      (void)disk_->RemoveFile("wal/" + WalSegmentName(seq));
    }
  } else if (wal_->segment_bytes() >= options_.segment_bytes) {
    SP_RETURN_NOT_OK(wal_->Rotate(next_seq_++));
  }
  return Status::OK();
}

void DurabilityManager::Count(const char* name, int64_t delta) {
  if (metrics_ != nullptr) metrics_->AddCounter(name, delta);
}

void DurabilityManager::AuditStorageEvent(const std::string& detail) {
  if (audit_ == nullptr) return;
  AuditEvent ev;
  ev.kind = AuditEventKind::kStorage;
  ev.scope = "engine";
  ev.detail = detail;
  audit_->Append(std::move(ev));
}

}  // namespace spstream::storage
