// Page-oriented disk access for the durability subsystem.
//
// DiskManager owns the data directory tree and exposes exactly the
// primitives the WAL and checkpointer need, each with the fsync discipline
// spelled out at the call site:
//
//  * AppendFile — a page-buffered appender (4 KiB pages) for WAL segments;
//    bytes become durable only at Sync() (group commit), never implicitly.
//  * AtomicWriteFile — full-file replace via tmp + fsync + rename + parent
//    directory fsync. The rename is the commit point; a crash at any prior
//    instant leaves the old file intact (this is how the checkpoint
//    MANIFEST becomes the single authoritative pointer).
//
// POSIX-only, matching the repo's supported platforms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spstream::storage {

/// \brief Page-buffered append-only file. Not thread-safe; callers
/// serialize (the WalWriter sits behind the DurabilityManager mutex).
class AppendFile {
 public:
  static constexpr size_t kPageBytes = 4096;

  /// \brief Open (creating or appending to) `path`.
  static Result<std::unique_ptr<AppendFile>> Open(const std::string& path);
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// \brief Buffer `data`; full pages are written through as they fill.
  Status Append(std::string_view data);

  /// \brief Write any buffered partial page to the kernel.
  Status Flush();

  /// \brief Flush + fdatasync: everything appended so far is durable.
  Status Sync();

  /// \brief Chop the file back to `len` bytes and resume appending there
  /// (heals a torn tail left by a failed group commit). Any buffered bytes
  /// are discarded.
  Status TruncateTo(uint64_t len);

  /// \brief Logical size: on-disk bytes plus buffered bytes.
  uint64_t size() const { return synced_size_ + buffer_.size(); }

 private:
  AppendFile(int fd, uint64_t size) : fd_(fd), synced_size_(size) {}

  int fd_;
  uint64_t synced_size_;  // bytes handed to write(2)
  std::string buffer_;    // partial trailing page
};

/// \brief Root handle on the data directory. Thread-compatible: all methods
/// are stateless over the filesystem except directory creation in Open.
class DiskManager {
 public:
  /// \brief Open `root`, creating it (and the wal/ and ckpt/ subdirs) if
  /// missing.
  static Result<std::unique_ptr<DiskManager>> Open(std::string root);

  const std::string& root() const { return root_; }
  std::string Path(std::string_view rel) const;

  /// \brief File names (not paths) directly under `rel`, unsorted.
  Result<std::vector<std::string>> ListDir(std::string_view rel) const;

  Result<std::string> ReadFile(std::string_view rel) const;
  bool Exists(std::string_view rel) const;
  Status RemoveFile(std::string_view rel);

  /// \brief Truncate `rel` to `len` bytes (recovery chops a torn WAL tail
  /// so later appends are reachable by replay again).
  Status TruncateFile(std::string_view rel, uint64_t len);

  /// \brief Durable full-file replace: write `rel`.tmp, fsync it, rename
  /// over `rel`, fsync the parent directory.
  Status AtomicWriteFile(std::string_view rel, std::string_view data);

  /// \brief fsync the directory `rel` ("" = root) so newly created /
  /// renamed entries are durable.
  Status SyncDir(std::string_view rel) const;

 private:
  explicit DiskManager(std::string root) : root_(std::move(root)) {}

  std::string root_;
};

}  // namespace spstream::storage
