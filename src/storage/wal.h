// Segmented write-ahead log with CRC-framed records and group commit.
//
// Record frame: [u32 len][u8 type][payload bytes][u32 crc32], crc computed
// over type+payload, both fixed-width fields little-endian. Replay reads
// segments in sequence order and stops at the FIRST frame whose length,
// type or crc fails to verify — a torn tail (the crash left a partial
// write) truncates the log there; any valid-looking bytes after a torn
// region are unreachable by design, because nothing after an unacknowledged
// write can have been acknowledged either.
//
// Appends stage into memory; Commit() writes every staged frame in one
// buffered append and fdatasyncs once (group commit). The fault site
// storage.wal_append fires inside Commit and tears the write mid-frame —
// exactly the failure shape replay must tolerate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace spstream::storage {

/// \brief Every durable record type. Values are persisted — append only.
enum class WalRecordType : uint8_t {
  kRoleRegister = 1,    ///< payload: role name
  kStreamRegister = 2,  ///< payload: schema (state_codec)
  kSubjectRegister = 3, ///< payload: subject name
  kSubjectRoles = 4,    ///< payload: subject name + role id list
  kQueryRegister = 5,   ///< payload: subject name + sql text
  kQueryDeregister = 6, ///< payload: varint query id
  kSpAdmitted = 7,      ///< forensic: stream name + encoded sp
  kSessionUpsert = 8,   ///< payload: durable session record
  kSessionErase = 9,    ///< payload: varint session id
  kAuditEvent = 10,     ///< forensic: rendered audit event JSON
  kEpochCommit = 11,    ///< forensic: varint epoch (manifest is the truth)
  kRebaseReplica = 12,  ///< marker: first record of a compaction segment
};

struct WalRecord {
  WalRecordType type;
  std::string payload;
};

/// \brief CRC-32 (IEEE, reflected 0xEDB88320) over `data`.
uint32_t Crc32(std::string_view data);

/// \brief Append one framed record to `out` (frame format above).
void AppendWalFrame(WalRecordType type, std::string_view payload,
                    std::string* out);

/// \brief Segment file name for sequence number `seq` ("000001.wal").
std::string WalSegmentName(uint64_t seq);

/// \brief Appender over the active segment. Not thread-safe; the
/// DurabilityManager serializes access behind its mutex.
class WalWriter {
 public:
  /// \brief Open (appending to) segment `seq`.
  static Result<std::unique_ptr<WalWriter>> Open(DiskManager* disk,
                                                 uint64_t seq);

  /// \brief Stage one record for the next Commit. Never touches disk.
  void Append(WalRecordType type, std::string_view payload);

  bool HasStaged() const { return !staged_.empty(); }
  size_t staged_records() const { return staged_records_; }

  /// \brief Group commit: write all staged frames, fdatasync once. On the
  /// storage.wal_append fault, half the staged bytes are written (torn
  /// frame, no sync) and the staged records are lost with an error — the
  /// caller must treat the whole batch as not durable.
  Status Commit();

  /// \brief Rotate to segment `seq` (caller picks the number; the previous
  /// segment must be committed first).
  Status Rotate(uint64_t seq);

  uint64_t seq() const { return seq_; }
  uint64_t segment_bytes() const { return file_ ? file_->size() : 0; }

 private:
  WalWriter(DiskManager* disk, uint64_t seq,
            std::unique_ptr<AppendFile> file)
      : disk_(disk),
        seq_(seq),
        file_(std::move(file)),
        known_good_size_(file_->size()) {}

  DiskManager* disk_;
  uint64_t seq_;
  std::unique_ptr<AppendFile> file_;
  std::string staged_;
  size_t staged_records_ = 0;
  // Size of the segment's valid prefix. A failed commit leaves torn bytes
  // past it (preserved so a crash right after reproduces the real on-disk
  // shape); the next Commit heals by truncating back before appending.
  uint64_t known_good_size_;
  bool needs_heal_ = false;
};

/// \brief Decoded contents of the log: records in append order plus replay
/// diagnostics.
struct WalReplay {
  std::vector<WalRecord> records;
  uint64_t max_seq = 0;          ///< highest segment file present (0 = none)
  bool tail_torn = false;        ///< replay stopped at a bad frame
  uint64_t torn_seq = 0;         ///< segment holding the torn frame
  uint64_t torn_valid_bytes = 0; ///< valid prefix length of that segment
  uint64_t stale_replica_seq = 0;///< uncommitted compaction segment, if any
  size_t segments_read = 0;
};

/// \brief Replay every segment with sequence >= `floor_seq` in order.
/// A kRebaseReplica marker opening a segment NEWER than `floor_seq` marks
/// an uncommitted compaction (the manifest rename never happened): that
/// segment and everything after it are ignored.
Result<WalReplay> ReplayWal(const DiskManager& disk, uint64_t floor_seq);

}  // namespace spstream::storage
