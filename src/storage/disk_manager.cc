#include "storage/disk_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spstream::storage {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

Status WriteFully(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Errno("mkdir", path);
}

}  // namespace

// ---- AppendFile ----------------------------------------------------------

Result<std::unique_ptr<AppendFile>> AppendFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  return std::unique_ptr<AppendFile>(
      new AppendFile(fd, static_cast<uint64_t>(st.st_size)));
}

AppendFile::~AppendFile() {
  // Best-effort: buffered bytes not Sync()ed are intentionally allowed to
  // be lost (they were never acknowledged as durable).
  if (!buffer_.empty()) (void)Flush();
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(std::string_view data) {
  buffer_.append(data.data(), data.size());
  if (buffer_.size() >= kPageBytes) {
    // Write through the whole-page prefix, keep the partial tail buffered.
    const size_t whole = (buffer_.size() / kPageBytes) * kPageBytes;
    SP_RETURN_NOT_OK(WriteFully(fd_, std::string_view(buffer_).substr(0, whole),
                                "<append>"));
    synced_size_ += whole;
    buffer_.erase(0, whole);
  }
  return Status::OK();
}

Status AppendFile::Flush() {
  if (buffer_.empty()) return Status::OK();
  SP_RETURN_NOT_OK(WriteFully(fd_, buffer_, "<append>"));
  synced_size_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Status AppendFile::Sync() {
  SP_RETURN_NOT_OK(Flush());
  if (::fdatasync(fd_) != 0) return Errno("fdatasync", "<append>");
  return Status::OK();
}

Status AppendFile::TruncateTo(uint64_t len) {
  buffer_.clear();
  if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) {
    return Errno("ftruncate", "<append>");
  }
  synced_size_ = len;
  return Status::OK();
}

// ---- DiskManager ---------------------------------------------------------

Result<std::unique_ptr<DiskManager>> DiskManager::Open(std::string root) {
  SP_RETURN_NOT_OK(EnsureDir(root));
  SP_RETURN_NOT_OK(EnsureDir(root + "/wal"));
  SP_RETURN_NOT_OK(EnsureDir(root + "/ckpt"));
  return std::unique_ptr<DiskManager>(new DiskManager(std::move(root)));
}

std::string DiskManager::Path(std::string_view rel) const {
  if (rel.empty()) return root_;
  return root_ + "/" + std::string(rel);
}

Result<std::vector<std::string>> DiskManager::ListDir(
    std::string_view rel) const {
  const std::string path = Path(rel);
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

Result<std::string> DiskManager::ReadFile(std::string_view rel) const {
  const std::string path = Path(rel);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool DiskManager::Exists(std::string_view rel) const {
  struct stat st;
  return ::stat(Path(rel).c_str(), &st) == 0;
}

Status DiskManager::RemoveFile(std::string_view rel) {
  const std::string path = Path(rel);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status DiskManager::TruncateFile(std::string_view rel, uint64_t len) {
  const std::string path = Path(rel);
  if (::truncate(path.c_str(), static_cast<off_t>(len)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Status DiskManager::AtomicWriteFile(std::string_view rel,
                                    std::string_view data) {
  const std::string path = Path(rel);
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status st = WriteFully(fd, data, tmp);
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync", tmp);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  // Durable only once the parent directory entry is synced.
  const size_t slash = rel.find_last_of('/');
  return SyncDir(slash == std::string_view::npos ? std::string_view()
                                                 : rel.substr(0, slash));
}

Status DiskManager::SyncDir(std::string_view rel) const {
  const std::string path = Path(rel);
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open", path);
  Status st;
  if (::fsync(fd) != 0) st = Errno("fsync", path);
  ::close(fd);
  return st;
}

}  // namespace spstream::storage
