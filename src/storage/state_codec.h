// Binary serde for the engine state that survives a restart: tuple values,
// role bitmaps and stream schemas, built on the same varint/zigzag
// primitives as the sp wire codec (security/sp_codec.h) so durable bytes
// and network bytes share one encoding vocabulary.
//
// Decoders are bounds-checked and return Status on malformed input — a
// half-written checkpoint must surface as a recovery error, never as UB.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/value.h"
#include "security/role_set.h"
#include "stream/schema.h"
#include "stream/tuple.h"

namespace spstream::storage {

/// \brief Append one Value: type byte + type-dependent payload.
void PutValue(const Value& v, std::string* out);
Result<Value> GetValue(std::string_view data, size_t* offset);

/// \brief Append one tuple: sid, tid, ts, field count, values.
void PutTuple(const Tuple& t, std::string* out);
Result<Tuple> GetTuple(std::string_view data, size_t* offset);

/// \brief Append a role bitmap as varint count + ascending member ids.
void PutRoleSet(const RoleSet& roles, std::string* out);
Result<RoleSet> GetRoleSet(std::string_view data, size_t* offset);

/// \brief Append a stream schema: name + field (name, type) list.
void PutSchema(const Schema& schema, std::string* out);
Result<SchemaPtr> GetSchema(std::string_view data, size_t* offset);

}  // namespace spstream::storage
