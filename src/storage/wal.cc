#include "storage/wal.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

#include "common/fault.h"

namespace spstream::storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void PutFixed32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetFixed32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[offset + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

// Largest frame replay will accept; anything bigger is corruption (the
// engine never writes multi-hundred-MB records).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendWalFrame(WalRecordType type, std::string_view payload,
                    std::string* out) {
  // len counts the type byte + payload (not itself, not the crc).
  PutFixed32(static_cast<uint32_t>(payload.size() + 1), out);
  const size_t body_start = out->size();
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
  PutFixed32(Crc32(std::string_view(*out).substr(body_start)), out);
}

std::string WalSegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.wal",
                static_cast<unsigned long long>(seq));
  return buf;
}

// ---- WalWriter -----------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(DiskManager* disk,
                                                   uint64_t seq) {
  SP_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> file,
                      AppendFile::Open(disk->Path("wal/" + WalSegmentName(seq))));
  return std::unique_ptr<WalWriter>(new WalWriter(disk, seq, std::move(file)));
}

void WalWriter::Append(WalRecordType type, std::string_view payload) {
  AppendWalFrame(type, payload, &staged_);
  ++staged_records_;
}

Status WalWriter::Commit() {
  if (staged_.empty()) return Status::OK();
  std::string batch = std::move(staged_);
  staged_.clear();
  staged_records_ = 0;
  if (needs_heal_) {
    // A previous commit tore this segment's tail; chop back to the valid
    // prefix so the new frames are reachable by replay.
    SP_RETURN_NOT_OK(file_->TruncateTo(known_good_size_));
    needs_heal_ = false;
  }
  if (SP_FAULT_FIRED(fault::kStorageWalAppend)) {
    // Tear the write: half the batch reaches the file, nothing is synced.
    // This is the on-disk shape replay's CRC-stop rule exists for.
    (void)file_->Append(std::string_view(batch).substr(0, batch.size() / 2));
    (void)file_->Flush();
    needs_heal_ = true;
    return Status::Internal("injected fault: storage.wal_append");
  }
  SP_RETURN_NOT_OK(file_->Append(batch));
  SP_RETURN_NOT_OK(file_->Sync());
  known_good_size_ = file_->size();
  return Status::OK();
}

Status WalWriter::Rotate(uint64_t seq) {
  SP_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> file,
                      AppendFile::Open(disk_->Path("wal/" + WalSegmentName(seq))));
  file_ = std::move(file);
  seq_ = seq;
  known_good_size_ = file_->size();
  needs_heal_ = false;
  staged_.clear();
  staged_records_ = 0;
  return Status::OK();
}

// ---- replay --------------------------------------------------------------

Result<WalReplay> ReplayWal(const DiskManager& disk, uint64_t floor_seq) {
  SP_ASSIGN_OR_RETURN(std::vector<std::string> names, disk.ListDir("wal"));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    if (name.size() != 10 || name.substr(6) != ".wal") continue;
    seqs.push_back(std::strtoull(name.c_str(), nullptr, 10));
  }
  std::sort(seqs.begin(), seqs.end());

  WalReplay out;
  if (!seqs.empty()) out.max_seq = seqs.back();
  for (uint64_t seq : seqs) {
    if (seq < floor_seq) continue;
    SP_ASSIGN_OR_RETURN(std::string data,
                        disk.ReadFile("wal/" + WalSegmentName(seq)));
    ++out.segments_read;
    size_t off = 0;
    bool first_in_segment = true;
    while (off < data.size()) {
      if (off + 4 > data.size()) {
        out.tail_torn = true;
        out.torn_seq = seq;
        out.torn_valid_bytes = off;
        return out;
      }
      const uint32_t len = GetFixed32(data, off);
      if (len == 0 || len > kMaxFrameBytes || off + 4 + len + 4 > data.size()) {
        out.tail_torn = true;
        out.torn_seq = seq;
        out.torn_valid_bytes = off;
        return out;
      }
      const std::string_view body = std::string_view(data).substr(off + 4, len);
      const uint32_t crc = GetFixed32(data, off + 4 + len);
      if (crc != Crc32(body)) {
        out.tail_torn = true;
        out.torn_seq = seq;
        out.torn_valid_bytes = off;
        return out;
      }
      const auto type = static_cast<WalRecordType>(body[0]);
      if (type == WalRecordType::kRebaseReplica && first_in_segment &&
          seq > floor_seq) {
        // An uncommitted compaction segment: the manifest that would have
        // made it live was never renamed into place. Ignore it and
        // everything after it.
        out.stale_replica_seq = seq;
        return out;
      }
      out.records.push_back(
          WalRecord{type, std::string(body.substr(1))});
      off += 4 + len + 4;
      first_in_segment = false;
    }
  }
  return out;
}

}  // namespace spstream::storage
