#include "storage/state_codec.h"

#include <cstring>

#include "security/sp_codec.h"

namespace spstream::storage {

namespace {

// Durable field counts are bounded by the same hostile-input cap as the
// wire: a corrupt length must not drive a giant allocation.
constexpr uint64_t kMaxFields = 1u << 16;
constexpr uint64_t kMaxRoles = kMaxWireRoleId;

}  // namespace

void PutValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutVarint(ZigZagEncode(v.int64()), out);
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      double d = v.dbl();
      std::memcpy(&bits, &d, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
      }
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(v.str(), out);
      break;
    case ValueType::kBool:
      out->push_back(v.boolean() ? 1 : 0);
      break;
  }
}

Result<Value> GetValue(std::string_view data, size_t* offset) {
  if (*offset >= data.size()) {
    return Status::OutOfRange("value: truncated type byte");
  }
  const auto type = static_cast<ValueType>(data[(*offset)++]);
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      SP_ASSIGN_OR_RETURN(uint64_t raw, GetVarint(data, offset));
      return Value(ZigZagDecode(raw));
    }
    case ValueType::kDouble: {
      if (*offset + 8 > data.size()) {
        return Status::OutOfRange("value: truncated double");
      }
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(
                    static_cast<uint8_t>(data[*offset + static_cast<size_t>(i)]))
                << (8 * i);
      }
      *offset += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString: {
      SP_ASSIGN_OR_RETURN(std::string s, GetLengthPrefixed(data, offset));
      return Value(std::move(s));
    }
    case ValueType::kBool: {
      if (*offset >= data.size()) {
        return Status::OutOfRange("value: truncated bool");
      }
      return Value(data[(*offset)++] != 0);
    }
  }
  return Status::InvalidArgument("value: unknown type byte");
}

void PutTuple(const Tuple& t, std::string* out) {
  PutVarint(t.sid, out);
  PutVarint(ZigZagEncode(t.tid), out);
  PutVarint(ZigZagEncode(t.ts), out);
  PutVarint(t.values.size(), out);
  for (const Value& v : t.values) PutValue(v, out);
}

Result<Tuple> GetTuple(std::string_view data, size_t* offset) {
  Tuple t;
  SP_ASSIGN_OR_RETURN(uint64_t sid, GetVarint(data, offset));
  t.sid = static_cast<StreamId>(sid);
  SP_ASSIGN_OR_RETURN(uint64_t tid, GetVarint(data, offset));
  t.tid = ZigZagDecode(tid);
  SP_ASSIGN_OR_RETURN(uint64_t ts, GetVarint(data, offset));
  t.ts = ZigZagDecode(ts);
  SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, offset));
  if (n > kMaxFields) return Status::InvalidArgument("tuple: field count");
  t.values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SP_ASSIGN_OR_RETURN(Value v, GetValue(data, offset));
    t.values.push_back(std::move(v));
  }
  return t;
}

void PutRoleSet(const RoleSet& roles, std::string* out) {
  const std::vector<RoleId> ids = roles.ToIds();
  PutVarint(ids.size(), out);
  for (RoleId id : ids) PutVarint(id, out);
}

Result<RoleSet> GetRoleSet(std::string_view data, size_t* offset) {
  SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, offset));
  if (n > kMaxRoles) return Status::InvalidArgument("roleset: member count");
  RoleSet s;
  for (uint64_t i = 0; i < n; ++i) {
    SP_ASSIGN_OR_RETURN(uint64_t id, GetVarint(data, offset));
    if (id > kMaxWireRoleId) return Status::InvalidArgument("roleset: role id");
    s.Insert(static_cast<RoleId>(id));
  }
  return s;
}

void PutSchema(const Schema& schema, std::string* out) {
  PutLengthPrefixed(schema.stream_name(), out);
  PutVarint(schema.num_fields(), out);
  for (const Field& f : schema.fields()) {
    PutLengthPrefixed(f.name, out);
    out->push_back(static_cast<char>(f.type));
  }
}

Result<SchemaPtr> GetSchema(std::string_view data, size_t* offset) {
  SP_ASSIGN_OR_RETURN(std::string name, GetLengthPrefixed(data, offset));
  SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, offset));
  if (n > kMaxFields) return Status::InvalidArgument("schema: field count");
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Field f;
    SP_ASSIGN_OR_RETURN(f.name, GetLengthPrefixed(data, offset));
    if (*offset >= data.size()) {
      return Status::OutOfRange("schema: truncated field type");
    }
    f.type = static_cast<ValueType>(data[(*offset)++]);
    fields.push_back(std::move(f));
  }
  return MakeSchema(std::move(name), std::move(fields));
}

}  // namespace spstream::storage
