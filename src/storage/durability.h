// DurabilityManager: the one object the engine and the stream server talk
// to for persistence (docs/DURABILITY.md).
//
// It owns the data directory through a DiskManager and implements the epoch
// commit protocol:
//
//   1. write ckpt/<epoch>.delta (incremental operator-state deltas), fsync;
//   2. append the epoch's buffered forensic records (sp admits, audit tail)
//      plus an epoch-commit record to the WAL, one group-commit fsync;
//   3. atomically rename a new MANIFEST into place.
//
// Step 3 is the single commit point: a crash anywhere before it leaves the
// previous manifest authoritative, and recovery ignores every file the
// manifest does not reference. Catalog mutations (roles, streams, subjects,
// queries) and net-session updates are logged write-ahead and group-
// committed immediately, because they must survive even when no epoch ever
// commits.
//
// Every `rebase_every` committed epochs the manager compacts: a fresh WAL
// segment is seeded with a replica of the live catalog + session table
// (opened by a kRebaseReplica marker so an uncommitted compaction is
// ignored on replay), the delta chain collapses to one full snapshot, and
// old segments/deltas are deleted. Buffered forensic records are dropped at
// compaction — the audit ring is a bounded trail, not an archive.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/wal.h"

namespace spstream {
class AuditLog;
class MetricsRegistry;
}  // namespace spstream

namespace spstream::storage {

/// \brief One net session as persisted in the WAL.
struct DurableSession {
  uint64_t id = 0;
  uint64_t token = 0;
  std::string client_name;
  std::vector<uint32_t> subscriptions;  ///< QueryIds
  int64_t detached_at_ms = -1;
};

void EncodeSession(const DurableSession& s, std::string* out);
Result<DurableSession> DecodeSession(std::string_view data);

/// \brief Address of one operator-state blob: query, shard, and the
/// operator's index in its pipeline's DAG order.
struct StateBlobKey {
  uint32_t query = 0;
  uint32_t shard = 0;
  uint32_t op_index = 0;
};

/// \brief One operator-state delta inside a checkpoint. `label` is the
/// operator label, validated on restore so a plan mismatch fails loudly
/// instead of feeding a blob to the wrong operator.
struct StateEntry {
  StateBlobKey key;
  std::string label;
  std::string blob;
};

/// \brief Everything recovery reconstructs from disk.
struct RecoveredState {
  bool found = false;       ///< any durable state (manifest or WAL) present
  uint64_t epoch = 0;       ///< last committed epoch (0 = none)
  int64_t next_default_ts = 1;
  int num_shards = 1;
  uint64_t batch_size = 64;
  std::vector<WalRecord> catalog;  ///< catalog mutations in WAL order
  std::vector<DurableSession> sessions;
  uint64_t next_session_id = 1;
  std::vector<StateEntry> blobs;   ///< delta-chain entries, oldest first
  bool tail_torn = false;          ///< the crash left a torn WAL tail
};

/// \brief Engine-level metadata carried by the manifest.
struct EpochMeta {
  uint64_t epoch = 0;
  int64_t next_default_ts = 1;
  int num_shards = 1;
  uint64_t batch_size = 64;
};

class DurabilityManager {
 public:
  struct Options {
    std::string data_dir;
    /// Full-snapshot + WAL-compaction cadence (committed epochs).
    int rebase_every = 16;
    /// Size-based WAL segment rotation threshold.
    uint64_t segment_bytes = 1u << 20;
  };

  /// \brief Open the data dir and run recovery. Fails cleanly (no partial
  /// state, nothing deleted) on the storage.recovery_replay fault or any
  /// corruption the CRCs catch. `metrics` and `audit` may be null.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      Options options, MetricsRegistry* metrics, AuditLog* audit);

  /// \brief State recovered during Open; the engine consumes it once.
  RecoveredState& recovered() { return recovered_; }

  /// \brief Write-ahead a catalog mutation; durable (group-committed) on OK
  /// return. The caller must apply the mutation only on success.
  Status LogCatalogRecord(WalRecordType type, std::string payload);

  /// \brief Buffer a forensic record (sp admit) for the next epoch commit.
  void BufferForensic(WalRecordType type, std::string payload);

  /// \brief Thread-safe session-table logging; durable on return. Safe to
  /// call from net reader threads (leaf mutex, never takes engine locks).
  Status LogSessionUpsert(const DurableSession& s);
  Status LogSessionErase(uint64_t id);

  /// \brief Append audit events with seq > the last flushed seq to the WAL
  /// and group-commit. Called on clean shutdown and at incident sites.
  Status FlushAuditTail(const AuditLog& audit);

  /// \brief True when the next commit should be a full rebase.
  bool WantsFullCheckpoint() const;

  /// \brief Run the epoch commit protocol. On failure nothing moved: the
  /// manifest still names the previous epoch and the caller must discard
  /// the epoch's output (at-most-once delivery).
  Status CommitEpoch(const EpochMeta& meta, bool full,
                     const std::vector<StateEntry>& entries);

  uint64_t committed_epoch() const;

  /// \brief Re-read the committed delta chain and return one query's state
  /// entries, oldest first — the same blobs a process restart would replay,
  /// filtered to `query`. Used by in-process quarantine recovery
  /// (SpStreamEngine::RecoverQuery) to rewind a single query to its last
  /// durable checkpoint without restarting the engine. Thread-safe.
  Result<std::vector<StateEntry>> ReadQueryCheckpoint(uint32_t query);

 private:
  struct Manifest {
    EpochMeta meta;
    uint64_t wal_floor_seq = 1;
    std::vector<uint64_t> delta_epochs;  ///< ascending chain
  };

  DurabilityManager(Options options, MetricsRegistry* metrics,
                    AuditLog* audit)
      : options_(std::move(options)), metrics_(metrics), audit_(audit) {}

  static void EncodeManifest(const Manifest& m, std::string* out);
  static Result<Manifest> DecodeManifest(std::string_view data);
  static std::string DeltaName(uint64_t epoch);

  Status Recover();
  Status CleanupStaleFiles(const WalReplay& replay);
  void Count(const char* name, int64_t delta = 1);
  void AuditStorageEvent(const std::string& detail);

  const Options options_;
  MetricsRegistry* const metrics_;
  AuditLog* const audit_;

  std::unique_ptr<DiskManager> disk_;
  RecoveredState recovered_;

  mutable std::mutex mu_;
  std::unique_ptr<WalWriter> wal_;
  // Next rotation target. Always past every segment ever created, so a
  // failed rebase can never reuse (and append a duplicate marker into) a
  // half-written segment file.
  uint64_t next_seq_ = 2;
  Manifest manifest_;
  bool have_manifest_ = false;
  std::vector<WalRecord> pending_forensics_;
  // Live replicas for compaction: catalog records in original order and the
  // session table, deduped by id.
  std::vector<WalRecord> catalog_replica_;
  std::map<uint64_t, DurableSession> session_replica_;
  int64_t last_flushed_audit_seq_ = -1;
};

}  // namespace spstream::storage
