// ShardManager — the engine's worker-shard pool for intra-query
// parallelism (EngineOptions::num_shards > 1).
//
// N worker threads, each owning one bounded MPSC queue (stream/
// element_queue.h). The engine's Run() thread routes an epoch's admitted
// elements: tuples hash-partitioned by their leaf's shard key, security
// punctuations broadcast to every shard so each clone's PolicyTracker
// converges to the same policy state. Hand-off units are micro-batches
// (ElementBatch, sized by EngineOptions::batch_size): a worker drains its
// queue and feeds each batch whole into the PushSource of the target
// pipeline clone — synchronous pipelined execution inside the shard, exactly
// like the single-threaded path.
//
// Epoch barrier: CompleteEpoch() flushes the routing buffers, enqueues one
// barrier marker per shard, and blocks until every worker has acknowledged
// it — i.e. fully drained its share of the epoch. Only then does the engine
// read the per-shard sinks (no lock needed: workers are provably idle for
// this epoch's data) and only after Run() returns can the service layer
// MarkEpochComplete(), so a client's WaitEpoch() still implies its results
// exist. Workers stay parked between epochs; they are joined by Stop() or
// the destructor.
//
// Thread-safety contract for the code running on worker threads: operators
// touch only their own pipeline's state plus the ExecContext catalogs
// (read-only during Run) and the MetricsRegistry/AuditLog (internally
// locked). The tsan-engine CI job runs the shard suites under
// ThreadSanitizer to keep this contract honest.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/operator.h"
#include "stream/element_queue.h"

namespace spstream {

class ShardManager {
 public:
  /// \brief One routed unit of work: a micro-batch of elements for one
  /// pipeline source, fed by the shard's worker in one FeedBatch call. A
  /// null `src` is the epoch barrier marker; `batch` is ignored for markers.
  struct Task {
    PushSource* src = nullptr;
    ElementBatch batch;
  };

  /// \brief Live counters of one shard.
  struct ShardStats {
    int64_t tuples_processed = 0;
    int64_t sps_processed = 0;
    int64_t epochs = 0;
    size_t queue_depth = 0;
    size_t queue_peak = 0;
  };

  /// \brief One fault observed between two epoch barriers — an injected
  /// failure (SP_FAULT_FIRED site), an operator exception, or a routing
  /// push that failed. The engine drains these after CompleteEpoch() and
  /// quarantines the query the epoch belonged to.
  struct FaultRecord {
    size_t shard = 0;
    std::string site;    ///< fault-site name or "exec.exception"
    std::string detail;  ///< free-form context (what was dropped, why)
  };

  explicit ShardManager(size_t num_shards, size_t queue_capacity = 4096,
                        size_t route_batch = 256);
  ~ShardManager();

  ShardManager(const ShardManager&) = delete;
  ShardManager& operator=(const ShardManager&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// \brief Enqueue one element for `shard`, to be fed into `src` by that
  /// shard's worker. Elements are buffered and handed off in batches;
  /// ordering per shard is the routing order. Call only from the engine's
  /// Run() thread. Convenience wrapper over RouteBatch for a batch of one.
  void Route(size_t shard, PushSource* src, StreamElement elem);

  /// \brief Enqueue a micro-batch for `shard`, fed whole into `src` by that
  /// shard's worker (one FeedBatch call). Per-shard ordering is the routing
  /// order of the batches. Call only from the engine's Run() thread.
  void RouteBatch(size_t shard, PushSource* src, ElementBatch batch);

  /// \brief Epoch barrier: flush all routing buffers, then block until
  /// every shard has processed everything routed so far. After this
  /// returns, the per-shard pipelines are quiescent and their sinks safe to
  /// read from the calling thread.
  void CompleteEpoch();

  /// \brief Drain the faults recorded since the previous drain. Call right
  /// after CompleteEpoch(): the engine routes + barriers one query at a
  /// time, so everything drained here is attributable to that query. A
  /// worker that faults stops feeding its pipeline until the next barrier
  /// marker (fail closed: a clone whose policy state may have diverged must
  /// not keep emitting), so the faulted epoch's partial output is discarded
  /// by the caller, never delivered.
  std::vector<FaultRecord> TakeEpochFaults();

  /// \brief Close all queues and join the workers. Idempotent; also run by
  /// the destructor. After Stop() the manager routes nothing.
  void Stop();

  ShardStats Stats(size_t shard) const;

 private:
  struct Shard {
    size_t index = 0;
    std::unique_ptr<BoundedQueue<Task>> queue;
    std::thread worker;
    std::vector<Task> route_buffer;  // engine-thread staging for hand-off
    std::atomic<int64_t> tuples_processed{0};
    std::atomic<int64_t> sps_processed{0};
    std::atomic<int64_t> epochs{0};
  };

  void WorkerLoop(Shard* shard);
  void FlushBuffer(Shard* shard);
  void RecordFault(size_t shard, std::string site, std::string detail);

  const size_t route_batch_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  size_t barrier_remaining_ = 0;

  std::mutex faults_mu_;
  std::vector<FaultRecord> epoch_faults_;

  bool stopped_ = false;
};

}  // namespace spstream
