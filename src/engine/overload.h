// Overload resilience (docs/ROBUSTNESS.md, "Overload and self-healing").
//
// The paper's guarantee — a tuple reaches a result only while a security
// punctuation authorizes it — must survive *sustained overload*. This layer
// adds graceful degradation with one invariant: **shed data, never shed
// security**. Data tuples may be dropped at admission when the engine falls
// behind; security punctuations, control boundaries and revocations are
// always admitted losslessly, so no PolicyTracker ever goes stale-permissive
// because the engine was busy.
//
// Two pieces:
//
//  * OverloadController — a pressure state machine fed by three signals
//    (per-stream pending backlog, shard hand-off queue depth, last epoch
//    wall-clock vs EngineOptions::epoch_deadline_ms). Normalized pressure
//    crosses the low watermark → kThrottle (source poll batches shrink);
//    crosses the high watermark → kShed (data tuples dropped at admission
//    under a pluggable policy: random coin-flip, or per-query priority which
//    protects the streams feeding the highest-priority queries). Every shed
//    is audited (AuditEventKind::kShed, with the responsible queries and the
//    count) and metered (`engine.tuples_shed`, `engine.overload_state`) so
//    sheds are never confusable with policy denials.
//
//  * Watchdog — a background thread that OBSERVES per-shard progress
//    counters and flags wedged shards (no forward progress while work is
//    queued). It never mutates engine state: the engine is single-threaded
//    by contract, so actual quarantine recovery executes at a safe point
//    (top of SpStreamEngine::Run, or an explicit RecoverQuery call) with
//    capped exponential backoff, becoming permanent only after
//    `max_recovery_attempts`.
//
// Environment overrides (read by OverloadOptions::FromEnv; see
// docs/ROBUSTNESS.md for the full table): SPSTREAM_OVERLOAD_SHED,
// SPSTREAM_PENDING_HIGH, SPSTREAM_PENDING_LOW, SPSTREAM_QUEUE_HIGH,
// SPSTREAM_EPOCH_DEADLINE_MS, SPSTREAM_SHED_POLICY, SPSTREAM_SHED_FRACTION,
// SPSTREAM_MAX_RECOVERY_ATTEMPTS, SPSTREAM_RECOVERY_BACKOFF_MS,
// SPSTREAM_WATCHDOG, SPSTREAM_WEDGE_TIMEOUT_MS.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace spstream {

class MetricsRegistry;

/// \brief Degradation tier, exported as the `engine.overload_state` gauge
/// (0 / 1 / 2) and in SHED_NOTICE frames.
enum class OverloadState : uint8_t {
  kNormal = 0,    ///< full batches, everything admitted
  kThrottle = 1,  ///< source poll batches shrink; everything still admitted
  kShed = 2,      ///< data tuples dropped at admission; sps never
};
const char* OverloadStateName(OverloadState state);

/// \brief How kShed picks victims among *data tuples* (sps are exempt by
/// construction — the policy is never consulted for them).
enum class ShedPolicy : uint8_t {
  kRandom = 0,    ///< drop each data tuple with probability shed_fraction
  kPriority = 1,  ///< protect streams feeding the highest-priority query;
                  ///< shed (at shed_fraction) only from lower-priority ones
};

/// \brief Knobs for the controller, the watchdog, and quarantine recovery.
/// Lives inside EngineOptions (EngineOptions::overload).
struct OverloadOptions {
  /// Master switch for admission shedding. Off by default: an engine that
  /// was not asked to degrade never silently drops data.
  bool enable_shedding = false;

  /// Per-stream pending-element backlog watermarks (elements buffered in
  /// StreamState::pending between Push and Run). Crossing `pending_low`
  /// enters kThrottle, crossing `pending_high` enters kShed.
  size_t pending_high_watermark = 16384;
  size_t pending_low_watermark = 8192;

  /// Shard hand-off queue depth that counts as full pressure (compare
  /// EngineOptions::shard_queue_capacity = 4096).
  size_t queue_high_watermark = 3072;

  /// Fraction of data tuples dropped while in kShed (both policies).
  double shed_fraction = 0.5;
  ShedPolicy shed_policy = ShedPolicy::kRandom;
  uint64_t shed_seed = 0x5eed0501ULL;  ///< rng seed for kRandom coin flips

  /// Source poll batches are divided by this factor in kThrottle/kShed.
  size_t throttle_divisor = 4;

  // ---- quarantine self-healing ------------------------------------------
  /// Recovery attempts before a quarantine becomes permanent. 0 disables
  /// self-healing (PR-4 behaviour: dark until deregistered).
  int max_recovery_attempts = 0;
  /// Capped exponential backoff between attempts:
  /// base * 2^attempt, clamped to max.
  int64_t recovery_backoff_base_ms = 50;
  int64_t recovery_backoff_max_ms = 5000;

  // ---- watchdog ----------------------------------------------------------
  bool watchdog = false;          ///< start the observer thread
  int64_t watchdog_poll_ms = 50;  ///< sampling period
  /// A shard whose progress counter is frozen for this long while its queue
  /// is non-empty is flagged wedged.
  int64_t wedge_timeout_ms = 1000;

  /// \brief Apply SPSTREAM_* environment overrides on top of `base` (CI and
  /// the chaos matrix force low watermarks through these).
  static OverloadOptions FromEnv(OverloadOptions base);
};

/// \brief Pressure state machine. Single-threaded like the engine that owns
/// it, except `state()` which is safe to read from other threads (the net
/// serve loop caches it for shed-before-decode).
class OverloadController {
 public:
  explicit OverloadController(OverloadOptions options);

  /// \brief Feed one pressure sample and return the new state.
  ///  - `pending_backlog`: largest per-stream pending element count
  ///  - `max_queue_depth`: deepest shard hand-off queue
  ///  - `last_epoch_nanos`: wall-clock of the last Run() epoch (0 = none)
  ///  - `epoch_deadline_ms`: EngineOptions::epoch_deadline_ms (0 = none)
  OverloadState Observe(size_t pending_backlog, size_t max_queue_depth,
                        int64_t last_epoch_nanos, int64_t epoch_deadline_ms);

  OverloadState state() const {
    return static_cast<OverloadState>(state_.load(std::memory_order_relaxed));
  }

  /// \brief Normalized pressure of the last Observe (1.0 = at the high
  /// watermark on the hottest signal).
  double pressure() const { return pressure_; }

  /// \brief Decide whether to drop one data tuple at admission. Only valid
  /// to consult in kShed; never called for sps or control boundaries.
  /// `stream_priority` is the highest priority among queries consuming the
  /// tuple's stream; `top_priority` the highest across all live queries.
  bool ShouldShed(int stream_priority, int top_priority);

  /// \brief Tier-1 degradation: the batch size source polls should use.
  size_t EffectiveBatchSize(size_t base) const;

  int64_t tuples_shed() const { return tuples_shed_; }
  int64_t shed_decisions() const { return shed_decisions_; }
  const OverloadOptions& options() const { return options_; }

 private:
  OverloadOptions options_;
  std::atomic<uint8_t> state_{0};
  double pressure_ = 0.0;
  int64_t tuples_shed_ = 0;     ///< coin flips that came up "drop"
  int64_t shed_decisions_ = 0;  ///< total coin flips while in kShed
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// \brief One shard's progress sample, fed to the watchdog by the engine.
struct ShardProgressSample {
  int64_t progress = 0;     ///< monotone work counter (tuples+sps+epochs)
  size_t queue_depth = 0;   ///< elements waiting in the hand-off queue
};

/// \brief Background observer of shard liveness. Strictly read-only with
/// respect to the engine: it samples progress through a caller-supplied
/// probe (which must be thread-safe), flags wedges into metrics/the flight
/// recorder, and leaves all recovery to the engine's safe points.
class Watchdog {
 public:
  /// Probe returning one sample per shard (empty = nothing to watch; e.g.
  /// the engine is unsharded or between epochs).
  using ProbeFn = std::function<std::vector<ShardProgressSample>()>;

  Watchdog(OverloadOptions options, ProbeFn probe, MetricsRegistry* metrics);
  ~Watchdog();

  void Start();
  void Stop();

  /// \brief All-time wedge flags raised (a shard re-wedging after progress
  /// counts again).
  int64_t wedges_detected() const {
    return wedges_.load(std::memory_order_relaxed);
  }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  OverloadOptions options_;
  ProbeFn probe_;
  MetricsRegistry* metrics_;

  std::atomic<bool> running_{false};
  std::atomic<int64_t> wedges_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace spstream
