#include "engine/engine_service.h"

namespace spstream {

EngineService::EngineService(EngineOptions options)
    : engine_(std::move(options)) {}

RoleId EngineService::RegisterRole(const std::string& name) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_.RegisterRole(name);
}

Result<StreamId> EngineService::RegisterStream(SchemaPtr schema) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_.RegisterStream(std::move(schema));
}

Status EngineService::RegisterSubject(
    const std::string& name, const std::vector<std::string>& role_names) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_.RegisterSubject(name, role_names);
}

Result<QueryId> EngineService::RegisterQuery(const std::string& subject,
                                             const std::string& sql) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_.RegisterQuery(subject, sql);
}

Status EngineService::ExecuteInsertSp(const std::string& sql) {
  Status st;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    st = engine_.ExecuteInsertSp(sql);
  }
  if (st.ok()) {
    if (auto notify = MarkWorkPending()) notify();
  }
  return st;
}

std::function<void()> EngineService::MarkWorkPending() {
  std::lock_guard<std::mutex> lock(pace_mu_);
  work_pending_ = true;
  work_cv_.notify_one();
  return work_notifier_;
}

Status EngineService::Push(const std::string& stream_name,
                           std::vector<StreamElement> elements,
                           const std::function<void()>& on_admitted) {
  Status st;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    st = engine_.Push(stream_name, std::move(elements));
    if (st.ok() && on_admitted) on_admitted();
  }
  if (st.ok()) {
    if (auto notify = MarkWorkPending()) notify();
  }
  return st;
}

Result<std::vector<Tuple>> EngineService::TakeResults(QueryId id) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_.TakeResults(id);
}

std::vector<std::pair<StreamId, SchemaPtr>> EngineService::ListStreams() {
  std::lock_guard<std::mutex> lock(engine_mu_);
  std::vector<std::pair<StreamId, SchemaPtr>> out;
  StreamCatalog* catalog = engine_.streams();
  out.reserve(catalog->size());
  for (StreamId id = 0; id < catalog->size(); ++id) {
    out.emplace_back(id, catalog->schema(id));
  }
  return out;
}

Result<StreamId> EngineService::LookupStreamId(const std::string& name) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_.streams()->LookupId(name);
}

Result<std::string> EngineService::StreamName(StreamId id) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (id >= engine_.streams()->size()) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  return engine_.streams()->schema(id)->stream_name();
}

uint64_t EngineService::RequestEpoch() {
  uint64_t target;
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(pace_mu_);
    work_pending_ = true;
    work_cv_.notify_one();
    notify = work_notifier_;
    // An epoch currently in flight (started > completed) may have begun
    // before the caller's pushes; the first epoch that starts from now on is
    // epochs_started_ + 1, and it drains everything already admitted.
    target = epochs_started_ + 1;
  }
  if (notify) notify();
  return target;
}

void EngineService::WaitEpoch(uint64_t target) {
  std::unique_lock<std::mutex> lock(pace_mu_);
  epoch_cv_.wait(lock,
                 [&] { return stopped_ || epochs_completed_ >= target; });
}

bool EngineService::WaitWork() {
  std::unique_lock<std::mutex> lock(pace_mu_);
  work_cv_.wait(lock, [&] { return stopped_ || work_pending_; });
  if (stopped_) return false;
  work_pending_ = false;
  return true;
}

bool EngineService::PollWork() {
  std::lock_guard<std::mutex> lock(pace_mu_);
  if (stopped_ || !work_pending_) return false;
  work_pending_ = false;
  return true;
}

void EngineService::SetWorkNotifier(std::function<void()> notify) {
  std::lock_guard<std::mutex> lock(pace_mu_);
  work_notifier_ = std::move(notify);
}

uint64_t EngineService::RunEpoch(
    const std::function<void(SpStreamEngine*)>& after_run) {
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(pace_mu_);
    epoch = ++epochs_started_;
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    const Status st = engine_.Run();
    if (!st.ok()) {
      engine_.metrics()->AddCounter("net.epoch_errors");
    }
    if (after_run) after_run(&engine_);
  }
  return epoch;
}

void EngineService::MarkEpochComplete(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(pace_mu_);
  if (epoch > epochs_completed_) epochs_completed_ = epoch;
  epoch_cv_.notify_all();
}

void EngineService::Stop() {
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(pace_mu_);
    stopped_ = true;
    work_cv_.notify_all();
    epoch_cv_.notify_all();
    notify = work_notifier_;
  }
  if (notify) notify();
}

uint64_t EngineService::epochs_completed() const {
  std::lock_guard<std::mutex> lock(pace_mu_);
  return epochs_completed_;
}

}  // namespace spstream
