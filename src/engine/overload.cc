#include "engine/overload.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace spstream {

namespace {

bool EnvFlag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(v[0] == '0' || v[0] == 'f' || v[0] == 'F' || v[0] == 'n' ||
           v[0] == 'N');
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace

const char* OverloadStateName(OverloadState state) {
  switch (state) {
    case OverloadState::kNormal: return "normal";
    case OverloadState::kThrottle: return "throttle";
    case OverloadState::kShed: return "shed";
  }
  return "unknown";
}

OverloadOptions OverloadOptions::FromEnv(OverloadOptions base) {
  base.enable_shedding = EnvFlag("SPSTREAM_OVERLOAD_SHED",
                                 base.enable_shedding);
  base.pending_high_watermark = static_cast<size_t>(
      EnvInt("SPSTREAM_PENDING_HIGH",
             static_cast<int64_t>(base.pending_high_watermark)));
  base.pending_low_watermark = static_cast<size_t>(
      EnvInt("SPSTREAM_PENDING_LOW",
             static_cast<int64_t>(base.pending_low_watermark)));
  base.queue_high_watermark = static_cast<size_t>(
      EnvInt("SPSTREAM_QUEUE_HIGH",
             static_cast<int64_t>(base.queue_high_watermark)));
  base.shed_fraction = EnvDouble("SPSTREAM_SHED_FRACTION", base.shed_fraction);
  if (const char* p = std::getenv("SPSTREAM_SHED_POLICY")) {
    base.shed_policy = (std::string(p) == "priority") ? ShedPolicy::kPriority
                                                      : ShedPolicy::kRandom;
  }
  base.max_recovery_attempts = static_cast<int>(
      EnvInt("SPSTREAM_MAX_RECOVERY_ATTEMPTS", base.max_recovery_attempts));
  base.recovery_backoff_base_ms =
      EnvInt("SPSTREAM_RECOVERY_BACKOFF_MS", base.recovery_backoff_base_ms);
  base.watchdog = EnvFlag("SPSTREAM_WATCHDOG", base.watchdog);
  base.wedge_timeout_ms =
      EnvInt("SPSTREAM_WEDGE_TIMEOUT_MS", base.wedge_timeout_ms);
  return base;
}

OverloadController::OverloadController(OverloadOptions options)
    : options_(options), rng_(options.shed_seed) {
  // Guard against inverted or zero watermarks from env overrides.
  if (options_.pending_high_watermark == 0) options_.pending_high_watermark = 1;
  if (options_.pending_low_watermark >= options_.pending_high_watermark) {
    options_.pending_low_watermark = options_.pending_high_watermark / 2;
  }
  if (options_.queue_high_watermark == 0) options_.queue_high_watermark = 1;
  if (options_.throttle_divisor == 0) options_.throttle_divisor = 1;
  if (options_.shed_fraction < 0.0) options_.shed_fraction = 0.0;
  if (options_.shed_fraction > 1.0) options_.shed_fraction = 1.0;
}

OverloadState OverloadController::Observe(size_t pending_backlog,
                                          size_t max_queue_depth,
                                          int64_t last_epoch_nanos,
                                          int64_t epoch_deadline_ms) {
  // Normalize every signal against its own high watermark and let the
  // hottest one set the pressure. 1.0 == at the shed threshold.
  double p = static_cast<double>(pending_backlog) /
             static_cast<double>(options_.pending_high_watermark);
  double q = static_cast<double>(max_queue_depth) /
             static_cast<double>(options_.queue_high_watermark);
  double d = 0.0;
  if (epoch_deadline_ms > 0 && last_epoch_nanos > 0) {
    d = static_cast<double>(last_epoch_nanos) /
        (static_cast<double>(epoch_deadline_ms) * 1e6);
  }
  pressure_ = std::max(p, std::max(q, d));

  // The throttle threshold is the low/high watermark ratio, applied to the
  // normalized score so all three signals share one escalation ladder.
  const double throttle_at =
      static_cast<double>(options_.pending_low_watermark) /
      static_cast<double>(options_.pending_high_watermark);

  OverloadState next = OverloadState::kNormal;
  if (pressure_ >= 1.0) {
    next = OverloadState::kShed;
  } else if (pressure_ >= throttle_at) {
    next = OverloadState::kThrottle;
  }
  state_.store(static_cast<uint8_t>(next), std::memory_order_relaxed);
  return next;
}

bool OverloadController::ShouldShed(int stream_priority, int top_priority) {
  if (!options_.enable_shedding || state() != OverloadState::kShed) {
    return false;
  }
  ++shed_decisions_;
  if (options_.shed_policy == ShedPolicy::kPriority &&
      stream_priority >= top_priority) {
    return false;  // protect the streams feeding the top-priority queries
  }
  if (unit_(rng_) >= options_.shed_fraction) return false;
  ++tuples_shed_;
  return true;
}

size_t OverloadController::EffectiveBatchSize(size_t base) const {
  if (state() == OverloadState::kNormal) return base;
  return std::max<size_t>(1, base / options_.throttle_divisor);
}

// ---- Watchdog --------------------------------------------------------------

Watchdog::Watchdog(OverloadOptions options, ProbeFn probe,
                   MetricsRegistry* metrics)
    : options_(options), probe_(std::move(probe)), metrics_(metrics) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (running_.load(std::memory_order_relaxed)) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void Watchdog::Loop() {
  struct ShardWatch {
    int64_t last_progress = -1;
    int64_t frozen_since = 0;  // nanos when progress last changed
    bool wedged = false;
  };
  std::vector<ShardWatch> watches;

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.watchdog_poll_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) break;
    }
    std::vector<ShardProgressSample> samples = probe_();
    if (samples.size() != watches.size()) {
      watches.assign(samples.size(), ShardWatch{});
    }
    const int64_t now = NowNanos();
    for (size_t i = 0; i < samples.size(); ++i) {
      ShardWatch& w = watches[i];
      const ShardProgressSample& s = samples[i];
      if (s.progress != w.last_progress || s.queue_depth == 0) {
        // Forward progress (or idle): healthy.
        if (w.wedged && metrics_ != nullptr) {
          metrics_->SetGauge("engine.shard" + std::to_string(i) + ".wedged",
                             0);
        }
        w.last_progress = s.progress;
        w.frozen_since = now;
        w.wedged = false;
        continue;
      }
      // Same counter with work queued: possibly wedged.
      if (w.frozen_since == 0) w.frozen_since = now;
      if (!w.wedged &&
          now - w.frozen_since >= options_.wedge_timeout_ms * 1000000) {
        w.wedged = true;
        wedges_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) {
          metrics_->AddCounter("engine.watchdog_wedges");
          metrics_->SetGauge("engine.shard" + std::to_string(i) + ".wedged",
                             1);
        }
        Tracer::Global().NoteIncident("watchdog_wedge", EpochTraceId(i));
      }
    }
  }
}

}  // namespace spstream
