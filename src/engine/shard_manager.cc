#include "engine/shard_manager.h"

#include <exception>

#include "common/fault.h"
#include "common/trace.h"

namespace spstream {

ShardManager::ShardManager(size_t num_shards, size_t queue_capacity,
                           size_t route_batch)
    : route_batch_(route_batch == 0 ? 1 : route_batch) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->queue = std::make_unique<BoundedQueue<Task>>(queue_capacity);
    shard->route_buffer.reserve(route_batch_);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

ShardManager::~ShardManager() { Stop(); }

void ShardManager::WorkerLoop(Shard* shard) {
  std::vector<Task> batch;
  int64_t tuples = 0, sps = 0;
  // Set when this worker faults mid-epoch; everything further is dropped
  // (never fed) until the barrier marker. A clone that missed elements may
  // hold diverged policy/window state — letting it keep emitting could leak
  // a tuple past the policy the fault interrupted, so the shard goes dark
  // for the rest of the epoch and the engine quarantines the query.
  bool poisoned = false;
  while (shard->queue->DrainInto(&batch)) {
    for (Task& task : batch) {
      if (task.src == nullptr) {
        // Epoch barrier: everything routed before the marker has been fed.
        // Publish the counters once per epoch (cheaper than per element,
        // and the engine only reads them at epoch boundaries anyway).
        poisoned = false;
        shard->tuples_processed.store(tuples, std::memory_order_relaxed);
        shard->sps_processed.store(sps, std::memory_order_relaxed);
        shard->epochs.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(barrier_mu_);
          --barrier_remaining_;
        }
        barrier_cv_.notify_one();
        continue;
      }
      if (poisoned) continue;
      // The injection check stays per *element* (one RNG draw each) so a
      // fault seed fires after the same number of draws as per-element
      // hand-off. A fault anywhere in the batch drops the WHOLE batch —
      // feeding a prefix would leave this clone's policy/window state
      // diverged mid-run, so nothing from a faulted batch reaches the
      // pipeline (fail closed; the engine quarantines the epoch).
      int64_t batch_tuples = 0, batch_sps = 0;
      Timestamp traced_sp_ts = -1;
      for (const StreamElement& e : task.batch.elements()) {
        if (SP_FAULT_FIRED(fault::kOperatorProcess)) {
          poisoned = true;
          RecordFault(shard->index, fault::kOperatorProcess,
                      "injected worker fault; shard dropped the rest of the "
                      "epoch");
          break;
        }
        if (e.is_tuple()) {
          ++batch_tuples;
        } else if (e.is_sp()) {
          ++batch_sps;
          if (traced_sp_ts < 0 && Tracer::Global().SampleSpBatch(e.ts())) {
            traced_sp_ts = e.ts();
          }
        }
      }
      if (poisoned) continue;  // nothing from a faulted batch is fed
      tuples += batch_tuples;
      sps += batch_sps;
      // Worker-side trace context: a batch carrying a sampled sp is part of
      // that sp-batch's lifecycle (its PushBatch/SS spans join the batch
      // trace, which is how "which shard converged last" becomes visible);
      // plain batches attach to the engine's current epoch trace.
      ScopedTraceContext batch_trace(traced_sp_ts >= 0
                                         ? SpBatchTraceId(traced_sp_ts)
                                         : Tracer::Global().epoch_trace());
      TraceSpan feed_span(TraceCat::kShard, "shard.feed",
                          Tracer::CurrentTrace(),
                          static_cast<int64_t>(task.batch.size()),
                          static_cast<int64_t>(shard->index));
      try {
        task.src->FeedBatch(std::move(task.batch));
      } catch (const std::exception& ex) {
        poisoned = true;
        RecordFault(shard->index, "exec.exception",
                    std::string("operator threw: ") + ex.what());
      } catch (...) {
        poisoned = true;
        RecordFault(shard->index, "exec.exception",
                    "operator threw a non-std exception");
      }
    }
  }
  shard->tuples_processed.store(tuples, std::memory_order_relaxed);
  shard->sps_processed.store(sps, std::memory_order_relaxed);
}

void ShardManager::FlushBuffer(Shard* shard) {
  if (shard->route_buffer.empty()) return;
  if (SP_FAULT_FIRED(fault::kShardQueuePush)) {
    // The batch never reaches the shard: fail closed by dropping it (the
    // engine discards the epoch and quarantines the query). Barrier markers
    // must still get through or CompleteEpoch would hang, so re-push them.
    std::vector<Task> markers;
    size_t dropped_elements = 0;
    for (Task& task : shard->route_buffer) {
      if (task.src == nullptr) {
        markers.push_back(std::move(task));
      } else {
        dropped_elements += task.batch.size();
      }
    }
    RecordFault(shard->index, fault::kShardQueuePush,
                "injected routing fault; dropped " +
                    std::to_string(dropped_elements) + " element(s)");
    shard->route_buffer = std::move(markers);
    if (shard->route_buffer.empty()) return;
  }
  // Queue-wait span: PushBatch blocks while the shard's queue is full, so
  // this span's duration IS the backpressure the slowest shard exerts on
  // the routing (engine) thread.
  TraceSpan wait_span(TraceCat::kShard, "shard.queue_wait",
                      Tracer::Global().epoch_trace(),
                      static_cast<int64_t>(shard->route_buffer.size()),
                      static_cast<int64_t>(shard->index));
  Status st = shard->queue->PushBatch(&shard->route_buffer);
  if (!st.ok()) {
    // Cancelled: the queue closed under us (engine stopping). Nothing was
    // enqueued; drop the batch — shutdown teardown, not data loss.
    shard->route_buffer.clear();
    return;
  }
  shard->route_buffer.clear();
}

void ShardManager::Route(size_t shard_idx, PushSource* src,
                         StreamElement elem) {
  ElementBatch batch;
  batch.push_back(std::move(elem));
  RouteBatch(shard_idx, src, std::move(batch));
}

void ShardManager::RouteBatch(size_t shard_idx, PushSource* src,
                              ElementBatch batch) {
  if (batch.empty()) return;
  Shard* shard = shards_[shard_idx].get();
  shard->route_buffer.push_back(Task{src, std::move(batch)});
  if (shard->route_buffer.size() >= route_batch_) FlushBuffer(shard);
}

void ShardManager::CompleteEpoch() {
  if (stopped_) return;
  // Barrier span: flush + wait until every worker acknowledged its marker —
  // the tail of this span is the time spent waiting for the slowest shard.
  TraceSpan barrier_span(TraceCat::kShard, "shard.barrier",
                         Tracer::Global().epoch_trace(),
                         static_cast<int64_t>(shards_.size()));
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_remaining_ = shards_.size();
  }
  for (auto& shard : shards_) {
    shard->route_buffer.push_back(Task{});  // barrier marker
    FlushBuffer(shard.get());
  }
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [&] { return barrier_remaining_ == 0; });
}

void ShardManager::RecordFault(size_t shard, std::string site,
                               std::string detail) {
  std::lock_guard<std::mutex> lock(faults_mu_);
  epoch_faults_.push_back(
      FaultRecord{shard, std::move(site), std::move(detail)});
}

std::vector<ShardManager::FaultRecord> ShardManager::TakeEpochFaults() {
  std::lock_guard<std::mutex> lock(faults_mu_);
  std::vector<FaultRecord> out;
  out.swap(epoch_faults_);
  return out;
}

void ShardManager::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    shard->queue->Close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

ShardManager::ShardStats ShardManager::Stats(size_t shard_idx) const {
  const Shard* shard = shards_[shard_idx].get();
  ShardStats stats;
  stats.tuples_processed =
      shard->tuples_processed.load(std::memory_order_relaxed);
  stats.sps_processed = shard->sps_processed.load(std::memory_order_relaxed);
  stats.epochs = shard->epochs.load(std::memory_order_relaxed);
  stats.queue_depth = shard->queue->size();
  stats.queue_peak = shard->queue->peak_size();
  return stats;
}

}  // namespace spstream
