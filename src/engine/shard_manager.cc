#include "engine/shard_manager.h"

namespace spstream {

ShardManager::ShardManager(size_t num_shards, size_t queue_capacity,
                           size_t route_batch)
    : route_batch_(route_batch == 0 ? 1 : route_batch) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->queue = std::make_unique<BoundedQueue<Task>>(queue_capacity);
    shard->route_buffer.reserve(route_batch_);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

ShardManager::~ShardManager() { Stop(); }

void ShardManager::WorkerLoop(Shard* shard) {
  std::vector<Task> batch;
  int64_t tuples = 0, sps = 0;
  while (shard->queue->DrainInto(&batch)) {
    for (Task& task : batch) {
      if (task.src == nullptr) {
        // Epoch barrier: everything routed before the marker has been fed.
        // Publish the counters once per epoch (cheaper than per element,
        // and the engine only reads them at epoch boundaries anyway).
        shard->tuples_processed.store(tuples, std::memory_order_relaxed);
        shard->sps_processed.store(sps, std::memory_order_relaxed);
        shard->epochs.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(barrier_mu_);
          --barrier_remaining_;
        }
        barrier_cv_.notify_one();
        continue;
      }
      if (task.elem.is_tuple()) {
        ++tuples;
      } else if (task.elem.is_sp()) {
        ++sps;
      }
      task.src->Feed(std::move(task.elem));
    }
  }
  shard->tuples_processed.store(tuples, std::memory_order_relaxed);
  shard->sps_processed.store(sps, std::memory_order_relaxed);
}

void ShardManager::FlushBuffer(Shard* shard) {
  if (shard->route_buffer.empty()) return;
  shard->queue->PushBatch(&shard->route_buffer);
  shard->route_buffer.clear();
}

void ShardManager::Route(size_t shard_idx, PushSource* src,
                         StreamElement elem) {
  Shard* shard = shards_[shard_idx].get();
  shard->route_buffer.push_back(Task{src, std::move(elem)});
  if (shard->route_buffer.size() >= route_batch_) FlushBuffer(shard);
}

void ShardManager::CompleteEpoch() {
  if (stopped_) return;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_remaining_ = shards_.size();
  }
  for (auto& shard : shards_) {
    shard->route_buffer.push_back(Task{});  // barrier marker
    FlushBuffer(shard.get());
  }
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [&] { return barrier_remaining_ == 0; });
}

void ShardManager::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    shard->queue->Close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

ShardManager::ShardStats ShardManager::Stats(size_t shard_idx) const {
  const Shard* shard = shards_[shard_idx].get();
  ShardStats stats;
  stats.tuples_processed =
      shard->tuples_processed.load(std::memory_order_relaxed);
  stats.sps_processed = shard->sps_processed.load(std::memory_order_relaxed);
  stats.epochs = shard->epochs.load(std::memory_order_relaxed);
  stats.queue_depth = shard->queue->size();
  stats.queue_peak = shard->queue->peak_size();
  return stats;
}

}  // namespace spstream
