// EngineService — the thread-safe ingestion/execution entry point over
// SpStreamEngine, built for the networked deployment (src/net).
//
// SpStreamEngine itself is single-threaded by design (every operator
// mutates shared pipeline state). The service serializes all engine access
// behind one mutex — the concurrency model the StreamServer documents: many
// reader threads feed a mutex-guarded engine, one serve thread runs epochs.
// Lock holds are short (one Push batch, one catalog op, one Run epoch), and
// the epoch counters let any thread await "an epoch that started after my
// writes" without holding the engine lock.
//
// Epoch pacing protocol:
//   - producers call Push()/ExecuteInsertSp(): the element lands in the
//     engine's pending input and the service marks work pending;
//   - the serve thread blocks in WaitWork() and calls RunEpoch() when woken;
//   - a client that needs a flush calls RequestEpoch() and then
//     WaitEpoch(target): the target is the next epoch that has not yet
//     started, so it is guaranteed to see everything the caller pushed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "engine/engine.h"

namespace spstream {

class EngineService {
 public:
  explicit EngineService(EngineOptions options = {});

  // ---- thread-safe engine operations ------------------------------------
  RoleId RegisterRole(const std::string& name);
  Result<StreamId> RegisterStream(SchemaPtr schema);
  Status RegisterSubject(const std::string& name,
                         const std::vector<std::string>& role_names);
  Result<QueryId> RegisterQuery(const std::string& subject,
                                const std::string& sql);
  Status ExecuteInsertSp(const std::string& sql);
  /// \brief Admit a batch into a stream. `on_admitted` (optional) runs with
  /// the engine still locked, right after a successful admission — the
  /// server bumps its credit-replenish bookkeeping there, atomically with
  /// the admission, so an epoch (whose replenish pass holds the same lock)
  /// can never grant credits for elements it has not drained.
  Status Push(const std::string& stream_name,
              std::vector<StreamElement> elements,
              const std::function<void()>& on_admitted = nullptr);
  Result<std::vector<Tuple>> TakeResults(QueryId id);

  /// \brief Snapshot of the stream catalog: (id, schema) per stream, in id
  /// order — the HELLO_ACK schema negotiation payload.
  std::vector<std::pair<StreamId, SchemaPtr>> ListStreams();
  Result<StreamId> LookupStreamId(const std::string& name);
  Result<std::string> StreamName(StreamId id);

  // ---- epoch pacing -------------------------------------------------------
  /// \brief Ask the serve loop for an epoch; returns the epoch number that
  /// will include everything this thread pushed before the call.
  uint64_t RequestEpoch();

  /// \brief Block until `target` epochs have completed (or Stop()).
  void WaitEpoch(uint64_t target);

  /// \brief Serve thread: block until work is pending or Stop(); returns
  /// false on Stop. Consumes the work-pending mark.
  bool WaitWork();

  /// \brief Non-blocking WaitWork for a serve thread that multiplexes other
  /// wake sources (the reactor's engine thread waits on its own condition
  /// variable, woken by the notifier below as well as by ingress queues).
  /// Consumes the work-pending mark; true when an epoch should run.
  bool PollWork();

  /// \brief Install a callback invoked (outside all service locks) whenever
  /// work becomes pending or Stop() is called — the reactor's engine thread
  /// registers its wakeup here. Pass nullptr to clear. Must not be changed
  /// while producers are live.
  void SetWorkNotifier(std::function<void()> notify);

  /// \brief Serve thread: run one engine epoch. `after_run` (optional) is
  /// invoked with the engine still locked, right after Run() — the server
  /// drains subscriber results and snapshots credit consumption there,
  /// atomically with the epoch. Returns the epoch number; the epoch does
  /// NOT count as completed until MarkEpochComplete(epoch) — the server
  /// flushes the epoch's result frames in between, so a client whose
  /// WaitEpoch returned has its results already on the wire, ahead of the
  /// RUN ack.
  uint64_t RunEpoch(
      const std::function<void(SpStreamEngine*)>& after_run = nullptr);

  /// \brief Serve thread: publish epoch completion and wake WaitEpoch
  /// waiters.
  void MarkEpochComplete(uint64_t epoch);

  /// \brief Wake every waiter; WaitWork() returns false from now on.
  void Stop();

  uint64_t epochs_completed() const;

  /// \brief Direct engine access for single-threaded phases (setup before
  /// the server starts, inspection after it stops); while server threads
  /// are live, use WithEngine() instead.
  SpStreamEngine* UnsafeEngine() { return &engine_; }

  /// \brief Run `fn` with the engine lock held — arbitrary engine access
  /// that stays race-free while the server is live.
  template <typename Fn>
  auto WithEngine(Fn&& fn) {
    std::lock_guard<std::mutex> lock(engine_mu_);
    return fn(&engine_);
  }

  /// Registry/audit log are internally thread-safe; direct access is fine.
  MetricsRegistry* metrics() { return engine_.metrics(); }
  AuditLog* audit() { return engine_.audit(); }

  /// \brief Current degradation tier, lock-free: the controller publishes
  /// its state atomically (OverloadController::state()) before the gauge is
  /// set, so the reactor's loop threads can gate shed-before-decode on it
  /// per-frame without touching the engine lock — and the tier a test (or
  /// operator) observes via `engine.overload_state` is never fresher than
  /// what this returns.
  OverloadState overload_state() const { return engine_.overload_state(); }

 private:
  SpStreamEngine engine_;
  mutable std::mutex engine_mu_;  // guards every engine_ access

  /// Mark work pending under pace_mu_ and return the notifier to invoke
  /// after the lock is dropped (never call it under pace_mu_: the reactor's
  /// wakeup takes its own mutex).
  std::function<void()> MarkWorkPending();

  mutable std::mutex pace_mu_;  // guards the epoch/work state below
  std::condition_variable work_cv_;   // serve thread waits here
  std::condition_variable epoch_cv_;  // clients wait for completions here
  std::function<void()> work_notifier_;  // guarded by pace_mu_
  bool work_pending_ = false;
  bool stopped_ = false;
  uint64_t epochs_started_ = 0;
  uint64_t epochs_completed_ = 0;
};

}  // namespace spstream
