#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "exec/ss_operator.h"
#include "security/sp_codec.h"
#include "storage/state_codec.h"
#include "stream/element_batch.h"

namespace spstream {

namespace {

/// Source stream names referenced by a plan (leaf scan names).
void CollectSourceStreams(const LogicalNodePtr& node,
                          std::vector<std::string>* out) {
  if (node->kind == LogicalNode::Kind::kSource) {
    out->push_back(node->stream_name);
    return;
  }
  for (const LogicalNodePtr& child : node->children) {
    CollectSourceStreams(child, out);
  }
}

}  // namespace

SpStreamEngine::SpStreamEngine(EngineOptions options)
    : options_(std::move(options)),
      audit_(options_.audit_log_capacity),
      exec_ctx_{&roles_, &streams_, &metrics_,
                options_.enable_audit ? &audit_ : nullptr},
      overload_(OverloadOptions::FromEnv(options_.overload)) {
  // Tracing is process-global and sticky (the CLI's \trace and other
  // engines share the Tracer); an engine only ever switches it ON.
  if (options_.trace_sample_n > 0) {
    Tracer::Global().Enable(options_.trace_sample_n);
  }
  if (options_.num_shards > 1) {
    shard_manager_ = std::make_unique<ShardManager>(
        options_.num_shards, options_.shard_queue_capacity);
  }
  if (overload_.options().watchdog && shard_manager_) {
    // Liveness observer only: it samples the shards' progress counters
    // (atomics — safe off-thread) and flags wedges; all recovery happens at
    // the engine's own safe points.
    watchdog_ = std::make_unique<Watchdog>(
        overload_.options(),
        [this] {
          std::vector<ShardProgressSample> out;
          for (size_t i = 0; i < shard_manager_->num_shards(); ++i) {
            const ShardManager::ShardStats s = shard_manager_->Stats(i);
            ShardProgressSample p;
            p.progress = s.tuples_processed + s.sps_processed + s.epochs;
            p.queue_depth = s.queue_depth;
            out.push_back(p);
          }
          return out;
        },
        &metrics_);
    watchdog_->Start();
  }
  if (!options_.data_dir.empty()) {
    storage::DurabilityManager::Options dopts;
    dopts.data_dir = options_.data_dir;
    dopts.rebase_every =
        std::max<int>(1, static_cast<int>(options_.checkpoint_rebase_every));
    auto opened = storage::DurabilityManager::Open(
        std::move(dopts), &metrics_,
        options_.enable_audit ? &audit_ : nullptr);
    if (!opened.ok()) {
      // Fail safe: never run with a data dir we could not read — durability
      // stays OFF so the unreadable state is never overwritten.
      recovery_error_ = opened.status();
    } else {
      durability_ = std::move(opened).value();
      Status st = ApplyRecoveredState();
      if (!st.ok()) {
        recovery_error_ = st;
        for (QueryState& qs : queries_) ResetPipelines(&qs);
        durability_.reset();
      }
    }
    if (!recovery_error_.ok() && options_.enable_audit) {
      AuditEvent e;
      e.kind = AuditEventKind::kStorage;
      e.scope = "engine";
      e.detail = "recovery failed, durability disabled: " +
                 recovery_error_.ToString();
      audit_.Append(std::move(e));
    }
  }
}

SpStreamEngine::~SpStreamEngine() { Shutdown(); }

void SpStreamEngine::Shutdown() {
  // Join the watchdog before any member it probes can die.
  if (watchdog_) watchdog_->Stop();
  if (!durability_) return;
  // Clean shutdown flushes the audit ring's tail into the WAL so the trail
  // survives the process (docs/DURABILITY.md).
  (void)durability_->FlushAuditTail(audit_);
}

RoleId SpStreamEngine::RegisterRole(const std::string& name) {
  // Log first: RegisterRole has no error channel, and replaying the WAL in
  // order is what reproduces the same dense role ids after a crash.
  if (durability_ && !replaying_) {
    std::string payload;
    PutLengthPrefixed(name, &payload);
    Status st = durability_->LogCatalogRecord(
        storage::WalRecordType::kRoleRegister, std::move(payload));
    if (!st.ok() && options_.enable_audit) {
      AuditEvent e;
      e.kind = AuditEventKind::kStorage;
      e.scope = "engine";
      e.detail = "role '" + name + "' not durable: " + st.ToString();
      audit_.Append(std::move(e));
    }
  }
  return roles_.RegisterRole(name);
}

std::string SpStreamEngine::QueryTag(const QueryState* qs) const {
  return "q" + std::to_string(qs - queries_.data());
}

std::string SpStreamEngine::ShardTag(const std::string& query_tag,
                                     size_t shard) {
  return query_tag + ".shard" + std::to_string(shard);
}

void SpStreamEngine::RetirePipelineMetrics(QueryState* qs) {
  const std::string tag = QueryTag(qs);
  if (qs->pipeline) {
    qs->pipeline->HarvestInto(&metrics_, tag);
    metrics_.RetireQuery(tag);
  }
  if (qs->shards) {
    for (size_t i = 0; i < qs->shards->pipelines.size(); ++i) {
      const std::string shard_tag = ShardTag(tag, i);
      qs->shards->pipelines[i]->HarvestInto(&metrics_, shard_tag);
      metrics_.RetireQuery(shard_tag);
    }
  }
}

void SpStreamEngine::ResetPipelines(QueryState* qs) {
  RetirePipelineMetrics(qs);
  qs->pipeline.reset();
  qs->physical = StreamingPhysicalPlan{};
  qs->shards.reset();
  qs->shard_decision_made = false;
  qs->shard_fallback.clear();
}

void SpStreamEngine::SyncAnalyzerStats() {
  for (const auto& [name, state] : stream_states_) {
    const SpAnalyzerStats& s = state.analyzer->stats();
    const std::string prefix = "analyzer." + name + ".";
    metrics_.SetGauge(prefix + "sps_in", s.sps_in);
    metrics_.SetGauge(prefix + "sps_out", s.sps_out);
    metrics_.SetGauge(prefix + "sps_combined", s.sps_combined);
    metrics_.SetGauge(prefix + "sps_suppressed", s.sps_suppressed);
    metrics_.SetGauge(prefix + "sps_refined_by_server",
                      s.sps_refined_by_server);
    metrics_.SetGauge(prefix + "immutable_preserved", s.immutable_preserved);
  }
}

spstream::MetricsSnapshot SpStreamEngine::SnapshotMetrics() {
  SyncAnalyzerStats();
  metrics_.SetGauge("engine.queries", static_cast<int64_t>(queries_.size()));
  metrics_.SetGauge("engine.adaptations", adaptations_);
  metrics_.SetGauge("engine.queries_quarantined", quarantined_count_);
  metrics_.SetGauge("engine.audit_events", audit_.total());
  metrics_.SetGauge("engine.overload_state",
                    static_cast<int64_t>(overload_.state()));
  metrics_.SetGauge("engine.shed_decisions", overload_.shed_decisions());
  if (watchdog_) {
    metrics_.SetGauge("engine.watchdog_running", watchdog_->running() ? 1 : 0);
  }
  if (shard_manager_) {
    metrics_.SetGauge("engine.shards",
                      static_cast<int64_t>(shard_manager_->num_shards()));
    for (size_t i = 0; i < shard_manager_->num_shards(); ++i) {
      const ShardManager::ShardStats s = shard_manager_->Stats(i);
      const std::string prefix = "engine.shard" + std::to_string(i) + ".";
      metrics_.SetGauge(prefix + "tuples_processed", s.tuples_processed);
      metrics_.SetGauge(prefix + "sps_processed", s.sps_processed);
      metrics_.SetGauge(prefix + "epochs", s.epochs);
      metrics_.SetGauge(prefix + "queue_depth",
                        static_cast<int64_t>(s.queue_depth));
      metrics_.SetGauge(prefix + "queue_peak",
                        static_cast<int64_t>(s.queue_peak));
    }
  }
  return metrics_.Snapshot();
}

std::string SpStreamEngine::DumpMetrics(MetricsFormat format) {
  return SnapshotMetrics().Render(format);
}

Result<StreamId> SpStreamEngine::RegisterStream(SchemaPtr schema) {
  const std::string name = schema->stream_name();
  std::string payload;
  if (durability_ && !replaying_) storage::PutSchema(*schema, &payload);
  SP_ASSIGN_OR_RETURN(StreamId id, streams_.RegisterStream(std::move(schema)));
  StreamState state;
  state.analyzer = std::make_unique<SpAnalyzer>(&roles_, name);
  stream_states_.emplace(name, std::move(state));
  if (durability_ && !replaying_) {
    SP_RETURN_NOT_OK(durability_->LogCatalogRecord(
        storage::WalRecordType::kStreamRegister, std::move(payload)));
  }
  return id;
}

Status SpStreamEngine::RegisterSubject(
    const std::string& name, const std::vector<std::string>& role_names) {
  if (subjects_.count(name)) {
    return Status::AlreadyExists("subject '" + name + "' already exists");
  }
  std::vector<RoleId> ids;
  ids.reserve(role_names.size());
  for (const std::string& r : role_names) {
    // Subjects may only activate roles that exist (§II.A).
    SP_ASSIGN_OR_RETURN(RoleId id, roles_.Lookup(r));
    ids.push_back(id);
  }
  if (ids.empty()) {
    return Status::InvalidArgument(
        "every query specifier must hold at least one role (SII.A)");
  }
  // Write-ahead: the mutation is validated, so applying after a successful
  // log cannot fail — replay reproduces exactly what was applied.
  if (durability_ && !replaying_) {
    std::string payload;
    PutLengthPrefixed(name, &payload);
    PutVarint(role_names.size(), &payload);
    for (const std::string& r : role_names) PutLengthPrefixed(r, &payload);
    SP_RETURN_NOT_OK(durability_->LogCatalogRecord(
        storage::WalRecordType::kSubjectRegister, std::move(payload)));
  }
  subjects_.emplace(name, Subject(name, std::move(ids)));
  return Status::OK();
}

Status SpStreamEngine::UpdateSubjectRoles(
    const std::string& name, const std::vector<std::string>& role_names) {
  auto sub_it = subjects_.find(name);
  if (sub_it == subjects_.end()) {
    return Status::NotFound("unknown subject: " + name);
  }
  std::vector<RoleId> ids;
  ids.reserve(role_names.size());
  for (const std::string& r : role_names) {
    SP_ASSIGN_OR_RETURN(RoleId id, roles_.Lookup(r));
    ids.push_back(id);
  }
  if (ids.empty()) {
    return Status::InvalidArgument(
        "a subject must keep at least one role");
  }
  if (durability_ && !replaying_) {
    std::string payload;
    PutLengthPrefixed(name, &payload);
    PutVarint(role_names.size(), &payload);
    for (const std::string& r : role_names) PutLengthPrefixed(r, &payload);
    SP_RETURN_NOT_OK(durability_->LogCatalogRecord(
        storage::WalRecordType::kSubjectRoles, std::move(payload)));
  }
  sub_it->second.ReplaceRolesUnchecked(std::move(ids));

  // Re-plan every active query of this subject against the new roles.
  Planner planner(&streams_, &roles_);
  const RoleSet new_roles = RoleSet::FromIds(sub_it->second.roles());
  for (QueryState& qs : queries_) {
    if (!qs.active || qs.subject != name) continue;
    LogicalNodePtr plan = ApplySsPlacement(qs.bare_plan, new_roles,
                                           options_.initial_placement);
    if (options_.optimize_plans) {
      std::unordered_map<std::string, SourceStats> stats;
      for (const std::string& s : qs.source_streams) {
        stats[s] = options_.default_source_stats;
      }
      CostModel model(std::move(stats), options_.cost_options);
      Optimizer optimizer(&model);
      plan = optimizer.Optimize(plan);
    }
    qs.plan = std::move(plan);
    qs.roles = new_roles;
    // The new shield requires a fresh pipeline; continuous state resets
    // (windows refill; the next sps re-install policies).
    ResetPipelines(&qs);
    if (options_.enable_audit) {
      AuditEvent e;
      e.kind = AuditEventKind::kPlanAdapt;
      e.scope = QueryTag(&qs);
      e.roles = new_roles.ToString(roles_);
      e.detail = "re-planned after role change of subject '" + name + "'";
      audit_.Append(std::move(e));
    }
  }
  return Status::OK();
}

Status SpStreamEngine::ExecuteInsertSp(const std::string& sql) {
  SP_ASSIGN_OR_RETURN(InsertSpStatement stmt, ParseInsertSp(sql));
  auto it = stream_states_.find(stmt.stream);
  if (it == stream_states_.end()) {
    return Status::NotFound("unknown stream: " + stmt.stream);
  }
  Planner planner(&streams_, &roles_);
  SP_ASSIGN_OR_RETURN(SecurityPunctuation sp,
                      planner.BuildSp(stmt, next_default_ts_++));
  return Push(stmt.stream, {StreamElement(std::move(sp))});
}

Status SpStreamEngine::AddServerPolicy(const std::string& stream_name,
                                       SecurityPunctuation sp) {
  auto it = stream_states_.find(stream_name);
  if (it == stream_states_.end()) {
    return Status::NotFound("unknown stream: " + stream_name);
  }
  return it->second.analyzer->AddServerPolicy(std::move(sp));
}

Result<QueryId> SpStreamEngine::RegisterQuery(const std::string& subject,
                                              const std::string& sql) {
  auto sub_it = subjects_.find(subject);
  if (sub_it == subjects_.end()) {
    return Status::NotFound("unknown subject: " + subject);
  }
  SP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));

  Planner planner(&streams_, &roles_);
  const RoleSet query_roles = RoleSet::FromIds(sub_it->second.roles());
  SP_ASSIGN_OR_RETURN(LogicalNodePtr bare, planner.PlanSelect(stmt, RoleSet()));
  LogicalNodePtr plan =
      ApplySsPlacement(bare, query_roles, options_.initial_placement);

  if (options_.optimize_plans) {
    std::unordered_map<std::string, SourceStats> stats;
    std::vector<std::string> sources;
    CollectSourceStreams(plan, &sources);
    for (const std::string& s : sources) {
      stats[s] = options_.default_source_stats;
    }
    CostModel model(std::move(stats), options_.cost_options);
    Optimizer optimizer(&model);
    plan = optimizer.Optimize(plan);
  }

  QueryState qs;
  qs.subject = subject;
  qs.sql = sql;
  qs.plan = plan;
  qs.roles = query_roles;
  qs.bare_plan = bare;  // shield-free twin: the multi-query sharing key
  CollectSourceStreams(plan, &qs.source_streams);
  for (const std::string& s : qs.source_streams) {
    if (!stream_states_.count(s)) {
      return Status::NotFound("query references unknown stream: " + s);
    }
  }
  if (durability_ && !replaying_) {
    std::string payload;
    PutLengthPrefixed(subject, &payload);
    PutLengthPrefixed(sql, &payload);
    SP_RETURN_NOT_OK(durability_->LogCatalogRecord(
        storage::WalRecordType::kQueryRegister, std::move(payload)));
  }
  // The subject's role assignment freezes while it has registered queries.
  sub_it->second.Freeze();
  queries_.push_back(std::move(qs));
  return static_cast<QueryId>(queries_.size() - 1);
}

Status SpStreamEngine::DeregisterQuery(QueryId id) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  if (!qs->active) {
    return Status::InvalidArgument("query already deregistered");
  }
  if (durability_ && !replaying_) {
    std::string payload;
    PutVarint(static_cast<uint64_t>(id), &payload);
    SP_RETURN_NOT_OK(durability_->LogCatalogRecord(
        storage::WalRecordType::kQueryDeregister, std::move(payload)));
  }
  qs->active = false;
  if (qs->quarantined) {
    // The gauge tracks quarantined queries still registered; a deregistered
    // one no longer needs operator attention. (The per-query flag stays set
    // for history — IsQuarantined on a dead id still answers truthfully.)
    --quarantined_count_;
    metrics_.SetGauge("engine.queries_quarantined", quarantined_count_);
  }
  ResetPipelines(qs);
  auto sub_it = subjects_.find(qs->subject);
  if (sub_it != subjects_.end()) sub_it->second.Unfreeze();
  return Status::OK();
}

namespace {

/// Per-node metrics for EXPLAIN ANALYZE. In sharded execution this is the
/// sum across all pipeline clones of the node's physical operator.
using NodeMetricsMap =
    std::unordered_map<const LogicalNode*, OperatorMetrics>;

NodeMetricsMap CollectNodeMetrics(
    const std::unordered_map<const LogicalNode*, Operator*>& node_ops) {
  NodeMetricsMap out;
  for (const auto& [node, op] : node_ops) {
    if (op != nullptr) out[node] = op->metrics();
  }
  return out;
}

/// EXPLAIN ANALYZE rendering: the logical tree with each node annotated by
/// the live metrics of the physical operator(s) executing it.
/// Sum of total_nanos across all annotated nodes (denominator of the
/// per-operator time share EXPLAIN ANALYZE prints).
int64_t PlanTotalNanos(const NodeMetricsMap& node_metrics) {
  int64_t total = 0;
  for (const auto& [node, m] : node_metrics) {
    (void)node;
    total += m.total_nanos;
  }
  return total;
}

void RenderAnalyzedPlan(const LogicalNodePtr& node,
                        const NodeMetricsMap& node_metrics,
                        int64_t plan_total_nanos, int indent,
                        std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(node->Describe());
  auto it = node_metrics.find(node.get());
  if (it != node_metrics.end()) {
    const OperatorMetrics& m = it->second;
    std::ostringstream os;
    os << "  [actual: tuples=" << m.tuples_in << "->" << m.tuples_out
       << " sps=" << m.sps_in << "->" << m.sps_out;
    if (m.tuples_dropped_security > 0) {
      os << " sec_drop=" << m.tuples_dropped_security;
    }
    if (m.tuples_dropped_predicate > 0) {
      os << " pred_drop=" << m.tuples_dropped_predicate;
    }
    if (m.policy_installs > 0) os << " policy_installs=" << m.policy_installs;
    if (m.policy_install_failures > 0) {
      os << " policy_install_faults=" << m.policy_install_failures;
    }
    os << " total=" << m.total_nanos / 1e6 << "ms";
    if (plan_total_nanos > 0) {
      // The same per-operator attribution the trace spans carry, folded to
      // a share of the whole plan's processing time.
      char share[32];
      std::snprintf(share, sizeof(share), " share=%.1f%%",
                    100.0 * static_cast<double>(m.total_nanos) /
                        static_cast<double>(plan_total_nanos));
      os << share;
    }
    if (m.join_nanos > 0) os << " join=" << m.join_nanos / 1e6 << "ms";
    if (m.sp_maintenance_nanos > 0) {
      os << " sp_maint=" << m.sp_maintenance_nanos / 1e6 << "ms";
    }
    if (m.tuple_maintenance_nanos > 0) {
      os << " tup_maint=" << m.tuple_maintenance_nanos / 1e6 << "ms";
    }
    if (m.peak_state_bytes > 0) os << " peak_state=" << m.peak_state_bytes;
    if (m.batches_in > 0) {
      os << " batches=" << m.batches_in << " avg_batch=" << std::fixed
         << std::setprecision(1) << m.AvgBatchSize();
    }
    os << "]";
    out->append(os.str());
  }
  out->push_back('\n');
  for (const LogicalNodePtr& child : node->children) {
    RenderAnalyzedPlan(child, node_metrics, plan_total_nanos, indent + 1, out);
  }
}

}  // namespace

Result<std::string> SpStreamEngine::ExplainQuery(QueryId id,
                                                 bool analyze) const {
  SP_ASSIGN_OR_RETURN(const QueryState* qs, FindQuery(id));
  // Self-healing annotation (docs/ROBUSTNESS.md): how many watchdog-driven
  // recovery attempts this query has consumed, and whether it is now beyond
  // automatic help.
  std::string recovery_note;
  if (qs->quarantined) {
    const int max_attempts = overload_.options().max_recovery_attempts;
    if (qs->permanently_quarantined) {
      recovery_note = "recovery: PERMANENT after " +
                      std::to_string(qs->recovery_attempts) +
                      " attempts (only \\recover can resurrect)\n";
    } else if (max_attempts > 0) {
      recovery_note = "recovery: attempt " +
                      std::to_string(qs->recovery_attempts) + "/" +
                      std::to_string(max_attempts) +
                      (qs->next_recovery_nanos > 0 ? " scheduled (backoff)\n"
                                                   : " pending\n");
    }
  } else if (qs->recovery_attempts > 0) {
    recovery_note = "recovery: healthy after " +
                    std::to_string(qs->recovery_attempts) +
                    " attempt(s); state restored from the last durable "
                    "checkpoint\n";
  }
  if (!analyze) {
    std::string out = qs->plan->ToString();
    if (qs->quarantined) {
      out += "QUARANTINED (fail-closed): " + qs->quarantine_reason + "\n";
    }
    out += recovery_note;
    return out;
  }
  if (!qs->pipeline && !qs->shards) {
    // A quarantined query always lands here: its pipelines are torn down.
    std::string out = qs->plan->ToString();
    out += qs->quarantined
               ? "QUARANTINED (fail-closed): " + qs->quarantine_reason + "\n"
               : "(analyze: query has not executed yet)\n";
    out += recovery_note;
    if (qs->shard_decision_made && !qs->shard_fallback.empty()) {
      out += "sharding: fallback to single-threaded (" + qs->shard_fallback +
             ")\n";
    }
    return out;
  }
  std::string out = recovery_note;
  if (!qs->shards) {
    // Single-threaded path (possibly a sharding fallback).
    const NodeMetricsMap solo = CollectNodeMetrics(qs->physical.node_ops);
    RenderAnalyzedPlan(qs->plan, solo, PlanTotalNanos(solo), 0, &out);
    if (qs->shard_decision_made && !qs->shard_fallback.empty()) {
      out += "sharding: fallback to single-threaded (" + qs->shard_fallback +
             ")\n";
    }
    return out;
  }

  // Sharded execution: node annotations are summed across the clones, then
  // one row per shard breaks the totals down (docs/OBSERVABILITY.md).
  const QueryState::ShardSet& shards = *qs->shards;
  NodeMetricsMap merged;
  for (const StreamingPhysicalPlan& physical : shards.physicals) {
    for (const auto& [node, op] : physical.node_ops) {
      if (op != nullptr) merged[node].Merge(op->metrics());
    }
  }
  RenderAnalyzedPlan(qs->plan, merged, PlanTotalNanos(merged), 0, &out);
  std::ostringstream os;
  os << "shards: " << shards.pipelines.size() << " (keys:";
  for (const LeafShardKey& key : shards.routing.leaf_keys) {
    if (key.key_col == LeafShardKey::kByTupleId) {
      os << " tid";
    } else {
      os << " col" << key.key_col;
    }
  }
  os << ")\n";
  for (size_t s = 0; s < shards.pipelines.size(); ++s) {
    int64_t tuples_in = 0, sps_in = 0, installs = 0, results = 0;
    for (const auto& [stream, src] : shards.physicals[s].sources) {
      (void)stream;
      tuples_in += src->metrics().tuples_in;
      sps_in += src->metrics().sps_in;
    }
    for (const auto& op : shards.pipelines[s]->operators()) {
      installs += op->metrics().policy_installs;
    }
    if (shards.physicals[s].sink != nullptr) {
      results = shards.physicals[s].sink->metrics().tuples_in;
    }
    os << "  shard " << s << ": tuples=" << tuples_in << " sps=" << sps_in
       << " results=" << results << " policy_installs=" << installs;
    if (shard_manager_) {
      const ShardManager::ShardStats st = shard_manager_->Stats(s);
      os << " queue_depth=" << st.queue_depth
         << " queue_peak=" << st.queue_peak;
    }
    os << "\n";
  }
  out += os.str();
  return out;
}

Status SpStreamEngine::Push(const std::string& stream_name,
                            std::vector<StreamElement> elements) {
  auto it = stream_states_.find(stream_name);
  if (it == stream_states_.end()) {
    return Status::NotFound("unknown stream: " + stream_name);
  }
  StreamState& state = it->second;
  if (overload_.options().enable_shedding) {
    // Admission control: sample pressure against this stream's backlog,
    // then (in kShed only) drop data tuples. Sps/controls are never shed —
    // the PolicyTracker state downstream must track every revocation even
    // while the data plane degrades.
    ObservePressure(state.pending.size());
    (void)ShedAtAdmission(stream_name, &elements);
  }
  for (StreamElement& e : elements) {
    // Sp-batch lifecycle: the admission decision is the first engine-side
    // span of the batch's trace (the wire decode span, when the push came
    // over the network, is its parent via the same deterministic trace id).
    const bool traced_sp =
        e.is_sp() && Tracer::Global().SampleSpBatch(e.ts());
    const Timestamp sp_ts = traced_sp ? e.ts() : 0;
    TraceSpan span(TraceCat::kAnalyzer, "analyzer.admit",
                   traced_sp ? SpBatchTraceId(sp_ts) : 0, sp_ts);
    const size_t before = state.pending.size();
    for (StreamElement& admitted : state.analyzer->Process(std::move(e))) {
      if (durability_ && admitted.is_sp()) {
        // Forensic trail: which sp-batches were admitted rides in the next
        // epoch's group commit (not durable until the epoch is).
        std::string payload;
        PutLengthPrefixed(stream_name, &payload);
        PutVarint(ZigZagEncode(admitted.ts()), &payload);
        durability_->BufferForensic(storage::WalRecordType::kSpAdmitted,
                                    std::move(payload));
      }
      state.pending.push_back(std::move(admitted));
    }
    if (traced_sp) {
      span.set_args(sp_ts,
                    static_cast<int64_t>(state.pending.size() - before));
    }
  }
  return Status::OK();
}

Status SpStreamEngine::Run() {
  const int64_t run_start = NowNanos();
  // One trace per Run() epoch: batches that carry no sampled sp attach
  // their operator/shard spans here. Published engine-wide so shard worker
  // threads (and the net serve loop) can pick it up as their ambient trace.
  const TraceId epoch_trace =
      SP_TRACE_ENABLED() ? EpochTraceId(static_cast<uint64_t>(++run_epoch_seq_))
                         : 0;
  Tracer::Global().SetEpochTrace(epoch_trace);
  ScopedTraceContext trace_ctx(epoch_trace);
  TraceSpan run_span(TraceCat::kEngine, "engine.run", epoch_trace,
                     run_epoch_seq_, static_cast<int64_t>(queries_.size()));
  epoch_had_quarantine_ = false;
  // Self-healing pass: quarantined queries whose backoff elapsed get one
  // recovery attempt before this epoch executes (safe point — no pipeline
  // is mid-flight).
  MaybeRecoverQuarantined();
  // Flush analyzer tails so trailing sps are visible to the queries.
  for (auto& [name, state] : stream_states_) {
    (void)name;
    for (StreamElement& e : state.analyzer->Flush()) {
      state.pending.push_back(std::move(e));
    }
  }

  // Pipelines outlive this call (continuous queries), so they execute
  // against the engine's long-lived context, not a stack-local one.
  ExecContext& ctx = exec_ctx_;
  if (!options_.share_plans) {
    for (QueryState& qs : queries_) {
      // Quarantined queries stay dark until deregistered: their pipelines
      // are gone and re-running them would resume under unknown policy
      // state. The engine keeps serving every other query.
      if (!qs.active || qs.quarantined) continue;
      SP_RETURN_NOT_OK(RunSolo(&ctx, &qs));
    }
  } else {
    // Group share-compatible queries (identical shield-free plans) and run
    // each group through one shared trunk (§VI.C merge/split).
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < queries_.size(); ++i) {
      if (!queries_[i].active || queries_[i].quarantined) continue;
      groups[queries_[i].bare_plan->ToString()].push_back(i);
    }
    for (auto& [key, indexes] : groups) {
      (void)key;
      if (indexes.size() == 1) {
        SP_RETURN_NOT_OK(RunSolo(&ctx, &queries_[indexes[0]]));
      } else {
        SP_RETURN_NOT_OK(RunSharedGroup(&ctx, indexes));
      }
    }
  }
  // Durable commit point: checkpoint this epoch's operator-state deltas and
  // group-commit. Staged output is released only on success — a failed (or
  // quarantine-poisoned) epoch discards ALL of it, engine-wide, so a client
  // never sees a result the next recovery won't reproduce (at-most-once).
  if (durability_) {
    Status commit = epoch_had_quarantine_
                        ? Status::Internal(
                              "epoch contained a query quarantine; durable "
                              "commit aborted")
                        : CommitEpochDurable();
    if (commit.ok()) {
      for (QueryState& qs : queries_) {
        for (Tuple& t : qs.staged) {
          if (qs.callback) qs.callback(t);
          qs.results.push_back(std::move(t));
        }
        qs.staged.clear();
      }
    } else {
      for (QueryState& qs : queries_) qs.staged.clear();
      metrics_.AddCounter("storage.epochs_discarded");
      if (options_.enable_audit) {
        AuditEvent e;
        e.kind = AuditEventKind::kStorage;
        e.scope = "engine";
        e.detail = "epoch output discarded (commit failed): " +
                   commit.ToString();
        audit_.Append(std::move(e));
      }
    }
  }
  if (options_.adaptive) {
    for (auto& [name, state] : stream_states_) {
      if (!state.pending.empty()) {
        measured_stats_[name] = CollectStreamStatistics(state.pending);
      }
    }
  }
  for (auto& [name, state] : stream_states_) {
    (void)name;
    state.pending.clear();
  }
  if (options_.adaptive) {
    SP_RETURN_NOT_OK(AdaptPlans());
  }
  SyncAnalyzerStats();
  metrics_.AddCounter("engine.run_epochs");
  last_epoch_nanos_ = NowNanos() - run_start;
  metrics_.RecordLatency("engine.run", last_epoch_nanos_);
  if (options_.epoch_deadline_ms > 0 &&
      last_epoch_nanos_ > options_.epoch_deadline_ms * 1000000) {
    metrics_.AddCounter("engine.epoch_deadline_misses");
  }
  // Re-sample pressure with the fresh epoch duration: a deadline miss holds
  // the controller in kThrottle/kShed even though the backlog just drained.
  if (overload_.options().enable_shedding || options_.epoch_deadline_ms > 0) {
    ObservePressure(0);
  }
  // The epoch trace stays published after the run: the serve loop delivers
  // this epoch's RESULT frames after the engine lock drops, and those sends
  // belong to this epoch's trace. The next Run() overwrites it.
  return Status::OK();
}

Status SpStreamEngine::AdaptPlans() {
  if (measured_stats_.empty()) return Status::OK();
  for (QueryState& qs : queries_) {
    if (!qs.active) continue;
    // Cost model fed by the latest measurements of this query's sources.
    CostModelOptions mopts = options_.cost_options;
    std::unordered_map<std::string, SourceStats> src_stats;
    bool any_measured = false;
    for (const std::string& s : qs.source_streams) {
      auto it = measured_stats_.find(s);
      if (it == measured_stats_.end()) {
        src_stats[s] = options_.default_source_stats;
      } else {
        src_stats[s] = it->second.ToSourceStats();
        it->second.ApplyTo(&mopts);
        any_measured = true;
      }
    }
    if (!any_measured) continue;
    LogicalNodePtr fresh = ApplySsPlacement(qs.bare_plan, qs.roles,
                                            options_.initial_placement);
    CostModel model(std::move(src_stats), mopts);
    Optimizer optimizer(&model);
    LogicalNodePtr adapted = optimizer.Optimize(fresh);
    if (!PlansEqual(adapted, qs.plan)) {
      qs.plan = std::move(adapted);
      ResetPipelines(&qs);  // rebuilt (with the new shape) on next Run
      ++adaptations_;
      metrics_.AddCounter("engine.plan_adaptations");
      if (options_.enable_audit) {
        AuditEvent e;
        e.kind = AuditEventKind::kPlanAdapt;
        e.scope = QueryTag(&qs);
        e.roles = qs.roles.ToString(roles_);
        e.detail = "plan re-optimized against measured stream statistics";
        audit_.Append(std::move(e));
      }
    }
  }
  return Status::OK();
}

const StreamStatistics* SpStreamEngine::measured_stats(
    const std::string& stream) const {
  auto it = measured_stats_.find(stream);
  return it == measured_stats_.end() ? nullptr : &it->second;
}

Status SpStreamEngine::RunSolo(ExecContext* ctx, QueryState* qs) {
  if (shard_manager_) {
    SP_RETURN_NOT_OK(EnsureShardDecision(ctx, qs));
    if (qs->shards) return RunSharded(qs);
    // else: plan is not hash-partitionable — single-threaded fallback.
  }
  const std::string tag = QueryTag(qs);
  const int64_t epoch_start = NowNanos();
  SP_RETURN_NOT_OK(EnsurePipeline(ctx, qs));
  // Feed this epoch's admitted elements; operator state persists, so a
  // policy installed in an earlier epoch still governs later tuples.
  // Feeding is synchronous pipelined execution, so the wall time of one
  // Feed() IS that element's source→sink latency; tuple samples accumulate
  // locally and merge into the registry in one lock hold.
  Histogram tuple_latency;
  std::string fault_reason;
  // Tier-1 degradation: under pressure the source poll batches shrink so
  // sinks drain (and results deliver) at a finer granularity.
  const size_t batch_size =
      overload_.EffectiveBatchSize(std::max<size_t>(1, options_.batch_size));
  for (auto& [stream, src] : qs->physical.sources) {
    const std::vector<StreamElement>& pending =
        stream_states_.at(stream).pending;
    size_t i = 0;
    while (i < pending.size() && fault_reason.empty()) {
      // Assemble up to batch_size elements. The injection check stays
      // per-element so a given fault seed fires on the same RNG draw as the
      // per-element path did; a fault mid-assembly discards the partial
      // batch (nothing from it is fed — the epoch quarantines anyway).
      ElementBatch batch;
      // Feed columnar above batch size 1 so the kernels engage from the
      // source on; size 1 keeps the legacy row transport (a one-row
      // columnar batch costs more than the element it carries).
      if (batch_size > 1) batch.BeginColumnar();
      const size_t end = std::min(pending.size(), i + batch_size);
      batch.reserve(end - i);
      int64_t tuples_in_batch = 0;
      Timestamp traced_sp_ts = -1;
      for (; i < end; ++i) {
        if (SP_FAULT_FIRED(fault::kOperatorProcess)) {
          fault_reason =
              "injected fault at exec.operator_process (single-threaded path)";
          break;
        }
        if (pending[i].is_tuple()) {
          ++tuples_in_batch;
        } else if (pending[i].is_sp() && traced_sp_ts < 0 &&
                   Tracer::Global().SampleSpBatch(pending[i].ts())) {
          traced_sp_ts = pending[i].ts();
        }
        // copy: several queries read the same pending input
        batch.Append(pending[i]);
      }
      if (!fault_reason.empty() || batch.empty()) break;
      // Batches carrying a sampled sp run under that sp-batch's trace (the
      // downstream PushBatch / SS spans join the batch's lifecycle);
      // everything else stays on the epoch trace set by Run().
      ScopedTraceContext batch_trace(traced_sp_ts >= 0
                                         ? SpBatchTraceId(traced_sp_ts)
                                         : Tracer::CurrentTrace());
      const int64_t t0 = NowNanos();
      try {
        src->FeedBatch(std::move(batch));
      } catch (const std::exception& ex) {
        fault_reason = std::string("operator threw: ") + ex.what();
        break;
      } catch (...) {
        fault_reason = "operator threw a non-std exception";
        break;
      }
      // Synchronous pipelined execution: the batch's wall time is every
      // member tuple's source→sink latency (batch_size=1 degenerates to the
      // old per-element sample).
      if (tuples_in_batch > 0) {
        const int64_t wall = NowNanos() - t0;
        for (int64_t k = 0; k < tuples_in_batch; ++k) {
          tuple_latency.Record(wall);
        }
      }
    }
    if (!fault_reason.empty()) break;
  }
  if (!fault_reason.empty()) {
    // Fail the query closed: this epoch's partial output is discarded by
    // QuarantineQuery, the pipeline is torn down, the engine survives.
    metrics_.MergeTupleLatency(tag, tuple_latency);
    QuarantineQuery(qs, fault_reason);
    return Status::OK();
  }
  for (Tuple& t : qs->physical.sink->TakeTuples()) {
    DeliverResult(qs, std::move(t));
  }
  metrics_.MergeTupleLatency(tag, tuple_latency);
  metrics_.RecordEpochLatency(tag, NowNanos() - epoch_start);
  qs->pipeline->HarvestInto(&metrics_, tag);
  return Status::OK();
}

Status SpStreamEngine::EnsurePipeline(ExecContext* ctx, QueryState* qs) {
  if (qs->pipeline) return Status::OK();
  // First run (or after a re-plan): build the long-lived pipeline.
  qs->pipeline = std::make_unique<Pipeline>(ctx);
  SP_ASSIGN_OR_RETURN(qs->physical,
                      BuildStreamingPhysicalPlan(qs->pipeline.get(), qs->plan,
                                                 options_.physical));
  qs->pipeline->SetQueryTag(QueryTag(qs));
  return Status::OK();
}

void SpStreamEngine::DeliverResult(QueryState* qs, Tuple t) {
  if (durability_) {
    // Held back until this epoch's durable commit (delivered ≡ durable).
    qs->staged.push_back(std::move(t));
    return;
  }
  if (qs->callback) qs->callback(t);
  qs->results.push_back(std::move(t));
}

Status SpStreamEngine::EnsureShardDecision(ExecContext* ctx, QueryState* qs) {
  if (qs->shard_decision_made) return Status::OK();
  qs->shard_decision_made = true;
  ShardRouting routing = AnalyzeShardRouting(qs->plan);
  if (!routing.shardable) {
    qs->shard_fallback = routing.reason;
    if (options_.enable_audit) {
      AuditEvent e;
      e.kind = AuditEventKind::kPlanAdapt;
      e.scope = QueryTag(qs);
      e.roles = qs->roles.ToString(roles_);
      e.detail = "sharding fallback to single-threaded: " + routing.reason;
      audit_.Append(std::move(e));
    }
    return Status::OK();
  }

  auto shards = std::make_unique<QueryState::ShardSet>();
  shards->routing = std::move(routing);
  const std::string tag = QueryTag(qs);
  for (size_t i = 0; i < shard_manager_->num_shards(); ++i) {
    auto pipeline = std::make_unique<Pipeline>(ctx);
    SP_ASSIGN_OR_RETURN(
        StreamingPhysicalPlan physical,
        BuildStreamingPhysicalPlan(pipeline.get(), qs->plan,
                                   options_.physical));
    // All clones share the query's audit scope; per-shard registry keys
    // ("q0.shard1") are applied at harvest time instead.
    pipeline->SetQueryTag(tag);
    shards->pipelines.push_back(std::move(pipeline));
    shards->physicals.push_back(std::move(physical));
  }
  if (shards->physicals[0].sources.size() !=
      shards->routing.leaf_keys.size()) {
    // Router and plan compiler disagree on the leaf list; don't risk a
    // wrong partition — fall back.
    qs->shard_fallback = "router/compiler leaf-count mismatch";
    return Status::OK();
  }
  qs->shards = std::move(shards);
  return Status::OK();
}

Status SpStreamEngine::RunSharded(QueryState* qs) {
  const std::string tag = QueryTag(qs);
  const int64_t epoch_start = NowNanos();
  QueryState::ShardSet& shards = *qs->shards;
  const size_t num_shards = shards.pipelines.size();

  // Route this epoch's admitted elements leaf by leaf: tuples are
  // hash-partitioned on the leaf's shard key; sps and controls broadcast to
  // every shard so each clone's policy state converges identically.
  const size_t num_leaves = shards.physicals[0].sources.size();
  // Same tier-1 throttle as the solo path: smaller hand-off batches bound
  // how much one shard queue can lag the barrier under pressure.
  const size_t batch_size =
      overload_.EffectiveBatchSize(std::max<size_t>(1, options_.batch_size));
  for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
    const std::string& stream = shards.physicals[0].sources[leaf].first;
    const LeafShardKey key = shards.routing.leaf_keys[leaf];
    // Per-shard micro-batches: equivalence only needs per-shard element
    // order, so sps/controls ride inline in every shard's batch (broadcast)
    // and tuples only in their hash target's. A shard's batch is handed off
    // whole when it fills or when the leaf's input is exhausted.
    std::vector<ElementBatch> bufs(num_shards);
    if (batch_size > 1) {
      for (ElementBatch& b : bufs) b.BeginColumnar();
    }
    auto flush = [&](size_t s) {
      if (bufs[s].empty()) return;
      shard_manager_->RouteBatch(
          s, shards.physicals[s].sources[leaf].second, std::move(bufs[s]));
      bufs[s] = ElementBatch();
      if (batch_size > 1) bufs[s].BeginColumnar();
    };
    for (const StreamElement& e : stream_states_.at(stream).pending) {
      if (e.is_tuple()) {
        const size_t target = ShardOf(e.tuple(), key, num_shards);
        bufs[target].Append(e);
        if (bufs[target].size() >= batch_size) flush(target);
      } else {
        for (size_t s = 0; s < num_shards; ++s) {
          bufs[s].Append(e);
          if (bufs[s].size() >= batch_size) flush(s);
        }
      }
    }
    for (size_t s = 0; s < num_shards; ++s) flush(s);
  }
  // Barrier: every shard drains its share before we read any sink.
  shard_manager_->CompleteEpoch();

  // Supervision: the barrier has drained, so any fault recorded since the
  // previous drain belongs to exactly this query's epoch (Run routes and
  // barriers one query at a time). A faulted epoch never delivers — partial
  // sink output is discarded and the query fails closed.
  std::vector<ShardManager::FaultRecord> faults =
      shard_manager_->TakeEpochFaults();
  if (!faults.empty()) {
    std::string reason;
    for (const ShardManager::FaultRecord& f : faults) {
      if (!reason.empty()) reason += "; ";
      reason += "shard " + std::to_string(f.shard) + " " + f.site + ": " +
                f.detail;
    }
    QuarantineQuery(qs, reason);
    return Status::OK();
  }

  // Deterministic merge: shard id first, arrival order within the shard.
  for (size_t s = 0; s < num_shards; ++s) {
    for (Tuple& t : shards.physicals[s].sink->TakeTuples()) {
      DeliverResult(qs, std::move(t));
    }
  }
  metrics_.RecordEpochLatency(tag, NowNanos() - epoch_start);
  for (size_t s = 0; s < num_shards; ++s) {
    shards.pipelines[s]->HarvestInto(&metrics_, ShardTag(tag, s));
  }
  return Status::OK();
}

void SpStreamEngine::QuarantineQuery(QueryState* qs,
                                     const std::string& reason) {
  // Discard the faulted epoch's partial output before teardown: a shard
  // that went dark mid-epoch may have diverged policy state, so nothing
  // produced in this epoch is deliverable (fail closed — drop, never leak).
  if (qs->shards) {
    for (StreamingPhysicalPlan& physical : qs->shards->physicals) {
      if (physical.sink != nullptr) (void)physical.sink->TakeTuples();
    }
  }
  if (qs->pipeline && qs->physical.sink != nullptr) {
    (void)qs->physical.sink->TakeTuples();
  }
  qs->staged.clear();
  qs->quarantined = true;
  qs->quarantine_reason = reason;
  ++quarantined_count_;
  // Commit poisoning is narrowed to the shared-plans mode: solo pipelines
  // hold no cross-query state, this query's staged output was just
  // discarded and CommitEpochDurable skips its deltas, so every other
  // query's epoch commits normally. With share_plans ON the epoch-wide
  // commit still aborts — staged shared-trunk output of sibling queries may
  // depend on this query's group, and partial shared progress must not
  // commit (Run() audits the engine-wide discard).
  if (options_.share_plans) epoch_had_quarantine_ = true;
  // Self-healing: schedule a backoff-gated recovery attempt, or give up
  // permanently once the attempt budget is spent.
  const OverloadOptions& oo = overload_.options();
  if (oo.max_recovery_attempts > 0 && !qs->permanently_quarantined) {
    if (qs->recovery_attempts >= oo.max_recovery_attempts) {
      qs->permanently_quarantined = true;
      qs->next_recovery_nanos = 0;
      metrics_.AddCounter("engine.permanent_quarantines");
      if (options_.enable_audit) {
        AuditEvent e;
        e.kind = AuditEventKind::kRecovery;
        e.scope = QueryTag(qs);
        e.roles = qs->roles.ToString(roles_);
        e.detail = "permanently quarantined after " +
                   std::to_string(qs->recovery_attempts) +
                   " failed recovery attempts";
        audit_.Append(std::move(e));
      }
    } else {
      int64_t backoff_ms =
          oo.recovery_backoff_base_ms *
          (int64_t{1} << std::min(qs->recovery_attempts, 20));
      backoff_ms = std::min(backoff_ms, oo.recovery_backoff_max_ms);
      qs->next_recovery_nanos = NowNanos() + backoff_ms * 1000000;
    }
  }
  // Incident: snapshot the flight recorder with the epoch's trace id so the
  // spans leading into the quarantine survive for post-mortem.
  const TraceId quarantine_trace = Tracer::Global().epoch_trace();
  Tracer::Global().NoteIncident("query_quarantine", quarantine_trace);
  // Epoch-consistent teardown: callers reach here only after the shard
  // barrier drained, so the clones are quiescent and safe to destroy.
  ResetPipelines(qs);
  metrics_.AddCounter("engine.query_quarantines");
  metrics_.SetGauge("engine.queries_quarantined", quarantined_count_);
  if (options_.enable_audit) {
    AuditEvent e;
    e.kind = AuditEventKind::kQueryQuarantine;
    e.scope = QueryTag(qs);
    e.roles = qs->roles.ToString(roles_);
    e.detail = reason;
    e.trace_id = quarantine_trace;
    audit_.Append(std::move(e));
  }
  if (durability_) {
    // Incident dump: persist the audit tail (including the quarantine event
    // above) now, not at the next clean shutdown — the process may not get
    // one.
    (void)durability_->FlushAuditTail(audit_);
  }
}

Result<bool> SpStreamEngine::IsQuarantined(QueryId id) const {
  SP_ASSIGN_OR_RETURN(const QueryState* qs, FindQuery(id));
  return qs->quarantined;
}

// ---- overload resilience (docs/ROBUSTNESS.md) ------------------------------

void SpStreamEngine::ObservePressure(size_t pending_backlog) {
  size_t max_queue = 0;
  if (shard_manager_) {
    for (size_t i = 0; i < shard_manager_->num_shards(); ++i) {
      max_queue = std::max(max_queue, shard_manager_->Stats(i).queue_depth);
    }
  }
  const OverloadState prev = overload_.state();
  const OverloadState now = overload_.Observe(
      pending_backlog, max_queue, last_epoch_nanos_, options_.epoch_deadline_ms);
  metrics_.SetGauge("engine.overload_state", static_cast<int64_t>(now));
  if (now != prev) {
    metrics_.AddCounter("engine.overload_transitions");
    // Tier changes are rare lifecycle events — always in the flight
    // recorder, so an incident dump shows when degradation engaged.
    Tracer::Global().FlightMark(TraceCat::kIncident, "overload_state",
                                Tracer::Global().epoch_trace(),
                                static_cast<int64_t>(now),
                                static_cast<int64_t>(pending_backlog));
  }
}

int SpStreamEngine::StreamPriority(const std::string& stream_name) const {
  bool any = false;
  int best = 0;
  for (const QueryState& qs : queries_) {
    if (!qs.active || qs.quarantined) continue;
    if (std::find(qs.source_streams.begin(), qs.source_streams.end(),
                  stream_name) == qs.source_streams.end()) {
      continue;
    }
    best = any ? std::max(best, qs.priority) : qs.priority;
    any = true;
  }
  return best;
}

int SpStreamEngine::TopPriority() const {
  bool any = false;
  int best = 0;
  for (const QueryState& qs : queries_) {
    if (!qs.active || qs.quarantined) continue;
    best = any ? std::max(best, qs.priority) : qs.priority;
    any = true;
  }
  return best;
}

size_t SpStreamEngine::ShedAtAdmission(const std::string& stream_name,
                                       std::vector<StreamElement>* elements) {
  if (overload_.state() != OverloadState::kShed) return 0;
  const int stream_pri = StreamPriority(stream_name);
  const int top_pri = TopPriority();
  size_t shed = 0;
  elements->erase(
      std::remove_if(elements->begin(), elements->end(),
                     [&](const StreamElement& e) {
                       // The invariant: only data tuples are ever shed.
                       // Sps, control boundaries and revocations pass
                       // unconditionally, so downstream policy state never
                       // goes stale-permissive under load.
                       if (!e.is_tuple()) return false;
                       if (!overload_.ShouldShed(stream_pri, top_pri)) {
                         return false;
                       }
                       ++shed;
                       return true;
                     }),
      elements->end());
  if (shed == 0) return 0;
  metrics_.AddCounter("engine.tuples_shed", static_cast<int64_t>(shed));
  Tracer::Global().FlightMark(TraceCat::kIncident, "overload_shed",
                              Tracer::Global().epoch_trace(),
                              static_cast<int64_t>(shed));
  if (options_.enable_audit) {
    // One event per Push call, naming the queries whose input just thinned:
    // a shed is an overload decision, never confusable with a policy
    // denial (those stay AuditEventKind::kDenial, per tuple).
    AuditEvent e;
    e.kind = AuditEventKind::kShed;
    e.stream = stream_name;
    std::string scope;
    for (const QueryState& qs : queries_) {
      if (!qs.active || qs.quarantined) continue;
      if (std::find(qs.source_streams.begin(), qs.source_streams.end(),
                    stream_name) == qs.source_streams.end()) {
        continue;
      }
      if (!scope.empty()) scope += ",";
      scope += QueryTag(&qs);
    }
    e.scope = scope.empty() ? "engine" : scope;
    e.detail =
        "overload shed " + std::to_string(shed) +
        " data tuples at admission (policy=" +
        (overload_.options().shed_policy == ShedPolicy::kPriority ? "priority"
                                                                  : "random") +
        "); sps admitted losslessly";
    audit_.Append(std::move(e));
  }
  return shed;
}

Status SpStreamEngine::SetQueryPriority(QueryId id, int priority) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  qs->priority = priority;
  return Status::OK();
}

void SpStreamEngine::MaybeRecoverQuarantined() {
  if (overload_.options().max_recovery_attempts <= 0) return;
  const int64_t now = NowNanos();
  for (QueryState& qs : queries_) {
    if (!qs.active || !qs.quarantined || qs.permanently_quarantined) continue;
    if (qs.next_recovery_nanos == 0 || now < qs.next_recovery_nanos) continue;
    // A failed attempt re-arms its own backoff (or goes permanent) inside
    // RecoverQueryState; the engine keeps serving either way.
    (void)RecoverQueryState(&qs, /*manual=*/false);
  }
}

Status SpStreamEngine::RecoverQuery(QueryId id) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  if (!qs->active) {
    return Status::InvalidArgument("query is deregistered");
  }
  return RecoverQueryState(qs, /*manual=*/true);
}

Status SpStreamEngine::RecoverQueryState(QueryState* qs, bool manual) {
  const std::string tag = QueryTag(qs);
  if (!qs->quarantined) {
    return Status::InvalidArgument("query " + tag + " is not quarantined");
  }
  if (!manual) ++qs->recovery_attempts;
  qs->next_recovery_nanos = 0;
  const QueryId qid = static_cast<QueryId>(qs - queries_.data());
  TraceSpan span(TraceCat::kEngine, "engine.recover",
                 Tracer::Global().epoch_trace(), qid, qs->recovery_attempts);

  auto fail = [&](Status st) {
    // Don't leave a half-built pipeline behind; the query stays
    // quarantined (fail closed) and the attempt is on the record.
    ResetPipelines(qs);
    metrics_.AddCounter("engine.recovery_failures");
    const OverloadOptions& oo = overload_.options();
    if (!manual && qs->recovery_attempts >= oo.max_recovery_attempts) {
      qs->permanently_quarantined = true;
      metrics_.AddCounter("engine.permanent_quarantines");
    }
    if (options_.enable_audit) {
      AuditEvent e;
      e.kind = AuditEventKind::kRecovery;
      e.scope = tag;
      e.roles = qs->roles.ToString(roles_);
      e.detail = (manual ? std::string("manual recovery")
                         : "recovery attempt " +
                               std::to_string(qs->recovery_attempts)) +
                 " failed: " + st.ToString() +
                 (qs->permanently_quarantined ? " (now permanent)" : "");
      e.trace_id = Tracer::Global().epoch_trace();
      audit_.Append(std::move(e));
    }
    return st;
  };

  // 1. Rebuild the pipelines torn down at quarantine time. Fresh operators
  //    start with deny-all policy trackers — fail closed by construction.
  if (shard_manager_) {
    Status st = EnsureShardDecision(&exec_ctx_, qs);
    if (!st.ok()) return fail(st);
  }
  if (!qs->shards) {
    Status st = EnsurePipeline(&exec_ctx_, qs);
    if (!st.ok()) return fail(st);
  }

  // 2. Restore operator state from the last durable checkpoint — the same
  //    delta chain a process restart would replay, filtered to this query —
  //    so windows/aggregates resume where the last commit left them instead
  //    of refilling. SS operators restore FAIL-CLOSED by contract (deny-all
  //    at the checkpointed ts until a fresh sp-batch arrives).
  size_t restored = 0;
  if (durability_) {
    auto blobs = durability_->ReadQueryCheckpoint(qid);
    if (!blobs.ok()) return fail(blobs.status());
    for (const storage::StateEntry& e : *blobs) {
      Pipeline* pipeline = nullptr;
      if (qs->shards) {
        if (e.key.shard >= qs->shards->pipelines.size()) {
          return fail(Status::Internal("checkpoint names unknown shard " +
                                       std::to_string(e.key.shard)));
        }
        pipeline = qs->shards->pipelines[e.key.shard].get();
      } else {
        if (e.key.shard != 0 || !qs->pipeline) {
          return fail(Status::Internal(
              "checkpoint/shard-decision mismatch during recovery"));
        }
        pipeline = qs->pipeline.get();
      }
      const auto& ops = pipeline->operators();
      if (e.key.op_index >= ops.size()) {
        return fail(Status::Internal("checkpoint names unknown operator " +
                                     std::to_string(e.key.op_index)));
      }
      Operator* op = ops[e.key.op_index].get();
      if (!op->HasDurableState() || op->label() != e.label) {
        return fail(Status::Internal(
            "checkpoint/plan mismatch: expected operator '" + e.label +
            "', found '" + op->label() + "'"));
      }
      Status st = op->RestoreState(e.blob);
      if (!st.ok()) return fail(st);
      ++restored;
    }
    auto finish = [](Pipeline* pipeline) {
      for (const auto& op : pipeline->operators()) {
        if (op->HasDurableState()) op->OnRestoreComplete();
      }
    };
    if (qs->shards) {
      for (const auto& pipeline : qs->shards->pipelines) finish(pipeline.get());
    } else if (qs->pipeline) {
      finish(qs->pipeline.get());
    }
  }

  // 3. Back in service. A manual recover also clears the permanent flag
  //    (operator override).
  qs->quarantined = false;
  qs->quarantine_reason.clear();
  qs->permanently_quarantined = false;
  --quarantined_count_;
  metrics_.SetGauge("engine.queries_quarantined", quarantined_count_);
  metrics_.AddCounter("engine.query_recoveries");
  Tracer::Global().FlightMark(TraceCat::kIncident, "query_recovered",
                              Tracer::Global().epoch_trace(), qid,
                              qs->recovery_attempts);
  if (options_.enable_audit) {
    AuditEvent e;
    e.kind = AuditEventKind::kRecovery;
    e.scope = tag;
    e.roles = qs->roles.ToString(roles_);
    e.detail = (manual ? std::string("manual recovery")
                       : "recovery attempt " +
                             std::to_string(qs->recovery_attempts)) +
               " succeeded (" + std::to_string(restored) +
               " state blobs restored); policy trackers fail closed until "
               "the next sp-batch";
    e.trace_id = Tracer::Global().epoch_trace();
    audit_.Append(std::move(e));
  }
  if (durability_) (void)durability_->FlushAuditTail(audit_);
  return Status::OK();
}

Status SpStreamEngine::SubscribeResults(
    QueryId id, std::function<void(const Tuple&)> cb) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  qs->callback = std::move(cb);
  return Status::OK();
}

Status SpStreamEngine::RunSharedGroup(
    ExecContext* ctx, const std::vector<size_t>& query_indexes) {
  std::vector<RoleSet> group_roles;
  group_roles.reserve(query_indexes.size());
  for (size_t i : query_indexes) {
    group_roles.push_back(queries_[i].roles);
  }
  QueryState& first = queries_[query_indexes[0]];
  SharedPlan shared = BuildSharedPlan(first.bare_plan, group_roles);
  const std::string trunk_tag = "shared:" + QueryTag(&first);

  std::unordered_map<std::string, std::vector<StreamElement>> inputs;
  for (const std::string& s : first.source_streams) {
    inputs[s] = stream_states_.at(s).pending;
  }

  // One execution of the merged-SS trunk...
  const int64_t epoch_start = NowNanos();
  Pipeline trunk_pipeline(ctx);
  SP_ASSIGN_OR_RETURN(PhysicalPlan trunk,
                      BuildPhysicalPlan(&trunk_pipeline, shared.trunk,
                                        inputs, options_.physical));
  trunk_pipeline.SetQueryTag(trunk_tag);
  trunk_pipeline.Run(/*batch_per_poll=*/64);
  const std::vector<StreamElement>& trunk_out = trunk.sink->elements();
  // Shared trunks are rebuilt every epoch, so their counters accumulate
  // into the registry by merging (unlike long-lived solo pipelines, whose
  // cumulative counters overwrite).
  trunk_pipeline.HarvestInto(&metrics_, trunk_tag,
                             Pipeline::HarvestMode::kMerge);

  // ...then one cheap split shield per query over the (small) shared
  // output.
  for (size_t i : query_indexes) {
    QueryState& qs = queries_[i];
    const std::string tag = QueryTag(&qs);
    Pipeline split(ctx);
    auto* src = split.Add<SourceOperator>("trunk", trunk_out);
    SsOptions o;
    o.predicates = {qs.roles};
    o.stream_name = trunk.output_stream_name;
    o.schema = trunk.output_schema;
    auto* ss = split.Add<SsOperator>(std::move(o), "split_ss");
    auto* sink = split.Add<CollectorSink>();
    src->AddOutput(ss);
    ss->AddOutput(sink);
    split.SetQueryTag(tag);
    split.Run(/*batch_per_poll=*/64);
    for (Tuple& t : sink->Tuples()) {
      DeliverResult(&qs, std::move(t));
    }
    split.HarvestInto(&metrics_, tag, Pipeline::HarvestMode::kMerge);
    metrics_.RecordEpochLatency(tag, NowNanos() - epoch_start);
  }
  return Status::OK();
}

// ---- durable state (docs/DURABILITY.md) ------------------------------------

Status SpStreamEngine::CommitEpochDurable() {
  TraceSpan span(TraceCat::kStorage, "storage.commit",
                 Tracer::CurrentTrace(), committed_epochs_ + 1);
  const bool full = durability_->WantsFullCheckpoint();
  std::vector<storage::StateEntry> entries;
  std::vector<Operator*> durable_ops;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& qs = queries_[qi];
    if (!qs.active || qs.quarantined) continue;
    auto collect = [&](Pipeline* pipeline, uint32_t shard) {
      const auto& ops = pipeline->operators();
      for (size_t oi = 0; oi < ops.size(); ++oi) {
        Operator* op = ops[oi].get();
        if (!op->HasDurableState()) continue;
        storage::StateEntry entry;
        entry.key.query = static_cast<uint32_t>(qi);
        entry.key.shard = shard;
        entry.key.op_index = static_cast<uint32_t>(oi);
        entry.label = op->label();
        op->CheckpointState(&entry.blob, full);
        durable_ops.push_back(op);
        // An empty blob means "unchanged since the cursor" — elided.
        if (!entry.blob.empty()) entries.push_back(std::move(entry));
      }
    };
    if (qs.shards) {
      for (size_t s = 0; s < qs.shards->pipelines.size(); ++s) {
        collect(qs.shards->pipelines[s].get(), static_cast<uint32_t>(s));
      }
    } else if (qs.pipeline) {
      collect(qs.pipeline.get(), 0);
    }
  }
  storage::EpochMeta meta;
  meta.epoch = static_cast<uint64_t>(committed_epochs_) + 1;
  meta.next_default_ts = next_default_ts_;
  meta.num_shards = static_cast<int>(options_.num_shards);
  meta.batch_size = options_.batch_size;
  SP_RETURN_NOT_OK(durability_->CommitEpoch(meta, full, entries));
  // The commit point passed: only now may checkpoint cursors advance.
  for (Operator* op : durable_ops) op->OnCheckpointDurable();
  ++committed_epochs_;
  metrics_.SetGauge("storage.durable_epochs", committed_epochs_);
  return Status::OK();
}

Status SpStreamEngine::ReplayCatalog(
    const std::vector<storage::WalRecord>& records) {
  using storage::WalRecordType;
  for (const storage::WalRecord& r : records) {
    const std::string_view data = r.payload;
    size_t off = 0;
    switch (static_cast<WalRecordType>(r.type)) {
      case WalRecordType::kRoleRegister: {
        SP_ASSIGN_OR_RETURN(std::string name, GetLengthPrefixed(data, &off));
        (void)RegisterRole(name);
        break;
      }
      case WalRecordType::kStreamRegister: {
        SP_ASSIGN_OR_RETURN(SchemaPtr schema, storage::GetSchema(data, &off));
        auto res = RegisterStream(std::move(schema));
        if (!res.ok()) return res.status();
        break;
      }
      case WalRecordType::kSubjectRegister:
      case WalRecordType::kSubjectRoles: {
        SP_ASSIGN_OR_RETURN(std::string name, GetLengthPrefixed(data, &off));
        SP_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, &off));
        std::vector<std::string> role_names;
        role_names.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          SP_ASSIGN_OR_RETURN(std::string rn, GetLengthPrefixed(data, &off));
          role_names.push_back(std::move(rn));
        }
        if (static_cast<WalRecordType>(r.type) ==
            WalRecordType::kSubjectRegister) {
          SP_RETURN_NOT_OK(RegisterSubject(name, role_names));
        } else {
          SP_RETURN_NOT_OK(UpdateSubjectRoles(name, role_names));
        }
        break;
      }
      case WalRecordType::kQueryRegister: {
        SP_ASSIGN_OR_RETURN(std::string subject,
                            GetLengthPrefixed(data, &off));
        SP_ASSIGN_OR_RETURN(std::string sql, GetLengthPrefixed(data, &off));
        auto res = RegisterQuery(subject, sql);
        if (!res.ok()) return res.status();
        break;
      }
      case WalRecordType::kQueryDeregister: {
        SP_ASSIGN_OR_RETURN(uint64_t id, GetVarint(data, &off));
        SP_RETURN_NOT_OK(DeregisterQuery(static_cast<QueryId>(id)));
        break;
      }
      default:
        // Forensic record types never land in the recovered catalog list.
        return Status::Internal("unexpected catalog record type " +
                                std::to_string(static_cast<int>(r.type)));
    }
  }
  return Status::OK();
}

Status SpStreamEngine::ApplyRecoveredState() {
  storage::RecoveredState& rec = durability_->recovered();
  if (!rec.found) return Status::OK();
  TraceSpan span(TraceCat::kStorage, "storage.recover", Tracer::CurrentTrace(),
                 static_cast<int64_t>(rec.epoch));

  // 1. Replay the catalog in WAL order. The engine's own Register* methods
  // run the real validation/planning, and dense ids (roles, queries) come
  // out identical because the order is identical.
  replaying_ = true;
  Status catalog_st = ReplayCatalog(rec.catalog);
  replaying_ = false;
  SP_RETURN_NOT_OK(catalog_st);

  committed_epochs_ = static_cast<int64_t>(rec.epoch);
  next_default_ts_ = rec.next_default_ts;
  recovered_sessions_ = std::move(rec.sessions);
  recovered_next_session_id_ = rec.next_session_id;
  metrics_.SetGauge("storage.durable_epochs", committed_epochs_);

  // 2. Operator state. A shard-layout change makes the per-clone blobs
  // meaningless — skip the restore (windows refill; policy trackers
  // re-install from the next sp-batches, denying by default meanwhile).
  const bool layout_matches =
      rec.num_shards == static_cast<int>(options_.num_shards);
  if (!rec.blobs.empty() && layout_matches) {
    for (QueryState& qs : queries_) {
      if (!qs.active || qs.quarantined) continue;
      if (shard_manager_) {
        SP_RETURN_NOT_OK(EnsureShardDecision(&exec_ctx_, &qs));
      }
      if (!qs.shards) SP_RETURN_NOT_OK(EnsurePipeline(&exec_ctx_, &qs));
    }
    // Apply the delta chain oldest-first; each blob must land on the exact
    // operator it was cut from (label validated — a plan mismatch is loud).
    for (const storage::StateEntry& e : rec.blobs) {
      if (e.key.query >= queries_.size()) {
        return Status::Internal("checkpoint names unknown query " +
                                std::to_string(e.key.query));
      }
      QueryState& qs = queries_[e.key.query];
      if (!qs.active) continue;  // deregistered later in the WAL
      Pipeline* pipeline = nullptr;
      if (qs.shards) {
        if (e.key.shard >= qs.shards->pipelines.size()) {
          return Status::Internal("checkpoint names unknown shard " +
                                  std::to_string(e.key.shard));
        }
        pipeline = qs.shards->pipelines[e.key.shard].get();
      } else {
        if (e.key.shard != 0 || !qs.pipeline) {
          return Status::Internal("checkpoint/shard-decision mismatch for q" +
                                  std::to_string(e.key.query));
        }
        pipeline = qs.pipeline.get();
      }
      const auto& ops = pipeline->operators();
      if (e.key.op_index >= ops.size()) {
        return Status::Internal("checkpoint names unknown operator index " +
                                std::to_string(e.key.op_index));
      }
      Operator* op = ops[e.key.op_index].get();
      if (!op->HasDurableState() || op->label() != e.label) {
        return Status::Internal(
            "checkpoint/plan mismatch: expected operator '" + e.label +
            "', found '" + op->label() + "'");
      }
      SP_RETURN_NOT_OK(op->RestoreState(e.blob));
    }
    // Chain applied: let operators rebuild derived structures (SPIndex etc).
    for (QueryState& qs : queries_) {
      if (!qs.active) continue;
      auto finish = [](Pipeline* pipeline) {
        for (const auto& op : pipeline->operators()) {
          if (op->HasDurableState()) op->OnRestoreComplete();
        }
      };
      if (qs.shards) {
        for (const auto& pipeline : qs.shards->pipelines) {
          finish(pipeline.get());
        }
      } else if (qs.pipeline) {
        finish(qs.pipeline.get());
      }
    }
  }

  metrics_.AddCounter("storage.recoveries");
  if (options_.enable_audit) {
    AuditEvent e;
    e.kind = AuditEventKind::kStorage;
    e.scope = "engine";
    e.detail = "recovered epoch " + std::to_string(rec.epoch) + " (" +
               std::to_string(rec.catalog.size()) + " catalog records, " +
               std::to_string(rec.blobs.size()) + " state blobs" +
               (layout_matches ? "" : ", state skipped: shard layout changed") +
               (rec.tail_torn ? ", torn WAL tail truncated" : "") +
               "); policy trackers fail closed until the next sp-batch";
    audit_.Append(std::move(e));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> SpStreamEngine::Results(QueryId id) const {
  SP_ASSIGN_OR_RETURN(const QueryState* qs, FindQuery(id));
  return qs->results;
}

Result<std::vector<Tuple>> SpStreamEngine::TakeResults(QueryId id) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  std::vector<Tuple> out = std::move(qs->results);
  qs->results.clear();
  return out;
}

const SpAnalyzerStats* SpStreamEngine::analyzer_stats(
    const std::string& stream) const {
  auto it = stream_states_.find(stream);
  return it == stream_states_.end() ? nullptr
                                    : &it->second.analyzer->stats();
}

auto SpStreamEngine::FindQuery(QueryId id) -> Result<QueryState*> {
  if (id >= queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return &queries_[id];
}

auto SpStreamEngine::FindQuery(QueryId id) const
    -> Result<const QueryState*> {
  if (id >= queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return &queries_[id];
}

}  // namespace spstream
