#include "engine/engine.h"

#include <algorithm>

#include "exec/ss_operator.h"

namespace spstream {

namespace {

/// Source stream names referenced by a plan (leaf scan names).
void CollectSourceStreams(const LogicalNodePtr& node,
                          std::vector<std::string>* out) {
  if (node->kind == LogicalNode::Kind::kSource) {
    out->push_back(node->stream_name);
    return;
  }
  for (const LogicalNodePtr& child : node->children) {
    CollectSourceStreams(child, out);
  }
}

}  // namespace

SpStreamEngine::SpStreamEngine(EngineOptions options)
    : options_(std::move(options)) {}

Result<StreamId> SpStreamEngine::RegisterStream(SchemaPtr schema) {
  const std::string name = schema->stream_name();
  SP_ASSIGN_OR_RETURN(StreamId id, streams_.RegisterStream(std::move(schema)));
  StreamState state;
  state.analyzer = std::make_unique<SpAnalyzer>(&roles_, name);
  stream_states_.emplace(name, std::move(state));
  return id;
}

Status SpStreamEngine::RegisterSubject(
    const std::string& name, const std::vector<std::string>& role_names) {
  if (subjects_.count(name)) {
    return Status::AlreadyExists("subject '" + name + "' already exists");
  }
  std::vector<RoleId> ids;
  ids.reserve(role_names.size());
  for (const std::string& r : role_names) {
    // Subjects may only activate roles that exist (§II.A).
    SP_ASSIGN_OR_RETURN(RoleId id, roles_.Lookup(r));
    ids.push_back(id);
  }
  if (ids.empty()) {
    return Status::InvalidArgument(
        "every query specifier must hold at least one role (SII.A)");
  }
  subjects_.emplace(name, Subject(name, std::move(ids)));
  return Status::OK();
}

Status SpStreamEngine::UpdateSubjectRoles(
    const std::string& name, const std::vector<std::string>& role_names) {
  auto sub_it = subjects_.find(name);
  if (sub_it == subjects_.end()) {
    return Status::NotFound("unknown subject: " + name);
  }
  std::vector<RoleId> ids;
  ids.reserve(role_names.size());
  for (const std::string& r : role_names) {
    SP_ASSIGN_OR_RETURN(RoleId id, roles_.Lookup(r));
    ids.push_back(id);
  }
  if (ids.empty()) {
    return Status::InvalidArgument(
        "a subject must keep at least one role");
  }
  sub_it->second.ReplaceRolesUnchecked(std::move(ids));

  // Re-plan every active query of this subject against the new roles.
  Planner planner(&streams_, &roles_);
  const RoleSet new_roles = RoleSet::FromIds(sub_it->second.roles());
  for (QueryState& qs : queries_) {
    if (!qs.active || qs.subject != name) continue;
    LogicalNodePtr plan = ApplySsPlacement(qs.bare_plan, new_roles,
                                           options_.initial_placement);
    if (options_.optimize_plans) {
      std::unordered_map<std::string, SourceStats> stats;
      for (const std::string& s : qs.source_streams) {
        stats[s] = options_.default_source_stats;
      }
      CostModel model(std::move(stats), options_.cost_options);
      Optimizer optimizer(&model);
      plan = optimizer.Optimize(plan);
    }
    qs.plan = std::move(plan);
    qs.roles = new_roles;
    // The new shield requires a fresh pipeline; continuous state resets
    // (windows refill; the next sps re-install policies).
    qs.pipeline.reset();
    qs.physical = StreamingPhysicalPlan{};
  }
  return Status::OK();
}

Status SpStreamEngine::ExecuteInsertSp(const std::string& sql) {
  SP_ASSIGN_OR_RETURN(InsertSpStatement stmt, ParseInsertSp(sql));
  auto it = stream_states_.find(stmt.stream);
  if (it == stream_states_.end()) {
    return Status::NotFound("unknown stream: " + stmt.stream);
  }
  Planner planner(&streams_, &roles_);
  SP_ASSIGN_OR_RETURN(SecurityPunctuation sp,
                      planner.BuildSp(stmt, next_default_ts_++));
  return Push(stmt.stream, {StreamElement(std::move(sp))});
}

Status SpStreamEngine::AddServerPolicy(const std::string& stream_name,
                                       SecurityPunctuation sp) {
  auto it = stream_states_.find(stream_name);
  if (it == stream_states_.end()) {
    return Status::NotFound("unknown stream: " + stream_name);
  }
  return it->second.analyzer->AddServerPolicy(std::move(sp));
}

Result<QueryId> SpStreamEngine::RegisterQuery(const std::string& subject,
                                              const std::string& sql) {
  auto sub_it = subjects_.find(subject);
  if (sub_it == subjects_.end()) {
    return Status::NotFound("unknown subject: " + subject);
  }
  SP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));

  Planner planner(&streams_, &roles_);
  const RoleSet query_roles = RoleSet::FromIds(sub_it->second.roles());
  SP_ASSIGN_OR_RETURN(LogicalNodePtr bare, planner.PlanSelect(stmt, RoleSet()));
  LogicalNodePtr plan =
      ApplySsPlacement(bare, query_roles, options_.initial_placement);

  if (options_.optimize_plans) {
    std::unordered_map<std::string, SourceStats> stats;
    std::vector<std::string> sources;
    CollectSourceStreams(plan, &sources);
    for (const std::string& s : sources) {
      stats[s] = options_.default_source_stats;
    }
    CostModel model(std::move(stats), options_.cost_options);
    Optimizer optimizer(&model);
    plan = optimizer.Optimize(plan);
  }

  QueryState qs;
  qs.subject = subject;
  qs.sql = sql;
  qs.plan = plan;
  qs.roles = query_roles;
  qs.bare_plan = bare;  // shield-free twin: the multi-query sharing key
  CollectSourceStreams(plan, &qs.source_streams);
  for (const std::string& s : qs.source_streams) {
    if (!stream_states_.count(s)) {
      return Status::NotFound("query references unknown stream: " + s);
    }
  }
  // The subject's role assignment freezes while it has registered queries.
  sub_it->second.Freeze();
  queries_.push_back(std::move(qs));
  return static_cast<QueryId>(queries_.size() - 1);
}

Status SpStreamEngine::DeregisterQuery(QueryId id) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  if (!qs->active) {
    return Status::InvalidArgument("query already deregistered");
  }
  qs->active = false;
  qs->pipeline.reset();
  qs->physical = StreamingPhysicalPlan{};
  auto sub_it = subjects_.find(qs->subject);
  if (sub_it != subjects_.end()) sub_it->second.Unfreeze();
  return Status::OK();
}

Result<std::string> SpStreamEngine::ExplainQuery(QueryId id) const {
  SP_ASSIGN_OR_RETURN(const QueryState* qs, FindQuery(id));
  return qs->plan->ToString();
}

Status SpStreamEngine::Push(const std::string& stream_name,
                            std::vector<StreamElement> elements) {
  auto it = stream_states_.find(stream_name);
  if (it == stream_states_.end()) {
    return Status::NotFound("unknown stream: " + stream_name);
  }
  StreamState& state = it->second;
  for (StreamElement& e : elements) {
    for (StreamElement& admitted : state.analyzer->Process(std::move(e))) {
      state.pending.push_back(std::move(admitted));
    }
  }
  return Status::OK();
}

Status SpStreamEngine::Run() {
  // Flush analyzer tails so trailing sps are visible to the queries.
  for (auto& [name, state] : stream_states_) {
    (void)name;
    for (StreamElement& e : state.analyzer->Flush()) {
      state.pending.push_back(std::move(e));
    }
  }

  ExecContext ctx{&roles_, &streams_};
  if (!options_.share_plans) {
    for (QueryState& qs : queries_) {
      if (!qs.active) continue;
      SP_RETURN_NOT_OK(RunSolo(&ctx, &qs));
    }
  } else {
    // Group share-compatible queries (identical shield-free plans) and run
    // each group through one shared trunk (§VI.C merge/split).
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < queries_.size(); ++i) {
      if (!queries_[i].active) continue;
      groups[queries_[i].bare_plan->ToString()].push_back(i);
    }
    for (auto& [key, indexes] : groups) {
      (void)key;
      if (indexes.size() == 1) {
        SP_RETURN_NOT_OK(RunSolo(&ctx, &queries_[indexes[0]]));
      } else {
        SP_RETURN_NOT_OK(RunSharedGroup(&ctx, indexes));
      }
    }
  }
  if (options_.adaptive) {
    for (auto& [name, state] : stream_states_) {
      if (!state.pending.empty()) {
        measured_stats_[name] = CollectStreamStatistics(state.pending);
      }
    }
  }
  for (auto& [name, state] : stream_states_) {
    (void)name;
    state.pending.clear();
  }
  if (options_.adaptive) {
    SP_RETURN_NOT_OK(AdaptPlans());
  }
  return Status::OK();
}

Status SpStreamEngine::AdaptPlans() {
  if (measured_stats_.empty()) return Status::OK();
  for (QueryState& qs : queries_) {
    if (!qs.active) continue;
    // Cost model fed by the latest measurements of this query's sources.
    CostModelOptions mopts = options_.cost_options;
    std::unordered_map<std::string, SourceStats> src_stats;
    bool any_measured = false;
    for (const std::string& s : qs.source_streams) {
      auto it = measured_stats_.find(s);
      if (it == measured_stats_.end()) {
        src_stats[s] = options_.default_source_stats;
      } else {
        src_stats[s] = it->second.ToSourceStats();
        it->second.ApplyTo(&mopts);
        any_measured = true;
      }
    }
    if (!any_measured) continue;
    LogicalNodePtr fresh = ApplySsPlacement(qs.bare_plan, qs.roles,
                                            options_.initial_placement);
    CostModel model(std::move(src_stats), mopts);
    Optimizer optimizer(&model);
    LogicalNodePtr adapted = optimizer.Optimize(fresh);
    if (!PlansEqual(adapted, qs.plan)) {
      qs.plan = std::move(adapted);
      qs.pipeline.reset();  // rebuilt (with the new shape) on next Run
      qs.physical = StreamingPhysicalPlan{};
      ++adaptations_;
    }
  }
  return Status::OK();
}

const StreamStatistics* SpStreamEngine::measured_stats(
    const std::string& stream) const {
  auto it = measured_stats_.find(stream);
  return it == measured_stats_.end() ? nullptr : &it->second;
}

Status SpStreamEngine::RunSolo(ExecContext* ctx, QueryState* qs) {
  if (!qs->pipeline) {
    // First run (or after a re-plan): build the long-lived pipeline.
    qs->pipeline = std::make_unique<Pipeline>(ctx);
    SP_ASSIGN_OR_RETURN(qs->physical,
                        BuildStreamingPhysicalPlan(qs->pipeline.get(),
                                                   qs->plan,
                                                   options_.physical));
  }
  // Feed this epoch's admitted elements; operator state persists, so a
  // policy installed in an earlier epoch still governs later tuples.
  for (auto& [stream, src] : qs->physical.sources) {
    for (const StreamElement& e : stream_states_.at(stream).pending) {
      src->Feed(e);  // copy: several queries read the same pending input
    }
  }
  for (Tuple& t : qs->physical.sink->TakeTuples()) {
    if (qs->callback) qs->callback(t);
    qs->results.push_back(std::move(t));
  }
  return Status::OK();
}

Status SpStreamEngine::SubscribeResults(
    QueryId id, std::function<void(const Tuple&)> cb) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  qs->callback = std::move(cb);
  return Status::OK();
}

Status SpStreamEngine::RunSharedGroup(
    ExecContext* ctx, const std::vector<size_t>& query_indexes) {
  std::vector<RoleSet> group_roles;
  group_roles.reserve(query_indexes.size());
  for (size_t i : query_indexes) {
    group_roles.push_back(queries_[i].roles);
  }
  QueryState& first = queries_[query_indexes[0]];
  SharedPlan shared = BuildSharedPlan(first.bare_plan, group_roles);

  std::unordered_map<std::string, std::vector<StreamElement>> inputs;
  for (const std::string& s : first.source_streams) {
    inputs[s] = stream_states_.at(s).pending;
  }

  // One execution of the merged-SS trunk...
  Pipeline trunk_pipeline(ctx);
  SP_ASSIGN_OR_RETURN(PhysicalPlan trunk,
                      BuildPhysicalPlan(&trunk_pipeline, shared.trunk,
                                        inputs, options_.physical));
  trunk_pipeline.Run(/*batch_per_poll=*/64);
  const std::vector<StreamElement>& trunk_out = trunk.sink->elements();

  // ...then one cheap split shield per query over the (small) shared
  // output.
  for (size_t i : query_indexes) {
    QueryState& qs = queries_[i];
    Pipeline split(ctx);
    auto* src = split.Add<SourceOperator>("trunk", trunk_out);
    SsOptions o;
    o.predicates = {qs.roles};
    o.stream_name = trunk.output_stream_name;
    o.schema = trunk.output_schema;
    auto* ss = split.Add<SsOperator>(std::move(o), "split_ss");
    auto* sink = split.Add<CollectorSink>();
    src->AddOutput(ss);
    ss->AddOutput(sink);
    split.Run(/*batch_per_poll=*/64);
    for (Tuple& t : sink->Tuples()) {
      if (qs.callback) qs.callback(t);
      qs.results.push_back(std::move(t));
    }
  }
  return Status::OK();
}

Result<std::vector<Tuple>> SpStreamEngine::Results(QueryId id) const {
  SP_ASSIGN_OR_RETURN(const QueryState* qs, FindQuery(id));
  return qs->results;
}

Result<std::vector<Tuple>> SpStreamEngine::TakeResults(QueryId id) {
  SP_ASSIGN_OR_RETURN(QueryState * qs, FindQuery(id));
  std::vector<Tuple> out = std::move(qs->results);
  qs->results.clear();
  return out;
}

const SpAnalyzerStats* SpStreamEngine::analyzer_stats(
    const std::string& stream) const {
  auto it = stream_states_.find(stream);
  return it == stream_states_.end() ? nullptr
                                    : &it->second.analyzer->stats();
}

auto SpStreamEngine::FindQuery(QueryId id) -> Result<QueryState*> {
  if (id >= queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return &queries_[id];
}

auto SpStreamEngine::FindQuery(QueryId id) const
    -> Result<const QueryState*> {
  if (id >= queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return &queries_[id];
}

}  // namespace spstream
