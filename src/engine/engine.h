// SpStreamEngine — the integrated DSMS facade (the "server" of Figure 1).
//
// Ties the whole system together behind one API: role/subject management,
// stream registration, server-side policies, the per-stream SP Analyzer
// admission path, continuous-query registration (CQL text in, subject roles
// inherited, plan optimized), and pipelined execution with per-query result
// sinks. This is the entry point a downstream application would embed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyzer/sp_analyzer.h"
#include "common/audit_log.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "engine/overload.h"
#include "engine/shard_manager.h"
#include "exec/exec_context.h"
#include "exec/plan_builder.h"
#include "exec/shard_router.h"
#include "optimizer/optimizer.h"
#include "optimizer/statistics.h"
#include "query/parser.h"
#include "query/planner.h"
#include "storage/durability.h"

namespace spstream {

/// \brief Identifier of a registered continuous query.
using QueryId = uint32_t;

/// \brief Engine-wide configuration.
struct EngineOptions {
  /// Optimize registered query plans with the Table II rules + §VI.A costs.
  bool optimize_plans = true;
  /// Where the query's Security Shield is initially placed (§IV.A) before
  /// any optimization: at the sources (intermediate, the default), at the
  /// plan root (post-filter), or pre-filtering with sp stripping.
  SsPlacement initial_placement = SsPlacement::kIntermediate;
  /// Multi-query sharing (§VI.C): queries whose shield-free plans are
  /// identical execute one shared trunk behind a merged SS, then per-query
  /// split shields — instead of one full pipeline each. Note: shared
  /// trunks are rebuilt per Run() epoch, so policies do NOT persist across
  /// epochs in this mode (solo pipelines are long-lived and persist).
  bool share_plans = false;
  /// Physical compilation knobs (join implementation, skipping rule, ...).
  PhysicalPlanOptions physical;
  /// Cost-model configuration used when optimize_plans is set.
  CostModelOptions cost_options;
  /// Default per-source statistics assumed for cost estimation.
  SourceStats default_source_stats;
  /// CAPE-style runtime adaptivity: measure each epoch's streams
  /// (rates, roles-per-sp, per-role match fractions) and re-optimize
  /// registered plans against the measured numbers. A query whose optimal
  /// shape changes gets a rebuilt pipeline (continuous state resets —
  /// windows refill, the next sps re-install policies).
  bool adaptive = false;
  /// Security audit log (policy installs/expirations, denials, plan swaps).
  /// Disabling skips all audit-event rendering on the hot path.
  bool enable_audit = true;
  /// Ring-buffer capacity of the audit log (all-time per-kind counters
  /// survive eviction).
  size_t audit_log_capacity = 1024;
  /// Intra-query parallelism: > 1 hash-partitions each query's tuples by a
  /// plan-derived shard key across this many worker shards, each running
  /// its own clone of the physical pipeline on its own thread. Security
  /// punctuations are broadcast to every shard, so each clone's policy
  /// state converges to the single-threaded engine's; the merge sink
  /// collects per-shard outputs in (shard id, arrival order) — the result
  /// multiset is identical to a 1-shard run (tests/shard_equivalence_test).
  /// Plans with no safe hash partition (e.g. conflicting key requirements)
  /// fall back to the single-threaded path per query. 1 = today's fully
  /// single-threaded behavior.
  size_t num_shards = 1;
  /// Per-shard hand-off queue capacity (elements). Routing blocks when a
  /// shard's queue is full, backpressuring the epoch to the slowest shard.
  size_t shard_queue_capacity = 4096;
  /// Micro-batch size for pushing elements through the operator DAG. Sources
  /// and the shard hand-off accumulate up to this many elements (tuples and
  /// sps interleaved in arrival order) per PushBatch call, amortizing
  /// virtual-dispatch and timer overhead. Output is byte-identical in
  /// sequence to per-element execution at any size
  /// (tests/batch_equivalence_test). 1 == legacy per-element behavior.
  size_t batch_size = 64;
  /// End-to-end tracing (docs/OBSERVABILITY.md): 0 = off (the default; no
  /// span ring is ever allocated), N = switch the process-wide Tracer on and
  /// trace every sp-batch whose timestamp is divisible by N (1 = all).
  /// Tracing is process-global and sticky — constructing an engine with 0
  /// leaves a previously-enabled tracer running (the CLI's \trace owns it).
  size_t trace_sample_n = 0;
  /// Durable state (docs/DURABILITY.md): non-empty names the data directory
  /// for the write-ahead policy log + incremental window checkpoints. The
  /// constructor replays whatever the directory holds (catalog, sessions,
  /// operator state) and Run() group-commits one checkpoint per epoch;
  /// results are released only after the commit (delivered ≡ durable, so
  /// delivery is at-most-once across a crash). Empty = no persistence.
  std::string data_dir;
  /// Durable commits between WAL compactions (full-snapshot rebases).
  size_t checkpoint_rebase_every = 16;
  /// Soft wall-clock budget for one Run() epoch, in milliseconds. A
  /// finished epoch that exceeded it saturates the overload controller's
  /// deadline signal (state escalates to kShed), so the next epoch admits
  /// less. 0 = no deadline.
  int64_t epoch_deadline_ms = 0;
  /// Overload resilience: admission-shedding watermarks and policy, the
  /// shard watchdog, and quarantine self-healing (docs/ROBUSTNESS.md,
  /// "Overload and self-healing"). The invariant is *shed data, never shed
  /// security*: sps/controls are always admitted losslessly.
  OverloadOptions overload;
};

/// \brief The integrated stream engine.
class SpStreamEngine {
 public:
  explicit SpStreamEngine(EngineOptions options = {});
  ~SpStreamEngine();

  // ---- catalog management -----------------------------------------------
  /// \brief Register (or look up) a role. With durability on, the
  /// registration is write-ahead logged so recovery reproduces the same
  /// dense role ids.
  RoleId RegisterRole(const std::string& name);

  /// \brief Register a stream; creates its SP Analyzer admission path.
  Result<StreamId> RegisterStream(SchemaPtr schema);

  /// \brief Register a query specifier with its activated roles (§II.A).
  Status RegisterSubject(const std::string& name,
                         const std::vector<std::string>& role_names);

  /// \brief Runtime role-assignment change (the paper's §IX future-work
  /// extension). The base model freezes a subject's roles while it has
  /// registered queries; this override replaces the role set and re-plans
  /// every active query of the subject so their Security Shields enforce
  /// the new predicate from the next Run() on. Accumulated results are
  /// kept (they were authorized under the old assignment).
  Status UpdateSubjectRoles(const std::string& name,
                            const std::vector<std::string>& role_names);

  // ---- policies -----------------------------------------------------------
  /// \brief Execute an INSERT SP statement: the punctuation is admitted
  /// into the named stream's pending input (data-provider policy).
  Status ExecuteInsertSp(const std::string& sql);

  /// \brief Add a server-side policy for a stream; arriving mutable sps are
  /// refined by intersection (§II.B).
  Status AddServerPolicy(const std::string& stream_name,
                         SecurityPunctuation sp);

  // ---- queries -------------------------------------------------------------
  /// \brief Register a continuous SELECT for `subject`. The query inherits
  /// the subject's roles; the subject's role set freezes while registered.
  Result<QueryId> RegisterQuery(const std::string& subject,
                                const std::string& sql);

  /// \brief Deregister a query (unfreezes the subject when it was the
  /// subject's last query).
  Status DeregisterQuery(QueryId id);

  /// \brief The optimized logical plan of a registered query (debugging).
  /// With `analyze` set (EXPLAIN ANALYZE), each plan node is annotated with
  /// the live counters and timings of the physical operator executing it —
  /// tuples/sps in/out, security drops, total/join/sp-maintenance time and
  /// state footprint accumulated so far by the continuous pipeline.
  Result<std::string> ExplainQuery(QueryId id, bool analyze = false) const;

  // ---- data ------------------------------------------------------------
  /// \brief Append raw elements (tuples/sps) to a stream's pending input.
  /// Elements pass through the stream's SP Analyzer on admission.
  Status Push(const std::string& stream_name,
              std::vector<StreamElement> elements);

  /// \brief Run all registered queries over everything pushed so far, then
  /// clear the pending inputs. Results accumulate per query.
  Status Run();

  /// \brief Results of a query accumulated by Run() calls.
  Result<std::vector<Tuple>> Results(QueryId id) const;
  /// \brief Drain (return and clear) a query's accumulated results.
  Result<std::vector<Tuple>> TakeResults(QueryId id);

  /// \brief Push-style delivery: `callback` fires for every result tuple
  /// produced by subsequent Run() calls (in addition to accumulation —
  /// use TakeResults to keep memory bounded, or rely on the callback only
  /// and Drain).
  Status SubscribeResults(QueryId id, std::function<void(const Tuple&)> cb);

  // ---- overload / self-healing (docs/ROBUSTNESS.md) ---------------------
  /// \brief Current degradation tier. Safe to read from other threads (the
  /// net serve loop caches it for shed-before-decode).
  OverloadState overload_state() const { return overload_.state(); }
  /// \brief The controller (watermarks, shed counters) for introspection.
  const OverloadController& overload() const { return overload_; }

  /// \brief Shed priority of a query (ShedPolicy::kPriority protects the
  /// streams feeding the highest-priority queries; default 0). Streams
  /// consumed by a top-priority query are never shed under that policy.
  Status SetQueryPriority(QueryId id, int priority);

  /// \brief Retry a quarantined query NOW (the CLI's `\recover`): rebuild
  /// its pipelines, restore operator state from the last durable checkpoint
  /// when durability is on, and re-arm its policy trackers fail-closed so
  /// nothing delivers until a fresh sp-batch authorizes it. A manual call
  /// is always allowed — including on a permanently-quarantined query
  /// (operator override) — and does not count against
  /// OverloadOptions::max_recovery_attempts.
  Status RecoverQuery(QueryId id);

  // ---- observability ----------------------------------------------------
  /// \brief Engine-wide metrics: per-query/per-operator counters and
  /// latency histograms, refreshed with the SP Analyzer admission stats.
  /// Keys are "q<id>"; see docs/OBSERVABILITY.md for the taxonomy.
  spstream::MetricsSnapshot SnapshotMetrics();

  /// \brief SnapshotMetrics() rendered as text / JSON / Prometheus.
  std::string DumpMetrics(MetricsFormat format = MetricsFormat::kText);

  /// \brief The live metrics registry (counters update as queries run).
  MetricsRegistry* metrics() { return &metrics_; }

  /// \brief The security audit log (nullptr-safe: always present; empty
  /// when EngineOptions::enable_audit is false).
  AuditLog* audit() { return &audit_; }
  const AuditLog* audit() const { return &audit_; }

  // ---- introspection ----------------------------------------------------
  RoleCatalog* roles() { return &roles_; }
  StreamCatalog* streams() { return &streams_; }
  const SpAnalyzerStats* analyzer_stats(const std::string& stream) const;
  size_t query_count() const { return queries_.size(); }
  /// \brief Whether a query was quarantined by the fault supervisor.
  Result<bool> IsQuarantined(QueryId id) const;
  /// \brief Queries quarantined so far (gauge engine.queries_quarantined).
  int64_t quarantined_count() const { return quarantined_count_; }
  /// \brief Number of plan swaps the adaptive mode has performed.
  int64_t adaptations() const { return adaptations_; }
  /// \brief Latest measured statistics of a stream (adaptive mode), or
  /// nullptr before its first epoch.
  const StreamStatistics* measured_stats(const std::string& stream) const;

  // ---- durability (docs/DURABILITY.md) ----------------------------------
  /// \brief Epochs committed durably (recovered + this process). 0 when
  /// durability is off.
  int64_t durable_epochs() const { return committed_epochs_; }
  /// \brief Non-OK when crash recovery failed: the engine started EMPTY
  /// with durability DISABLED so it can never overwrite state it could not
  /// read. OK otherwise (including when durability is off).
  const Status& recovery_error() const { return recovery_error_; }
  /// \brief The durability manager, or nullptr. The net server logs session
  /// updates through this directly (leaf mutex — safe off-engine-lock).
  storage::DurabilityManager* durability() { return durability_.get(); }
  /// \brief Net sessions recovered from the WAL (consumed by the server).
  const std::vector<storage::DurableSession>& recovered_sessions() const {
    return recovered_sessions_;
  }
  uint64_t recovered_next_session_id() const {
    return recovered_next_session_id_;
  }
  /// \brief Clean shutdown: flush the audit-log tail into the WAL. Also
  /// runs from the destructor; idempotent.
  void Shutdown();

 private:
  struct StreamState {
    std::unique_ptr<SpAnalyzer> analyzer;
    std::vector<StreamElement> pending;  // admitted, not yet executed
  };
  struct QueryState {
    std::string subject;
    std::string sql;
    LogicalNodePtr plan;       // optimized, shield included
    LogicalNodePtr bare_plan;  // shield-free (sharing key, §VI.C)
    RoleSet roles;             // the query's security predicate
    std::vector<std::string> source_streams;
    std::vector<Tuple> results;
    // With durability on, an epoch's output stages here and is released
    // into `results` (and the callback) only after the epoch's durable
    // commit — a failed commit discards it (at-most-once delivery).
    std::vector<Tuple> staged;
    std::function<void(const Tuple&)> callback;  // optional push delivery
    bool active = true;
    // Long-lived continuous pipeline (solo mode): operator state — the
    // policies in force, windows, aggregates — persists across Run()
    // epochs, like a genuinely continuous query. Rebuilt (state reset)
    // after a re-plan.
    std::unique_ptr<Pipeline> pipeline;
    StreamingPhysicalPlan physical;
    // Sharded solo mode (num_shards > 1): N long-lived pipeline clones,
    // one per worker shard, plus the plan-derived per-leaf routing keys.
    // Like `pipeline`, clones persist across epochs and are torn down on
    // re-plan. Null until the first Run(), or when the plan proved
    // unshardable (shard_fallback records why).
    struct ShardSet {
      ShardRouting routing;
      std::vector<std::unique_ptr<Pipeline>> pipelines;
      std::vector<StreamingPhysicalPlan> physicals;
    };
    std::unique_ptr<ShardSet> shards;
    // Set once sharding was considered for the current plan; with an empty
    // `shards` it means fallback to the single-threaded path.
    bool shard_decision_made = false;
    std::string shard_fallback;  // reason when the plan is unshardable
    // Supervision: a faulted shard or operator fails the *query*, not the
    // engine. A quarantined query stops executing (Run skips it), its
    // faulted epoch's partial output is discarded (fail closed — a clone
    // with diverged policy state must not deliver), and its pipelines are
    // torn down. Already-delivered results from earlier epochs stand: they
    // were produced under fully-applied policies. Results already
    // accumulated stay readable.
    bool quarantined = false;
    std::string quarantine_reason;
    // Self-healing (docs/ROBUSTNESS.md): with max_recovery_attempts > 0 the
    // engine retries a quarantined query at the top of Run() once its
    // capped-exponential backoff elapses, restoring operator state from the
    // last durable checkpoint and re-arming policy trackers fail-closed.
    // After max_recovery_attempts re-quarantines it goes dark permanently
    // (only a manual RecoverQuery can resurrect it).
    int recovery_attempts = 0;
    int64_t next_recovery_nanos = 0;  // backoff gate; 0 = no retry scheduled
    bool permanently_quarantined = false;
    // ShedPolicy::kPriority protection rank (SetQueryPriority).
    int priority = 0;
  };

  /// Execute one group of share-compatible queries through a shared trunk.
  Status RunSharedGroup(ExecContext* ctx,
                        const std::vector<size_t>& query_indexes);
  /// Execute one query through its own full pipeline.
  Status RunSolo(ExecContext* ctx, QueryState* qs);
  /// Execute one query across the worker shards: route this epoch's
  /// admitted tuples by shard key, broadcast sps, barrier, merge sinks.
  Status RunSharded(QueryState* qs);
  /// Decide (once per plan) whether `qs` runs sharded; builds the pipeline
  /// clones when it does.
  Status EnsureShardDecision(ExecContext* ctx, QueryState* qs);
  /// Build the query's long-lived solo pipeline if absent.
  Status EnsurePipeline(ExecContext* ctx, QueryState* qs);
  /// Deliver one result tuple: straight to results/callback, or staged
  /// until the epoch's durable commit when durability is on.
  void DeliverResult(QueryState* qs, Tuple t);
  /// Collect this epoch's operator-state deltas and run the commit
  /// protocol; advances checkpoint cursors only on success.
  Status CommitEpochDurable();
  /// Replay the recovered catalog, rebuild pipelines, apply the delta
  /// chain, and re-arm policy trackers fail-closed.
  Status ApplyRecoveredState();
  Status ReplayCatalog(const std::vector<storage::WalRecord>& records);
  /// Fail the query closed after a fault: discard this epoch's partial
  /// sink output, tear down its pipelines (epoch-consistent: callers
  /// already drained the shard barrier), audit + count it, and stop
  /// executing it. The engine itself keeps running.
  void QuarantineQuery(QueryState* qs, const std::string& reason);
  /// Self-healing pass at the top of Run(): retry quarantined queries whose
  /// backoff elapsed; mark the attempts-exhausted ones permanent.
  void MaybeRecoverQuarantined();
  /// One recovery attempt for `qs` (shared by the backoff loop and the
  /// manual RecoverQuery). Rebuilds pipelines, restores the last durable
  /// checkpoint, re-arms fail-closed, audits the outcome.
  Status RecoverQueryState(QueryState* qs, bool manual);
  /// Admission-time load shedding: returns the number of data tuples
  /// dropped from `elements` (sps/controls are never touched). Audits and
  /// meters the shed when non-zero.
  size_t ShedAtAdmission(const std::string& stream_name,
                         std::vector<StreamElement>* elements);
  /// Feed the overload controller one pressure sample and publish the
  /// state gauge.
  void ObservePressure(size_t pending_backlog);
  /// Highest shed priority among active queries consuming `stream` (and
  /// the highest across all active queries, for the priority shed policy).
  int StreamPriority(const std::string& stream_name) const;
  int TopPriority() const;
  /// Registry key of one shard's pipeline clone ("q0.shard1").
  static std::string ShardTag(const std::string& query_tag, size_t shard);
  /// Adaptive mode: re-optimize plans against measured statistics.
  Status AdaptPlans();

  /// Registry key of a query ("q<id>").
  std::string QueryTag(const QueryState* qs) const;
  /// Fold a query's live pipeline metrics into the registry's retired
  /// accumulator (called right before a pipeline is rebuilt or torn down).
  void RetirePipelineMetrics(QueryState* qs);
  /// Retire metrics and tear down the query's pipeline(s) — solo and
  /// sharded — so the next Run() rebuilds them against the current plan.
  void ResetPipelines(QueryState* qs);
  /// Publish per-stream SP Analyzer admission stats as registry gauges.
  void SyncAnalyzerStats();

  Result<QueryState*> FindQuery(QueryId id);
  Result<const QueryState*> FindQuery(QueryId id) const;

  EngineOptions options_;
  RoleCatalog roles_;
  StreamCatalog streams_;
  MetricsRegistry metrics_;
  AuditLog audit_;
  /// Long-lived context handed to every pipeline; pipelines persist across
  /// Run() epochs, so the context they point at must outlive them.
  ExecContext exec_ctx_;
  std::unordered_map<std::string, StreamState> stream_states_;
  std::unordered_map<std::string, Subject> subjects_;
  std::vector<QueryState> queries_;
  std::unordered_map<std::string, StreamStatistics> measured_stats_;
  int64_t adaptations_ = 0;
  int64_t quarantined_count_ = 0;
  /// Run() epochs completed — seeds the per-epoch trace id (EpochTraceId).
  int64_t run_epoch_seq_ = 0;
  Timestamp next_default_ts_ = 1;
  /// Durable state subsystem (null when EngineOptions::data_dir is empty or
  /// recovery failed — see recovery_error()).
  std::unique_ptr<storage::DurabilityManager> durability_;
  int64_t committed_epochs_ = 0;
  Status recovery_error_ = Status::OK();
  /// True while the constructor replays WAL catalog records — suppresses
  /// re-logging the mutations being replayed.
  bool replaying_ = false;
  /// A quarantine poisoned the current Run() epoch's durable commit. With
  /// share_plans OFF this stays false on a quarantine: solo pipelines hold
  /// no cross-query state, the quarantined query's staged output is
  /// discarded by QuarantineQuery itself and its deltas are skipped by
  /// CommitEpochDurable, so every other query's epoch commits normally.
  /// With share_plans ON a quarantine still aborts the engine-wide commit —
  /// shared-trunk output staged for sibling queries may depend on the
  /// faulted query's group.
  bool epoch_had_quarantine_ = false;
  std::vector<storage::DurableSession> recovered_sessions_;
  uint64_t recovered_next_session_id_ = 1;
  /// Worker-shard pool (null when num_shards <= 1). Declared after
  /// queries_ so destruction joins the workers BEFORE the pipelines they
  /// feed are torn down.
  std::unique_ptr<ShardManager> shard_manager_;
  /// Overload resilience (docs/ROBUSTNESS.md): pressure state machine fed
  /// by Push/Run, and the optional shard-liveness observer thread. The
  /// watchdog probes shard_manager_, so it is declared after it (destroyed
  /// first) and additionally stopped in Shutdown().
  OverloadController overload_;
  std::unique_ptr<Watchdog> watchdog_;
  /// Wall-clock of the last completed Run() epoch (the deadline signal).
  int64_t last_epoch_nanos_ = 0;
};

}  // namespace spstream
