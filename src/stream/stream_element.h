// A stream is a sequence of elements: data tuples interleaved with security
// punctuations (Figure 1), plus engine-internal control marks.
#pragma once

#include <cassert>
#include <string>
#include <variant>

#include "security/security_punctuation.h"
#include "stream/tuple.h"

namespace spstream {

/// \brief Engine-internal control marks (not part of the paper's model):
/// kFlush asks stateful operators to emit pending results; kEndOfStream
/// terminates a source.
enum class ControlKind : uint8_t { kFlush = 0, kEndOfStream };

struct Control {
  ControlKind kind = ControlKind::kFlush;
  Timestamp ts = 0;
};

/// \brief One element of a punctuated stream.
class StreamElement {
 public:
  /*implicit*/ StreamElement(Tuple t) : var_(std::move(t)) {}
  /*implicit*/ StreamElement(SecurityPunctuation sp) : var_(std::move(sp)) {}
  /*implicit*/ StreamElement(Control c) : var_(c) {}

  static StreamElement EndOfStream(Timestamp ts) {
    return StreamElement(Control{ControlKind::kEndOfStream, ts});
  }
  static StreamElement Flush(Timestamp ts) {
    return StreamElement(Control{ControlKind::kFlush, ts});
  }

  bool is_tuple() const { return std::holds_alternative<Tuple>(var_); }
  bool is_sp() const {
    return std::holds_alternative<SecurityPunctuation>(var_);
  }
  bool is_control() const { return std::holds_alternative<Control>(var_); }
  bool is_end_of_stream() const {
    return is_control() && control().kind == ControlKind::kEndOfStream;
  }

  const Tuple& tuple() const { return std::get<Tuple>(var_); }
  Tuple& tuple() { return std::get<Tuple>(var_); }
  const SecurityPunctuation& sp() const {
    return std::get<SecurityPunctuation>(var_);
  }
  SecurityPunctuation& sp() { return std::get<SecurityPunctuation>(var_); }
  const Control& control() const { return std::get<Control>(var_); }

  Timestamp ts() const {
    if (is_tuple()) return tuple().ts;
    if (is_sp()) return sp().ts();
    return control().ts;
  }

  std::string ToString() const;

  size_t MemoryBytes() const {
    if (is_tuple()) return tuple().MemoryBytes();
    if (is_sp()) return sp().MemoryBytes();
    return sizeof(Control);
  }

 private:
  std::variant<Tuple, SecurityPunctuation, Control> var_;
};

}  // namespace spstream
