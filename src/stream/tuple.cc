#include "stream/tuple.h"

namespace spstream {

std::string Tuple::ToString() const {
  std::string out = "[sid=" + std::to_string(sid) +
                    " tid=" + std::to_string(tid) +
                    " ts=" + std::to_string(ts) + " |";
  for (size_t i = 0; i < values.size(); ++i) {
    out += i ? ", " : " ";
    out += values[i].ToString();
  }
  out += "]";
  return out;
}

std::string Tuple::ToString(const Schema& schema) const {
  std::string out = schema.stream_name() + "[tid=" + std::to_string(tid) +
                    " ts=" + std::to_string(ts) + " |";
  for (size_t i = 0; i < values.size(); ++i) {
    out += i ? ", " : " ";
    if (i < schema.num_fields()) {
      out += schema.field(i).name;
      out += "=";
    }
    out += values[i].ToString();
  }
  out += "]";
  return out;
}

size_t Tuple::MemoryBytes() const {
  // Fast path: the inline part is capacity * sizeof(Value) in one multiply;
  // the walk only collects heap spill (out-of-SSO strings), instead of the
  // old add-MemoryBytes-then-subtract-sizeof pass over every value. This
  // runs once per window insert/expiry, so it is join-hot.
  size_t bytes = sizeof(Tuple) + values.capacity() * sizeof(Value);
  for (const Value& v : values) {
    bytes += v.HeapBytes();
  }
  return bytes;
}

}  // namespace spstream
