// Stream schemas: field names/types plus the stream's registered name.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace spstream {

/// \brief One attribute of a stream schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Immutable description of a stream's tuples.
class Schema {
 public:
  Schema(std::string stream_name, std::vector<Field> fields)
      : stream_name_(std::move(stream_name)), fields_(std::move(fields)) {}

  const std::string& stream_name() const { return stream_name_; }
  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// \brief Index of the named field, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;

  /// \brief "name(f1:T1, f2:T2, ...)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return stream_name_ == other.stream_name_ && fields_ == other.fields_;
  }

 private:
  std::string stream_name_;
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

inline SchemaPtr MakeSchema(std::string stream_name,
                            std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(stream_name),
                                        std::move(fields));
}

/// \brief Registry of streams known to the DSMS: name <-> id <-> schema.
class StreamCatalog {
 public:
  /// \brief Register a stream; AlreadyExists if the name is taken.
  Result<StreamId> RegisterStream(SchemaPtr schema);

  Result<StreamId> LookupId(const std::string& name) const;
  Result<SchemaPtr> LookupSchema(const std::string& name) const;
  SchemaPtr schema(StreamId id) const { return schemas_.at(id); }
  size_t size() const { return schemas_.size(); }

 private:
  std::vector<SchemaPtr> schemas_;
  std::unordered_map<std::string, StreamId> by_name_;
};

}  // namespace spstream
