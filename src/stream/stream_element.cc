#include "stream/stream_element.h"

namespace spstream {

std::string StreamElement::ToString() const {
  if (is_tuple()) return tuple().ToString();
  if (is_sp()) return sp().ToString();
  const Control& c = control();
  return std::string(c.kind == ControlKind::kEndOfStream ? "EOS" : "FLUSH") +
         "[ts=" + std::to_string(c.ts) + "]";
}

}  // namespace spstream
