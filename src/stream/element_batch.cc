#include "stream/element_batch.h"

namespace spstream {

void ElementBatch::LatchColumns(size_t ncols) {
  cols_.resize(ncols);
  if (reserve_hint_ > 0) {
    for (ColumnVector& c : cols_) c.reserve(reserve_hint_);
  }
  ncols_set_ = true;
}

bool ElementBatch::TryAppendTuple(const Tuple& t) {
  if (!ncols_set_) LatchColumns(t.values.size());
  if (t.values.size() != cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (!cols_[i].Accepts(t.values[i])) return false;
  }
  for (size_t i = 0; i < cols_.size(); ++i) {
    cols_[i].TryAppend(t.values[i]);
  }
  sids_.push_back(t.sid);
  tids_.push_back(t.tid);
  tss_.push_back(t.ts);
  if (has_sel_) sel_.push_back(static_cast<uint32_t>(num_rows() - 1));
  return true;
}

void ElementBatch::push_back(StreamElement e) {
  if (e.is_end_of_stream()) has_eos_ = true;
  if (columnar_) {
    if (e.is_tuple()) {
      if (TryAppendTuple(e.tuple())) return;
      DecayToRows();  // mismatch: fall through to the row append
    } else {
      specials_.push_back(
          Special{static_cast<uint32_t>(num_rows()), std::move(e)});
      return;
    }
  }
  elems_.push_back(std::move(e));
}

void ElementBatch::Append(const StreamElement& e) {
  if (columnar_) {
    if (e.is_tuple()) {
      if (TryAppendTuple(e.tuple())) return;
      DecayToRows();
    } else {
      if (e.is_end_of_stream()) has_eos_ = true;
      specials_.push_back(Special{static_cast<uint32_t>(num_rows()), e});
      return;
    }
  }
  if (e.is_end_of_stream()) has_eos_ = true;
  elems_.push_back(e);
}

Tuple ElementBatch::MaterializeTuple(size_t row) const {
  std::vector<Value> values;
  values.reserve(cols_.size());
  for (const ColumnVector& c : cols_) {
    values.push_back(c.ValueAt(row));
  }
  return Tuple(sids_[row], tids_[row], std::move(values), tss_[row]);
}

void ElementBatch::AppendSpecial(StreamElement e) {
  if (!columnar_) {
    if (elems_.empty()) {
      BeginColumnar();
    } else {
      if (e.is_end_of_stream()) has_eos_ = true;
      elems_.push_back(std::move(e));
      return;
    }
  }
  if (e.is_end_of_stream()) has_eos_ = true;
  specials_.push_back(
      Special{static_cast<uint32_t>(num_rows()), std::move(e)});
}

void ElementBatch::AppendComposedTuple(StreamId sid, TupleId tid,
                                       Timestamp ts,
                                       const std::vector<Value>& a,
                                       const std::vector<Value>& b) {
  const size_t arity = a.size() + b.size();
  if (!columnar_ && elems_.empty()) BeginColumnar();
  if (columnar_) {
    if (!ncols_set_) LatchColumns(arity);
    if (arity == cols_.size()) {
      bool ok = true;
      for (size_t i = 0; ok && i < a.size(); ++i) ok = cols_[i].Accepts(a[i]);
      for (size_t i = 0; ok && i < b.size(); ++i) {
        ok = cols_[a.size() + i].Accepts(b[i]);
      }
      if (ok) {
        for (size_t i = 0; i < a.size(); ++i) cols_[i].TryAppend(a[i]);
        for (size_t i = 0; i < b.size(); ++i) {
          cols_[a.size() + i].TryAppend(b[i]);
        }
        sids_.push_back(sid);
        tids_.push_back(tid);
        tss_.push_back(ts);
        if (has_sel_) sel_.push_back(static_cast<uint32_t>(num_rows() - 1));
        return;
      }
    }
    DecayToRows();
  }
  Tuple t;
  t.sid = sid;
  t.tid = tid;
  t.ts = ts;
  t.values.reserve(arity);
  t.values.insert(t.values.end(), a.begin(), a.end());
  t.values.insert(t.values.end(), b.begin(), b.end());
  elems_.push_back(StreamElement(std::move(t)));
}

void ElementBatch::DecayToRows() const {
  if (!columnar_) return;
  std::vector<StreamElement> out;
  out.reserve(num_live_rows() + specials_.size() + elems_.size());
  const size_t live = num_live_rows();
  size_t si = 0;
  for (size_t k = 0; k < live; ++k) {
    const uint32_t r = has_sel_ ? sel_[k] : static_cast<uint32_t>(k);
    while (si < specials_.size() && specials_[si].before_row <= r) {
      out.push_back(std::move(specials_[si].elem));
      ++si;
    }
    out.push_back(StreamElement(MaterializeTuple(r)));
  }
  for (; si < specials_.size(); ++si) {
    out.push_back(std::move(specials_[si].elem));
  }
  elems_ = std::move(out);
  columnar_ = false;
  ncols_set_ = false;
  has_sel_ = false;
  sids_.clear();
  tids_.clear();
  tss_.clear();
  cols_.clear();
  specials_.clear();
  sel_.clear();
}

void ElementBatch::CountLive(int64_t* tuples, int64_t* sps) const {
  if (columnar_) {
    *tuples += static_cast<int64_t>(num_live_rows());
    for (const Special& s : specials_) {
      if (s.elem.is_sp()) ++*sps;
    }
    return;
  }
  for (const StreamElement& e : elems_) {
    if (e.is_tuple()) {
      ++*tuples;
    } else if (e.is_sp()) {
      ++*sps;
    }
  }
}

size_t ElementBatch::MemoryBytes() const {
  size_t bytes = sizeof(ElementBatch);
  bytes += elems_.capacity() * sizeof(StreamElement);
  for (const StreamElement& e : elems_) bytes += e.MemoryBytes();
  bytes += sids_.capacity() * sizeof(StreamId) +
           tids_.capacity() * sizeof(TupleId) +
           tss_.capacity() * sizeof(Timestamp) +
           sel_.capacity() * sizeof(uint32_t) +
           specials_.capacity() * sizeof(Special);
  for (const ColumnVector& c : cols_) bytes += c.MemoryBytes();
  for (const Special& s : specials_) bytes += s.elem.MemoryBytes();
  return bytes;
}

void ElementBatch::clear() {
  elems_.clear();
  has_eos_ = false;
  columnar_ = false;
  ncols_set_ = false;
  has_sel_ = false;
  reserve_hint_ = 0;
  sids_.clear();
  tids_.clear();
  tss_.clear();
  cols_.clear();
  specials_.clear();
  sel_.clear();
}

}  // namespace spstream
