#include "stream/column_vector.h"

namespace spstream {

namespace {
size_t ValidityWords(size_t rows) { return (rows + 63) / 64; }
}  // namespace

bool ColumnVector::TryAppend(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return true;
  }
  if (type_ == ValueType::kNull) {
    // First non-null value latches the type; rows appended before it were
    // all null, so the payload array just needs placeholders for them.
    type_ = v.type();
    switch (type_) {
      case ValueType::kInt64:
      case ValueType::kBool:
        ints_.assign(size_, 0);
        break;
      case ValueType::kDouble:
        doubles_.assign(size_, 0.0);
        break;
      case ValueType::kString:
        offsets_.assign(size_ + 1, 0);
        break;
      case ValueType::kNull:
        break;
    }
  } else if (v.type() != type_) {
    return false;
  }
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(v.int64());
      break;
    case ValueType::kBool:
      ints_.push_back(v.boolean() ? 1 : 0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(v.dbl());
      break;
    case ValueType::kString:
      chars_.append(v.str());
      offsets_.push_back(static_cast<uint32_t>(chars_.size()));
      break;
    case ValueType::kNull:
      break;
  }
  validity_.resize(ValidityWords(size_ + 1), 0);
  validity_[size_ >> 6] |= uint64_t{1} << (size_ & 63);
  ++size_;
  return true;
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      if (offsets_.empty()) offsets_.push_back(0);
      offsets_.push_back(static_cast<uint32_t>(chars_.size()));
      break;
    case ValueType::kNull:
      break;
  }
  validity_.resize(ValidityWords(size_ + 1), 0);
  ++size_;
}

Value ColumnVector::ValueAt(size_t row) const {
  if (!IsValid(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[row]);
    case ValueType::kBool:
      return Value(ints_[row] != 0);
    case ValueType::kDouble:
      return Value(doubles_[row]);
    case ValueType::kString:
      return Value(std::string(StringAt(row)));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

void ColumnVector::reserve(size_t n) {
  validity_.reserve(ValidityWords(n));
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      offsets_.reserve(n + 1);
      break;
    case ValueType::kNull:
      // Type unknown yet: reserve the common int64 payload speculatively.
      ints_.reserve(n);
      break;
  }
}

size_t ColumnVector::MemoryBytes() const {
  return sizeof(ColumnVector) + ints_.capacity() * sizeof(int64_t) +
         doubles_.capacity() * sizeof(double) +
         offsets_.capacity() * sizeof(uint32_t) + chars_.capacity() +
         validity_.capacity() * sizeof(uint64_t);
}

void ColumnVector::clear() {
  type_ = ValueType::kNull;
  size_ = 0;
  ints_.clear();
  doubles_.clear();
  offsets_.clear();
  chars_.clear();
  validity_.clear();
}

}  // namespace spstream
