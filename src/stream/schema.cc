#include "stream/schema.h"

#include <unordered_map>

namespace spstream {

Result<int> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no field '" + name + "' in stream '" +
                          stream_name_ + "'");
}

std::string Schema::ToString() const {
  std::string out = stream_name_ + "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

Result<StreamId> StreamCatalog::RegisterStream(SchemaPtr schema) {
  if (by_name_.count(schema->stream_name())) {
    return Status::AlreadyExists("stream '" + schema->stream_name() +
                                 "' already registered");
  }
  StreamId id = static_cast<StreamId>(schemas_.size());
  by_name_.emplace(schema->stream_name(), id);
  schemas_.push_back(std::move(schema));
  return id;
}

Result<StreamId> StreamCatalog::LookupId(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown stream: " + name);
  }
  return it->second;
}

Result<SchemaPtr> StreamCatalog::LookupSchema(const std::string& name) const {
  SP_ASSIGN_OR_RETURN(StreamId id, LookupId(name));
  return schemas_[id];
}

}  // namespace spstream
