// The stream tuple of §II.B: t = [sid, tid, A, ts].
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "common/value.h"
#include "stream/schema.h"

namespace spstream {

/// \brief One data tuple. Attribute values are positional against the
/// stream's schema. Tuples are entirely unaware of the sps around them
/// (§III.A) — policies never live inside Tuple.
struct Tuple {
  StreamId sid = 0;
  TupleId tid = 0;
  std::vector<Value> values;
  Timestamp ts = 0;

  Tuple() = default;
  Tuple(StreamId sid_, TupleId tid_, std::vector<Value> values_,
        Timestamp ts_)
      : sid(sid_), tid(tid_), values(std::move(values_)), ts(ts_) {}

  const Value& value(size_t i) const { return values[i]; }

  /// \brief "[sid=0 tid=42 ts=100 | v1, v2, ...]".
  std::string ToString() const;
  /// \brief Rendered with field names from the schema.
  std::string ToString(const Schema& schema) const;

  bool operator==(const Tuple& other) const {
    return sid == other.sid && tid == other.tid && ts == other.ts &&
           values == other.values;
  }

  size_t MemoryBytes() const;
};

}  // namespace spstream
