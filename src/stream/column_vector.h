// One column of a columnar (SoA) ElementBatch: a typed array plus a
// validity bitmap. The type is latched by the first non-null append, so a
// column round-trips Values exactly (kind and nullness included) — the
// batch-equivalence contract compares result sequences byte for byte, so
// the columnar representation must never widen, narrow or otherwise
// re-type a value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace spstream {

/// \brief A typed value array with per-row validity. Bools share the int64
/// storage (0/1); strings live in one arena addressed by offsets.
class ColumnVector {
 public:
  ColumnVector() = default;

  size_t size() const { return size_; }

  /// \brief The latched value type; kNull until the first non-null append
  /// (an all-null column stays kNull and every row reads back as Null).
  ValueType type() const { return type_; }

  /// \brief Append `v`; false (and no state change) when `v` is non-null
  /// and its kind conflicts with the latched type — the caller then decays
  /// the whole batch to the row representation.
  bool TryAppend(const Value& v);

  void AppendNull();
  void AppendNulls(size_t n) {
    for (size_t i = 0; i < n; ++i) AppendNull();
  }

  /// \brief True when `v` could be appended without a type conflict.
  bool Accepts(const Value& v) const {
    return v.is_null() || type_ == ValueType::kNull || v.type() == type_;
  }

  /// \brief Mask row `row`: clears its validity bit so it reads back as
  /// Null. The stored payload is left in place (masking is how the SS
  /// enforces attribute-granularity policies on a shared batch).
  void SetNull(size_t row) {
    validity_[row >> 6] &= ~(uint64_t{1} << (row & 63));
  }

  bool IsValid(size_t row) const {
    return (validity_[row >> 6] >> (row & 63)) & 1;
  }

  // Typed accessors; only meaningful when IsValid(row) and type() matches.
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  bool BoolAt(size_t row) const { return ints_[row] != 0; }
  std::string_view StringAt(size_t row) const {
    return std::string_view(chars_).substr(offsets_[row],
                                           offsets_[row + 1] - offsets_[row]);
  }

  /// \brief Exact round-trip of the value appended at `row` (Null when the
  /// row is invalid — appended null or masked).
  Value ValueAt(size_t row) const;

  void reserve(size_t n);
  size_t MemoryBytes() const;
  void clear();

 private:
  ValueType type_ = ValueType::kNull;
  size_t size_ = 0;
  std::vector<int64_t> ints_;       // kInt64 and kBool payloads
  std::vector<double> doubles_;     // kDouble payloads
  std::vector<uint32_t> offsets_;   // kString: size_+1 arena offsets
  std::string chars_;               // kString arena
  std::vector<uint64_t> validity_;  // bit per row, 1 = value present
};

}  // namespace spstream
