// A micro-batch of stream elements: one run of tuples together with the
// sp/control boundaries that split it. Batching is an execution-layer
// transport only — element order inside a batch is exactly stream order, so
// an operator that processes a batch element-by-element is indistinguishable
// from one fed the elements individually (tests/batch_equivalence_test.cc
// holds the engine to that, byte-for-byte).
//
// The paper's observation that makes batch kernels worthwhile (§III.B): a
// stream's effective policy is constant *between* sp-batches, so every tuple
// of a run delimited by sps shares one access decision. Operators therefore
// never need batches pre-split at sp boundaries — they detect boundaries
// inline (an sp element invalidates whatever per-run state they memoized).
//
// Two representations share this class:
//
//  * rows — a std::vector<StreamElement>, the original AoS transport. Every
//    operator understands it.
//  * columnar (SoA) — per-attribute ColumnVectors plus parallel sid/tid/ts
//    arrays for the tuples, a specials list anchoring sps/controls between
//    rows, and an optional selection vector so filters narrow the batch
//    without materializing a copy.
//
// The columnar form is an optimization, never an obligation: elements()
// lazily decays the batch to rows (exact stream order, exact values), so an
// operator without a columnar kernel keeps working untouched. Anchors in
// the specials list and entries of the selection vector are ORIGINAL row
// indexes — rows are never compacted, so dropping a row from the selection
// invalidates nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "stream/column_vector.h"
#include "stream/stream_element.h"

namespace spstream {

/// \brief A run of stream elements handed through the DAG as one unit.
class ElementBatch {
 public:
  /// \brief An sp or control element anchored between columnar rows:
  /// materialization emits it before original row `before_row`
  /// (`before_row == num_rows()` means after every row). Entries are kept
  /// in non-decreasing anchor order; ties preserve insertion order.
  struct Special {
    uint32_t before_row;
    StreamElement elem;
  };

  ElementBatch() = default;
  explicit ElementBatch(std::vector<StreamElement> elems)
      : elems_(std::move(elems)) {
    for (const StreamElement& e : elems_) {
      if (e.is_end_of_stream()) has_eos_ = true;
    }
  }

  // ---- representation ------------------------------------------------

  bool is_columnar() const { return columnar_; }

  /// \brief Switch an EMPTY batch to the columnar representation. The
  /// column count latches from the first appended tuple; a later tuple
  /// with a different arity (or a type-conflicting value) decays the batch
  /// back to rows — appends never fail, they just stop being columnar.
  void BeginColumnar() {
    columnar_ = true;
    ncols_set_ = false;
  }

  /// \brief Materialize the columnar content into rows (exact stream
  /// order, exact values) and switch the representation. No-op on a row
  /// batch. Logically const: the element sequence is unchanged.
  void DecayToRows() const;

  // ---- row-transparent API (works for both representations) ----------

  void reserve(size_t n) {
    if (columnar_) {
      reserve_hint_ = n;
      sids_.reserve(n);
      tids_.reserve(n);
      tss_.reserve(n);
    } else {
      elems_.reserve(n);
    }
  }

  /// \brief Append by value (moves). On a columnar batch, tuples go to the
  /// columns and sps/controls to the specials list; a mismatched tuple
  /// decays the batch first.
  void push_back(StreamElement e);

  /// \brief Append a copy without constructing an intermediate
  /// StreamElement when columnar (the engine feed path shares one pending
  /// buffer across queries, so it must copy).
  void Append(const StreamElement& e);

  bool empty() const {
    return columnar_ ? num_live_rows() == 0 && specials_.empty()
                     : elems_.empty();
  }

  /// \brief Logical element count: live rows + specials when columnar.
  size_t size() const {
    return columnar_ ? num_live_rows() + specials_.size() : elems_.size();
  }

  /// \brief True when the batch carries an end-of-stream control anywhere.
  /// Operators fall back to the per-element path for such (rare, terminal)
  /// batches so the finished-port accounting stays in one place.
  bool has_eos() const { return has_eos_; }

  /// \brief Row view; decays a columnar batch first.
  std::vector<StreamElement>& elements() {
    DecayToRows();
    return elems_;
  }
  const std::vector<StreamElement>& elements() const {
    DecayToRows();
    return elems_;
  }

  void clear();

  /// \brief Retained bytes of the current representation (payload arrays,
  /// validity bitmaps, specials, row elements).
  size_t MemoryBytes() const;

  // ---- columnar access (valid only while is_columnar()) --------------

  /// \brief Original (pre-selection) row count.
  size_t num_rows() const { return tids_.size(); }
  size_t num_columns() const { return cols_.size(); }

  /// \brief Live rows after selection.
  size_t num_live_rows() const {
    return has_sel_ ? sel_.size() : num_rows();
  }
  /// \brief Original index of the k-th live row (ascending in k).
  uint32_t live_row(size_t k) const {
    return has_sel_ ? sel_[k] : static_cast<uint32_t>(k);
  }

  const ColumnVector& column(size_t i) const { return cols_[i]; }
  std::vector<ColumnVector>& mutable_columns() { return cols_; }

  StreamId sid_at(size_t row) const { return sids_[row]; }
  TupleId tid_at(size_t row) const { return tids_[row]; }
  Timestamp ts_at(size_t row) const { return tss_[row]; }

  std::vector<Special>& specials() { return specials_; }
  const std::vector<Special>& specials() const { return specials_; }

  /// \brief Install a narrowed selection: ascending original row indexes,
  /// a subset of the current live rows.
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }
  /// \brief Replace the specials list (anchors must stay non-decreasing).
  void ReplaceSpecials(std::vector<Special> specials) {
    specials_ = std::move(specials);
  }
  /// \brief Replace the column set (projection); row metadata and the
  /// selection are untouched.
  void ReplaceColumns(std::vector<ColumnVector> cols) {
    cols_ = std::move(cols);
  }

  /// \brief Rebuild the Tuple stored at original row `row`.
  Tuple MaterializeTuple(size_t row) const;

  /// \brief Append an sp/control anchored after every current row. The
  /// batch switches to columnar when still empty so sp-led output batches
  /// (the join synthesizes an sp before the first result) stay columnar.
  void AppendSpecial(StreamElement e);

  /// \brief Append a result tuple whose values are the concatenation of
  /// `a` and `b` (the join emission path) straight into the columns —
  /// no Tuple, no StreamElement. Decays and appends as a row on arity or
  /// type conflict; never fails.
  void AppendComposedTuple(StreamId sid, TupleId tid, Timestamp ts,
                           const std::vector<Value>& a,
                           const std::vector<Value>& b);

  /// \brief Count live tuples and sps (metrics) without materializing.
  void CountLive(int64_t* tuples, int64_t* sps) const;

 private:
  bool TryAppendTuple(const Tuple& t);
  void LatchColumns(size_t ncols);

  // Row representation. Mutable: DecayToRows is logically const (it
  // changes the representation, never the element sequence).
  mutable std::vector<StreamElement> elems_;
  bool has_eos_ = false;

  // Columnar representation.
  mutable bool columnar_ = false;
  mutable bool ncols_set_ = false;
  mutable bool has_sel_ = false;
  size_t reserve_hint_ = 0;
  mutable std::vector<StreamId> sids_;
  mutable std::vector<TupleId> tids_;
  mutable std::vector<Timestamp> tss_;
  mutable std::vector<ColumnVector> cols_;
  mutable std::vector<Special> specials_;
  mutable std::vector<uint32_t> sel_;
};

}  // namespace spstream
