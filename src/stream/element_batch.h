// A micro-batch of stream elements: one run of tuples together with the
// sp/control boundaries that split it. Batching is an execution-layer
// transport only — element order inside a batch is exactly stream order, so
// an operator that processes a batch element-by-element is indistinguishable
// from one fed the elements individually (tests/batch_equivalence_test.cc
// holds the engine to that, byte-for-byte).
//
// The paper's observation that makes batch kernels worthwhile (§III.B): a
// stream's effective policy is constant *between* sp-batches, so every tuple
// of a run delimited by sps shares one access decision. Operators therefore
// never need batches pre-split at sp boundaries — they detect boundaries
// inline (an sp element invalidates whatever per-run state they memoized).
#pragma once

#include <utility>
#include <vector>

#include "stream/stream_element.h"

namespace spstream {

/// \brief A run of stream elements handed through the DAG as one unit.
class ElementBatch {
 public:
  ElementBatch() = default;
  explicit ElementBatch(std::vector<StreamElement> elems)
      : elems_(std::move(elems)) {
    for (const StreamElement& e : elems_) {
      if (e.is_end_of_stream()) has_eos_ = true;
    }
  }

  void reserve(size_t n) { elems_.reserve(n); }

  void push_back(StreamElement e) {
    if (e.is_end_of_stream()) has_eos_ = true;
    elems_.push_back(std::move(e));
  }

  bool empty() const { return elems_.empty(); }
  size_t size() const { return elems_.size(); }

  /// \brief True when the batch carries an end-of-stream control anywhere.
  /// Operators fall back to the per-element path for such (rare, terminal)
  /// batches so the finished-port accounting stays in one place.
  bool has_eos() const { return has_eos_; }

  std::vector<StreamElement>& elements() { return elems_; }
  const std::vector<StreamElement>& elements() const { return elems_; }

  void clear() {
    elems_.clear();
    has_eos_ = false;
  }

 private:
  std::vector<StreamElement> elems_;
  bool has_eos_ = false;
};

}  // namespace spstream
