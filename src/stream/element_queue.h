// Bounded MPSC hand-off queue for the sharded execution engine.
//
// Producers (the engine's routing thread; in principle several) push
// elements or whole batches; one consumer (a shard worker) drains
// everything available in a single lock hold. Capacity is a soft bound on
// queued items: producers block while the queue is full, which backpressures
// routing to the speed of the slowest shard instead of buffering an entire
// epoch per shard.
//
// The hot path is batched on both sides — PushBatch moves a whole vector
// under one lock hold and DrainInto swaps the queue out under another — so
// per-element cost amortizes to a fraction of a mutex operation.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spstream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity = 4096) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Enqueue one item; blocks while the queue is full. After
  /// Close() the item is dropped and a distinct Status::Cancelled comes
  /// back, so callers can tell engine shutdown apart from backpressure and
  /// from real errors (quarantine teardown relies on the distinction).
  Status Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return Status::Cancelled("queue closed");
    items_.push_back(std::move(item));
    NotePeakLocked();
    not_empty_.notify_one();
    return Status::OK();
  }

  /// \brief Enqueue a whole batch under one lock hold; blocks while the
  /// queue holds `capacity` or more items (a batch may transiently overshoot
  /// the bound — the capacity is a backpressure threshold, not a hard
  /// allocation limit). Status::Cancelled after Close(), like Push.
  Status PushBatch(std::vector<T>* batch) {
    if (batch->empty()) return Status::OK();
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return Status::Cancelled("queue closed");
    if (items_.empty()) {
      items_.swap(*batch);
    } else {
      items_.insert(items_.end(), std::make_move_iterator(batch->begin()),
                    std::make_move_iterator(batch->end()));
      batch->clear();
    }
    NotePeakLocked();
    not_empty_.notify_one();
    return Status::OK();
  }

  /// \brief Non-blocking PushBatch for event-loop producers: enqueue the
  /// whole batch if the queue is below capacity, else return kUnavailable
  /// WITHOUT consuming the batch (the caller parks it and retries after the
  /// consumer drains — an event loop must never block on a full queue).
  /// Status::Cancelled after Close(), like Push.
  Status TryPushBatch(std::vector<T>* batch) {
    if (batch->empty()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::Cancelled("queue closed");
    if (items_.size() >= capacity_) {
      return Status::Unavailable("queue full");
    }
    if (items_.empty()) {
      items_.swap(*batch);
    } else {
      items_.insert(items_.end(), std::make_move_iterator(batch->begin()),
                    std::make_move_iterator(batch->end()));
      batch->clear();
    }
    NotePeakLocked();
    not_empty_.notify_one();
    return Status::OK();
  }

  /// \brief Non-blocking drain: move everything queued into `out` (cleared
  /// first) and return true, or return false immediately when the queue is
  /// empty (closed or not) — the consumer polls many queues per wake.
  bool TryDrainInto(std::vector<T>* out) {
    out->clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out->swap(items_);
    not_full_.notify_all();
    return true;
  }

  /// \brief Block until items are available (or the queue is closed), then
  /// move everything queued into `out` (cleared first). Returns false when
  /// the queue is closed AND empty — the consumer's exit condition.
  bool DrainInto(std::vector<T>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed
    out->swap(items_);
    not_full_.notify_all();
    return true;
  }

  /// \brief Wake all waiters; Push returns Cancelled from now on, DrainInto
  /// returns false once the remaining items are consumed.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// \brief High-water mark of the queue depth (shard-skew visibility).
  size_t peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  void NotePeakLocked() {
    if (items_.size() > peak_) peak_ = items_.size();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> items_;
  size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace spstream
