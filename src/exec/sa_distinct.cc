#include "exec/sa_distinct.h"

namespace spstream {

SaDistinct::SaDistinct(ExecContext* ctx, SaDistinctOptions options,
                       std::string label)
    : Operator(ctx, std::move(label)),
      options_(std::move(options)),
      tracker_(ctx->roles, options_.stream_name) {}

void SaDistinct::Invalidate(Timestamp now) {
  const Timestamp cutoff = now - options_.window_size;
  while (!input_window_.empty() && input_window_.front().ts <= cutoff) {
    const InputRec& rec = input_window_.front();
    auto it = output_state_.find(rec.key);
    if (it != output_state_.end() && --it->second.live_count <= 0) {
      // The value left the window entirely: forget it so a future arrival
      // counts as a fresh distinct value.
      output_state_.erase(it);
    }
    input_window_.pop_front();
  }
}

void SaDistinct::UpdateStateBytes() {
  size_t bytes = sizeof(SaDistinct) + tracker_.MemoryBytes();
  bytes += input_window_.size() * sizeof(InputRec);
  for (const auto& [key, st] : output_state_) {
    bytes += key.MemoryBytes() + st.representative.MemoryBytes() +
             st.emitted_roles.MemoryBytes();
  }
  metrics_.NoteStateBytes(static_cast<int64_t>(bytes));
}

void SaDistinct::Process(StreamElement elem, int) {
  ScopedTimer total(&metrics_.total_nanos);
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    ScopedTimer t(&metrics_.sp_maintenance_nanos);
    if (tracker_.OnSp(elem.sp())) ++metrics_.policy_installs;
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  Tuple& t = elem.tuple();
  if (options_.key_col < 0 ||
      static_cast<size_t>(options_.key_col) >= t.values.size()) {
    return;  // malformed tuple; nothing to deduplicate on
  }

  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    Invalidate(t.ts);
  }

  PolicyPtr policy;
  {
    ScopedTimer tm(&metrics_.sp_maintenance_nanos);
    policy = tracker_.PolicyFor(t);
  }
  const Value key = t.values[static_cast<size_t>(options_.key_col)];
  input_window_.push_back(InputRec{t.ts, key});

  auto it = output_state_.find(key);
  if (it == output_state_.end()) {
    OutState st;
    st.representative = t;
    st.emitted_roles = policy->allowed();
    st.live_count = 1;
    output_state_.emplace(key, std::move(st));
    if (!policy->allowed().Empty()) {
      if (output_emitter_.NeedsSp(policy->allowed(), t.ts)) {
        EmitSp(SynthesizeSp(policy->allowed(),
                            output_emitter_.MonotoneTs(t.ts),
                            options_.output_stream_name, *ctx_->roles));
      }
      Tuple out = std::move(t);
      out.sid = options_.output_sid;
      EmitTuple(std::move(out));
    }
    UpdateStateBytes();
    return;
  }

  OutState& st = it->second;
  ++st.live_count;
  // Roles in P_new that never received this value yet.
  RoleSet fresh = RoleSet::Difference(policy->allowed(), st.emitted_roles);
  st.emitted_roles.UnionWith(policy->allowed());
  if (!fresh.Empty()) {
    if (output_emitter_.NeedsSp(fresh, t.ts)) {
      EmitSp(SynthesizeSp(fresh, output_emitter_.MonotoneTs(t.ts),
                          options_.output_stream_name, *ctx_->roles));
    }
    Tuple out = std::move(t);
    out.sid = options_.output_sid;
    EmitTuple(std::move(out));
  } else {
    ++metrics_.tuples_dropped_predicate;  // duplicate for every role
  }
  UpdateStateBytes();
}

}  // namespace spstream
