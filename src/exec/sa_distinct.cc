#include "exec/sa_distinct.h"

#include <algorithm>

#include "security/sp_codec.h"
#include "storage/state_codec.h"

namespace spstream {

SaDistinct::SaDistinct(ExecContext* ctx, SaDistinctOptions options,
                       std::string label)
    : Operator(ctx, std::move(label)),
      options_(std::move(options)),
      tracker_(ctx->roles, options_.stream_name) {}

void SaDistinct::Invalidate(Timestamp now) {
  if (now > watermark_) watermark_ = now;
  const Timestamp cutoff = now - options_.window_size;
  while (!input_window_.empty() && input_window_.front().ts <= cutoff) {
    const InputRec& rec = input_window_.front();
    dirty_keys_.insert(rec.key);
    auto it = output_state_.find(rec.key);
    if (it != output_state_.end() && --it->second.live_count <= 0) {
      // The value left the window entirely: forget it so a future arrival
      // counts as a fresh distinct value.
      output_state_.erase(it);
    }
    input_window_.pop_front();
  }
}

void SaDistinct::UpdateStateBytes() {
  size_t bytes = sizeof(SaDistinct) + tracker_.MemoryBytes();
  bytes += input_window_.size() * sizeof(InputRec);
  for (const auto& [key, st] : output_state_) {
    bytes += key.MemoryBytes() + st.representative.MemoryBytes() +
             st.emitted_roles.MemoryBytes();
  }
  metrics_.NoteStateBytes(static_cast<int64_t>(bytes));
}

void SaDistinct::Process(StreamElement elem, int) {
  ScopedTimer total(&metrics_.total_nanos);
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    ScopedTimer t(&metrics_.sp_maintenance_nanos);
    if (tracker_.OnSp(elem.sp())) ++metrics_.policy_installs;
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  Tuple& t = elem.tuple();
  if (options_.key_col < 0 ||
      static_cast<size_t>(options_.key_col) >= t.values.size()) {
    return;  // malformed tuple; nothing to deduplicate on
  }

  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    Invalidate(t.ts);
  }

  PolicyPtr policy;
  {
    ScopedTimer tm(&metrics_.sp_maintenance_nanos);
    policy = tracker_.PolicyFor(t);
  }
  const Value key = t.values[static_cast<size_t>(options_.key_col)];
  input_window_.push_back(InputRec{t.ts, key});
  ++total_appended_;
  dirty_keys_.insert(key);

  auto it = output_state_.find(key);
  if (it == output_state_.end()) {
    OutState st;
    st.representative = t;
    st.emitted_roles = policy->allowed();
    st.live_count = 1;
    output_state_.emplace(key, std::move(st));
    if (!policy->allowed().Empty()) {
      if (output_emitter_.NeedsSp(policy->allowed(), t.ts)) {
        EmitSp(SynthesizeSp(policy->allowed(),
                            output_emitter_.MonotoneTs(t.ts),
                            options_.output_stream_name, *ctx_->roles));
      }
      Tuple out = std::move(t);
      out.sid = options_.output_sid;
      EmitTuple(std::move(out));
    }
    UpdateStateBytes();
    return;
  }

  OutState& st = it->second;
  ++st.live_count;
  // Roles in P_new that never received this value yet.
  RoleSet fresh = RoleSet::Difference(policy->allowed(), st.emitted_roles);
  st.emitted_roles.UnionWith(policy->allowed());
  if (!fresh.Empty()) {
    if (output_emitter_.NeedsSp(fresh, t.ts)) {
      EmitSp(SynthesizeSp(fresh, output_emitter_.MonotoneTs(t.ts),
                          options_.output_stream_name, *ctx_->roles));
    }
    Tuple out = std::move(t);
    out.sid = options_.output_sid;
    EmitTuple(std::move(out));
  } else {
    ++metrics_.tuples_dropped_predicate;  // duplicate for every role
  }
  UpdateStateBytes();
}

// ---- durable state (docs/DURABILITY.md) ------------------------------------

void SaDistinct::CheckpointState(std::string* out, bool full) {
  pending_tracker_ts_ = tracker_.current_ts();
  pending_emitter_ts_ = output_emitter_.last_ts();
  pending_appended_ = total_appended_;
  const uint64_t new_records = total_appended_ - ckpt_appended_;
  if (!full && dirty_keys_.empty() && new_records == 0 &&
      pending_tracker_ts_ == ckpt_tracker_ts_ &&
      pending_emitter_ts_ == ckpt_emitter_ts_) {
    return;
  }

  out->push_back(full ? 1 : 0);
  PutVarint(ZigZagEncode(pending_tracker_ts_), out);
  PutVarint(ZigZagEncode(pending_emitter_ts_), out);
  PutVarint(ZigZagEncode(watermark_), out);

  // Dirty dedup entries: snapshot upsert, or tombstone when the value left
  // the window. Snapshots are authoritative — restore replays no counting.
  std::vector<const Value*> keys;
  if (full) {
    for (const auto& [key, st] : output_state_) {
      (void)st;
      keys.push_back(&key);
    }
  } else {
    for (const Value& key : dirty_keys_) keys.push_back(&key);
  }
  PutVarint(keys.size(), out);
  for (const Value* key : keys) {
    storage::PutValue(*key, out);
    auto it = output_state_.find(*key);
    if (it == output_state_.end()) {
      out->push_back(0);  // tombstone
      continue;
    }
    out->push_back(1);
    storage::PutTuple(it->second.representative, out);
    storage::PutRoleSet(it->second.emitted_roles, out);
    PutVarint(static_cast<uint64_t>(it->second.live_count), out);
  }

  const uint64_t n = full ? input_window_.size()
                          : std::min<uint64_t>(new_records,
                                               input_window_.size());
  PutVarint(total_appended_, out);
  PutVarint(n, out);
  for (size_t i = input_window_.size() - static_cast<size_t>(n);
       i < input_window_.size(); ++i) {
    PutVarint(ZigZagEncode(input_window_[i].ts), out);
    storage::PutValue(input_window_[i].key, out);
  }
}

void SaDistinct::OnCheckpointDurable() {
  dirty_keys_.clear();
  ckpt_appended_ = pending_appended_;
  ckpt_tracker_ts_ = pending_tracker_ts_;
  ckpt_emitter_ts_ = pending_emitter_ts_;
}

Status SaDistinct::RestoreState(std::string_view blob) {
  size_t offset = 0;
  if (offset >= blob.size()) {
    return Status::Internal("distinct delta: empty blob");
  }
  const bool full = blob[offset] != 0;
  ++offset;
  SP_ASSIGN_OR_RETURN(uint64_t tr_raw, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t em_raw, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t wm_raw, GetVarint(blob, &offset));

  if (full) {
    output_state_.clear();
    input_window_.clear();
  }

  tracker_.RestoreFailClosed(ZigZagDecode(tr_raw));
  output_emitter_.Restore(ZigZagDecode(em_raw));
  const Timestamp watermark = ZigZagDecode(wm_raw);
  if (watermark > watermark_) watermark_ = watermark;

  SP_ASSIGN_OR_RETURN(uint64_t n_keys, GetVarint(blob, &offset));
  for (uint64_t i = 0; i < n_keys; ++i) {
    SP_ASSIGN_OR_RETURN(Value key, storage::GetValue(blob, &offset));
    if (offset >= blob.size()) {
      return Status::Internal("distinct delta: truncated entry");
    }
    const bool present = blob[offset] != 0;
    ++offset;
    if (!present) {
      output_state_.erase(key);
      continue;
    }
    OutState st;
    SP_ASSIGN_OR_RETURN(st.representative, storage::GetTuple(blob, &offset));
    SP_ASSIGN_OR_RETURN(st.emitted_roles, storage::GetRoleSet(blob, &offset));
    SP_ASSIGN_OR_RETURN(uint64_t live, GetVarint(blob, &offset));
    st.live_count = static_cast<int64_t>(live);
    output_state_[key] = std::move(st);
  }

  SP_ASSIGN_OR_RETURN(uint64_t appended_total, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t n_records, GetVarint(blob, &offset));
  for (uint64_t i = 0; i < n_records; ++i) {
    SP_ASSIGN_OR_RETURN(uint64_t ts_raw, GetVarint(blob, &offset));
    SP_ASSIGN_OR_RETURN(Value key, storage::GetValue(blob, &offset));
    input_window_.push_back(InputRec{ZigZagDecode(ts_raw), std::move(key)});
  }
  if (offset != blob.size()) {
    return Status::Internal("distinct delta: trailing bytes");
  }

  // Drop records that already expired pre-crash without touching counts —
  // the snapshots above reflect those expiries.
  if (watermark_ > kMinTimestamp) {
    const Timestamp cutoff = watermark_ - options_.window_size;
    while (!input_window_.empty() && input_window_.front().ts <= cutoff) {
      input_window_.pop_front();
    }
  }

  total_appended_ = std::max(total_appended_, appended_total);
  ckpt_appended_ = pending_appended_ = total_appended_;
  ckpt_tracker_ts_ = pending_tracker_ts_ = tracker_.current_ts();
  ckpt_emitter_ts_ = pending_emitter_ts_ = output_emitter_.last_ts();
  dirty_keys_.clear();
  return Status::OK();
}

}  // namespace spstream
