// Scalar expression trees evaluated against tuples: column references,
// literals, comparisons, boolean connectives, arithmetic, and the distance
// primitive used by the paper's "objects within two miles" location query.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "stream/tuple.h"

namespace spstream {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;
class ColumnarPredicateBuilder;

/// \brief Immutable scalar expression node.
class Expr {
 public:
  enum class Kind : uint8_t {
    kColumn,
    kLiteral,
    kCompare,
    kLogical,
    kArithmetic,
    kDistance,  // euclidean distance over four scalar operands
  };
  enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
  enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;
  virtual Value Eval(const Tuple& t) const = 0;
  virtual std::string ToString() const = 0;

  /// \brief Evaluate as a predicate: non-null, non-false, non-zero is true.
  bool EvalBool(const Tuple& t) const {
    Value v = Eval(t);
    if (v.is_bool()) return v.boolean();
    if (v.is_null()) return false;
    return v.AsDouble() != 0.0;
  }

  // Factories.
  static ExprPtr Column(int index, std::string name = "");
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  /// \brief sqrt((x1-x2)^2 + (y1-y2)^2).
  static ExprPtr Distance(ExprPtr x1, ExprPtr y1, ExprPtr x2, ExprPtr y2);

  /// \brief Column indexes referenced anywhere in the tree (deduplicated).
  std::vector<int> ReferencedColumns() const;

  /// \brief Append referenced column indexes to `out` (implementation hook
  /// for ReferencedColumns; public so sibling nodes can recurse).
  virtual void CollectColumns(std::vector<int>* out) const = 0;

  /// \brief Register this subtree with a columnar predicate compiler
  /// (exec/vector_eval.h) and return its node id, or -1 when the node kind
  /// has no vectorized form (arithmetic, distance) — the caller then keeps
  /// the scalar per-element path. Compiled programs must reproduce
  /// Eval/EvalBool (and therefore Value::Compare) semantics exactly.
  virtual int CompileColumnar(ColumnarPredicateBuilder* builder) const {
    (void)builder;
    return -1;
  }
};

/// \brief Sink interface CompileColumnar implementations register nodes
/// with. Every Add* returns the new node's id or -1 (unsupported operand).
class ColumnarPredicateBuilder {
 public:
  virtual ~ColumnarPredicateBuilder() = default;
  virtual int AddColumn(int index) = 0;
  virtual int AddLiteral(const Value& v) = 0;
  virtual int AddCompare(Expr::CmpOp op, int lhs, int rhs) = 0;
  virtual int AddLogical(Expr::LogicalOp op, int lhs, int rhs) = 0;
};

const char* CmpOpToString(Expr::CmpOp op);
const char* ArithOpToString(Expr::ArithOp op);

}  // namespace spstream
