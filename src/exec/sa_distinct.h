// Security-aware duplicate elimination δ over a sliding window (Table I).
//
// The output contains exactly one tuple per distinct value present in the
// window — per *role*: a role that could not access the previously emitted
// duplicate must still receive the value. The paper's three cases reduce to
// one rule: on a new duplicate with policy P_new and cumulative emitted
// policy P_old, emit the value preceded by sp(P_new − P_old) iff that set is
// non-empty, then fold P_new into the emitted policy.
//   case 1 (P_old ∩ P_new = ∅):          emits P_new.
//   case 2 (P_old ∩ P_new = P_new):      emits nothing.
//   case 3 (otherwise):                  emits P_new − (P_old ∩ P_new).
// (The paper's case 1 stores P_new alone; we store the union, which is what
// keeps the per-role no-duplicate invariant exact — see DESIGN.md.)
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "exec/operator.h"
#include "exec/policy_tracker.h"
#include "exec/sp_synth.h"

namespace spstream {

struct SaDistinctOptions {
  int key_col = 0;               ///< column whose distinct values are kept
  Timestamp window_size = 1000;  ///< sliding-window extent
  std::string stream_name;       ///< input stream (DDP matching)
  std::string output_stream_name = "distinct_out";
  StreamId output_sid = 0;
};

class SaDistinct : public Operator {
 public:
  SaDistinct(ExecContext* ctx, SaDistinctOptions options,
             std::string label = "distinct");

  /// \brief Number of distinct values currently tracked.
  size_t output_state_size() const { return output_state_.size(); }

  // Durable state: dirty per-value dedup entries (upsert or tombstone),
  // window records since the cursor, and the tracker/emitter timestamps.
  bool HasDurableState() const override { return true; }
  void CheckpointState(std::string* out, bool full) override;
  void OnCheckpointDurable() override;
  Status RestoreState(std::string_view blob) override;
  void OnRestoreComplete() override { UpdateStateBytes(); }

 protected:
  void Process(StreamElement elem, int) override;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct OutState {
    Tuple representative;
    RoleSet emitted_roles;  // cumulative P_old
    int64_t live_count = 0; // window residents with this value
  };
  struct InputRec {
    Timestamp ts;
    Value key;
  };

  void Invalidate(Timestamp now);
  void UpdateStateBytes();

  SaDistinctOptions options_;
  PolicyTracker tracker_;
  std::deque<InputRec> input_window_;
  std::unordered_map<Value, OutState, ValueHash> output_state_;
  OutputPolicyEmitter output_emitter_;

  // ---- checkpoint bookkeeping (docs/DURABILITY.md) ----
  uint64_t total_appended_ = 0;  // window records ever pushed
  Timestamp watermark_ = kMinTimestamp;
  std::unordered_set<Value, ValueHash> dirty_keys_;
  uint64_t ckpt_appended_ = 0;
  uint64_t pending_appended_ = 0;
  Timestamp ckpt_tracker_ts_ = kMinTimestamp;
  Timestamp ckpt_emitter_ts_ = kMinTimestamp;
  Timestamp pending_tracker_ts_ = kMinTimestamp;
  Timestamp pending_emitter_ts_ = kMinTimestamp;
};

}  // namespace spstream
