// Push-based pipelined operator framework (the CAPE-substitute execution
// model of §IV): operators form a DAG, elements are pushed downstream as
// soon as they are produced, and every operator tracks its own cost/memory
// metrics for the benchmark harness.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "stream/element_batch.h"
#include "stream/stream_element.h"

namespace spstream {

/// \brief Base class of all physical operators.
class Operator {
 public:
  Operator(ExecContext* ctx, std::string label, int num_inputs = 1)
      : ctx_(ctx), label_(std::move(label)), num_inputs_(num_inputs) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// \brief Wire `downstream` to receive this operator's output on
  /// `downstream_port`. Fan-out (several downstreams) is supported —
  /// elements are copied per edge; fan-in must go through distinct ports of
  /// a multi-input operator (e.g. UnionOp), never two parents on one port.
  void AddOutput(Operator* downstream, int downstream_port = 0) {
    outputs_.push_back(Edge{downstream, downstream_port});
  }

  /// \brief Push one element into input `port`. End-of-stream controls are
  /// routed to OnPortFinished and propagate downstream once *all* ports have
  /// finished.
  void Push(StreamElement elem, int port = 0);

  /// \brief Push a micro-batch into input `port`. Everything the operator
  /// emits while processing the batch is collected and forwarded downstream
  /// as one batch, so batching survives the whole DAG without any operator
  /// opting in. Per-edge output order is identical to pushing the elements
  /// one by one (the batch-equivalence contract).
  void PushBatch(ElementBatch batch, int port = 0);

  const std::string& label() const { return label_; }
  int num_inputs() const { return num_inputs_; }
  const OperatorMetrics& metrics() const { return metrics_; }
  OperatorMetrics& mutable_metrics() { return metrics_; }
  ExecContext* ctx() const { return ctx_; }

  /// \brief Query this operator executes for ("q0", ...), used to scope
  /// audit events and registry keys. Set by the engine after plan build;
  /// empty for raw pipelines.
  const std::string& query_tag() const { return query_tag_; }
  void set_query_tag(std::string tag) { query_tag_ = std::move(tag); }

  /// \brief The engine's audit log, or nullptr when not wired up.
  AuditLog* audit() const { return ctx_->audit; }

  // ---- durable state (docs/DURABILITY.md) --------------------------------
  // Stateful operators (windows, group-by, distinct, the Security Shield's
  // tracker) participate in incremental checkpointing. The engine calls
  // CheckpointState at epoch barriers, OnCheckpointDurable once the epoch's
  // commit protocol finished (the delta reached the manifest), and
  // RestoreState during recovery with each delta blob of the chain, oldest
  // first. CheckpointState must NOT advance the operator's dirty cursor —
  // only OnCheckpointDurable does, so a failed commit re-covers the same
  // interval in the next delta (exactly-once over the blob chain).

  /// \brief True for operators that carry state across epochs.
  virtual bool HasDurableState() const { return false; }

  /// \brief Serialize state changed since the last durable checkpoint into
  /// `out` (appended). `full` forces a complete snapshot (rebase). Leaving
  /// `out` empty means "nothing changed" and elides the delta entry.
  virtual void CheckpointState(std::string* out, bool full) {
    (void)out;
    (void)full;
  }

  /// \brief The delta produced by the last CheckpointState is durable:
  /// advance the dirty cursor.
  virtual void OnCheckpointDurable() {}

  /// \brief Apply one delta blob (in chain order). Policy trackers restore
  /// FAIL-CLOSED: deny-all at the recovered batch ts until a newer sp-batch
  /// re-converges.
  virtual Status RestoreState(std::string_view blob) {
    (void)blob;
    return Status::OK();
  }

  /// \brief The whole chain has been applied; rebuild derived structures
  /// (indexes, memo state) and refresh metrics.
  virtual void OnRestoreComplete() {}

 protected:
  /// \brief Operator-specific processing of a non-EOS element.
  virtual void Process(StreamElement elem, int port) = 0;

  /// \brief Operator-specific processing of a batch with no EOS element.
  /// The default loops Process, so every operator is batch-transparent;
  /// hot operators override it with a kernel that dispatches once per
  /// batch (one timer, no per-element virtual call) — and must produce the
  /// exact output sequence the per-element loop would.
  virtual void ProcessBatch(ElementBatch& batch, int port);

  /// \brief Columnar kernel hook, tried by PushBatch for columnar non-EOS
  /// batches before the collect-mode row path. An override either returns
  /// false WITHOUT side effects (PushBatch falls back to ProcessBatch,
  /// which decays the batch to rows) or fully consumes `batch`, builds the
  /// complete output batch in `*out` — columnar where possible, so results
  /// are never re-wrapped element by element — and returns true. Output
  /// must be sequence-identical to the per-element path.
  virtual bool ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                               int port) {
    (void)batch;
    (void)out;
    (void)port;
    return false;
  }

  /// \brief Called when a port sees end-of-stream. Default: nothing.
  virtual void OnPortFinished(int port) { (void)port; }

  /// \brief Called once, after every input port has finished, before EOS
  /// propagates. Stateful operators flush pending results here.
  virtual void OnAllFinished() {}

  /// \brief Send an element to all downstream operators. While a batch is
  /// being processed this appends to the collect buffer instead (forwarded
  /// as one batch when the input batch completes).
  void Emit(StreamElement elem);

  /// \brief Send a batch to all downstream operators (copy for the first
  /// N-1 fan-out edges, move into the last — the batch analogue of Emit).
  void ForwardBatch(ElementBatch batch);
  void EmitTuple(Tuple t) {
    ++metrics_.tuples_out;
    Emit(StreamElement(std::move(t)));
  }
  void EmitSp(SecurityPunctuation sp) {
    ++metrics_.sps_out;
    Emit(StreamElement(std::move(sp)));
  }

  ExecContext* ctx_;
  OperatorMetrics metrics_;

 private:
  struct Edge {
    Operator* op;
    int port;
  };

  std::string label_;
  std::string query_tag_;
  int num_inputs_;
  int finished_ports_ = 0;
  std::vector<Edge> outputs_;
  // Non-null while PushBatch runs: Emit appends here instead of pushing
  // downstream, so one input batch becomes one output batch per edge.
  ElementBatch* collect_ = nullptr;
};

/// \brief Feeds a pre-materialized element sequence into the DAG. The
/// executor polls sources round-robin, giving pipelined interleaving across
/// streams.
class SourceOperator : public Operator {
 public:
  SourceOperator(ExecContext* ctx, std::string label,
                 std::vector<StreamElement> elements)
      : Operator(ctx, std::move(label), /*num_inputs=*/0),
        elements_(std::move(elements)) {}

  /// \brief Push up to `max_elements` downstream; returns the number pushed
  /// (0 once exhausted). Emits EOS after the last element.
  size_t Poll(size_t max_elements);

  bool exhausted() const { return eos_sent_; }

 protected:
  void Process(StreamElement, int) override {}  // sources take no input

 private:
  std::vector<StreamElement> elements_;
  size_t next_ = 0;
  bool eos_sent_ = false;
};

/// \brief Externally-fed source for long-lived (continuous) pipelines: the
/// owner pushes elements as they are admitted instead of pre-materializing
/// the stream. Never emits EOS on its own — call Finish() to end the
/// stream explicitly.
class PushSource : public Operator {
 public:
  explicit PushSource(ExecContext* ctx, std::string label = "push_src")
      : Operator(ctx, std::move(label), /*num_inputs=*/0) {}

  /// \brief Inject one element; it flows through the whole DAG before this
  /// returns (synchronous pipelined execution).
  void Feed(StreamElement elem) {
    if (elem.is_tuple()) {
      ++metrics_.tuples_in;
      ++metrics_.tuples_out;
    } else if (elem.is_sp()) {
      ++metrics_.sps_in;
      ++metrics_.sps_out;
    }
    Emit(std::move(elem));
  }

  /// \brief Inject a micro-batch; it flows through the whole DAG as a batch
  /// before this returns. Order-equivalent to Feed()ing each element.
  void FeedBatch(ElementBatch batch) {
    if (batch.empty()) return;
    ++metrics_.batches_in;
    metrics_.batch_elements_in += static_cast<int64_t>(batch.size());
    // Counts without materializing a columnar batch into rows.
    int64_t tuples = 0, sps = 0;
    batch.CountLive(&tuples, &sps);
    metrics_.tuples_in += tuples;
    metrics_.tuples_out += tuples;
    metrics_.sps_in += sps;
    metrics_.sps_out += sps;
    ForwardBatch(std::move(batch));
  }

  /// \brief Terminate the stream (propagates EOS; stateful downstream
  /// operators flush).
  void Finish() {
    if (!finished_) {
      finished_ = true;
      Emit(StreamElement::EndOfStream(kMaxTimestamp));
    }
  }

  bool finished() const { return finished_; }

 protected:
  void Process(StreamElement, int) override {}

 private:
  bool finished_ = false;
};

/// \brief Terminal operator collecting results for inspection. Results
/// arrive as row elements or whole columnar chunks; chunks stay columnar
/// until an element-level view is requested, so the engine's Tuple-only
/// result pull (TakeTuples) never materializes a StreamElement per result.
class CollectorSink : public Operator {
 public:
  explicit CollectorSink(ExecContext* ctx, std::string label = "sink")
      : Operator(ctx, std::move(label)) {}

  /// \brief Flat element view (built lazily from the chunks; chunks are
  /// left intact).
  const std::vector<StreamElement>& elements() const;

  /// \brief Only the data tuples, in arrival order.
  std::vector<Tuple> Tuples() const;
  /// \brief Only the sps, in arrival order.
  std::vector<SecurityPunctuation> Sps() const;

  /// \brief Drain: return collected tuples and clear everything (used by
  /// long-lived pipelines between result pulls).
  std::vector<Tuple> TakeTuples() {
    std::vector<Tuple> out = Tuples();
    Clear();
    return out;
  }

  void Clear() {
    chunks_.clear();
    flat_.clear();
    flat_valid_ = true;
  }

  /// \brief Chunks retained in columnar form (regression observability for
  /// the no-per-element-re-wrap contract).
  size_t columnar_chunks() const {
    size_t n = 0;
    for (const ElementBatch& c : chunks_) n += c.is_columnar() ? 1 : 0;
    return n;
  }

  /// \brief Retained bytes across all chunks.
  size_t RetainedBytes() const {
    size_t n = 0;
    for (const ElementBatch& c : chunks_) n += c.MemoryBytes();
    return n;
  }

 protected:
  void Process(StreamElement elem, int) override {
    if (elem.is_tuple()) {
      ++metrics_.tuples_in;
    } else if (elem.is_sp()) {
      ++metrics_.sps_in;
    }
    TailRowChunk().push_back(std::move(elem));
    flat_valid_ = false;
  }

  void ProcessBatch(ElementBatch& batch, int) override {
    // No reserve: an exact-fit reserve per batch would defeat push_back's
    // geometric growth (quadratic re-copying at small batch sizes).
    ElementBatch& tail = TailRowChunk();
    for (StreamElement& e : batch.elements()) {
      if (e.is_tuple()) {
        ++metrics_.tuples_in;
      } else if (e.is_sp()) {
        ++metrics_.sps_in;
      }
      tail.push_back(std::move(e));
    }
    flat_valid_ = false;
  }

  bool ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                       int) override {
    (void)out;  // terminal: nothing flows downstream
    int64_t tuples = 0, sps = 0;
    batch.CountLive(&tuples, &sps);
    metrics_.tuples_in += tuples;
    metrics_.sps_in += sps;
    chunks_.push_back(std::move(batch));
    flat_valid_ = false;
    return true;
  }

 private:
  /// \brief The trailing row-representation chunk, created on demand.
  ElementBatch& TailRowChunk() {
    if (chunks_.empty() || chunks_.back().is_columnar()) {
      chunks_.emplace_back();
    }
    return chunks_.back();
  }

  std::vector<ElementBatch> chunks_;
  // Lazily flattened element view for callers that inspect the raw
  // sequence (tests, benches); invalidated by every arrival.
  mutable std::vector<StreamElement> flat_;
  mutable bool flat_valid_ = true;
};

/// \brief Owns a DAG of operators plus its sources, and drives them.
class Pipeline {
 public:
  explicit Pipeline(ExecContext* ctx) : ctx_(ctx) {}

  /// \brief Take ownership of an operator.
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto op = std::make_unique<T>(ctx_, std::forward<Args>(args)...);
    T* raw = op.get();
    operators_.push_back(std::move(op));
    if constexpr (std::is_base_of_v<SourceOperator, T>) {
      sources_.push_back(raw);
    }
    return raw;
  }

  /// \brief Round-robin the sources until all are exhausted (pipelined
  /// execution: every element flows through the whole DAG before the next
  /// source poll).
  void Run(size_t batch_per_poll = 1);

  /// \brief Tag every operator with the query it executes for (audit-event
  /// and registry scoping).
  void SetQueryTag(const std::string& tag);

  /// \brief How HarvestInto records operator metrics in a registry.
  enum class HarvestMode {
    kOverwrite,  ///< long-lived pipeline: operators accumulate, overwrite
    kMerge,      ///< per-epoch pipeline: fresh metrics each run, fold in
  };

  /// \brief Publish every operator's metrics into `registry` under `query`.
  /// Duplicate labels are disambiguated with a "#n" suffix in DAG order.
  void HarvestInto(MetricsRegistry* registry, const std::string& query,
                   HarvestMode mode = HarvestMode::kOverwrite) const;

  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return operators_;
  }
  ExecContext* ctx() const { return ctx_; }

 private:
  ExecContext* ctx_;
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<SourceOperator*> sources_;
};

}  // namespace spstream
