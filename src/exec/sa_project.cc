#include "exec/sa_project.h"

namespace spstream {

SaProject::SaProject(ExecContext* ctx, std::vector<int> keep_columns,
                     SchemaPtr input_schema, std::string label)
    : Operator(ctx, std::move(label)),
      keep_columns_(std::move(keep_columns)),
      input_schema_(std::move(input_schema)) {
  std::vector<Field> fields;
  fields.reserve(keep_columns_.size());
  for (int col : keep_columns_) {
    if (col >= 0 &&
        static_cast<size_t>(col) < input_schema_->num_fields()) {
      fields.push_back(input_schema_->field(static_cast<size_t>(col)));
    }
  }
  output_schema_ =
      MakeSchema(input_schema_->stream_name() + "_proj", std::move(fields));
}

bool SaProject::SpIrrelevantAfterProjection(
    const SecurityPunctuation& sp) const {
  if (sp.CoversWholeTuple()) return false;  // tuple/stream policies survive
  for (int col : keep_columns_) {
    if (col >= 0 &&
        static_cast<size_t>(col) < input_schema_->num_fields() &&
        sp.AppliesToAttribute(
            input_schema_->field(static_cast<size_t>(col)).name)) {
      return false;
    }
  }
  return true;  // covered only projected-away attributes
}

void SaProject::Process(StreamElement elem, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  ProcessElement(elem);
}

void SaProject::ProcessBatch(ElementBatch& batch, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  for (StreamElement& e : batch.elements()) {
    ProcessElement(e);
  }
}

void SaProject::ProcessElement(StreamElement& elem) {
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    if (SpIrrelevantAfterProjection(elem.sp())) return;
    EmitSp(std::move(elem.sp()));
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  Tuple& t = elem.tuple();
  std::vector<Value> projected;
  projected.reserve(keep_columns_.size());
  for (int col : keep_columns_) {
    if (col >= 0 && static_cast<size_t>(col) < t.values.size()) {
      projected.push_back(std::move(t.values[static_cast<size_t>(col)]));
    } else {
      projected.push_back(Value::Null());
    }
  }
  t.values = std::move(projected);
  EmitTuple(std::move(t));
}

}  // namespace spstream
