#include "exec/sa_project.h"

namespace spstream {

SaProject::SaProject(ExecContext* ctx, std::vector<int> keep_columns,
                     SchemaPtr input_schema, std::string label)
    : Operator(ctx, std::move(label)),
      keep_columns_(std::move(keep_columns)),
      input_schema_(std::move(input_schema)) {
  std::vector<Field> fields;
  fields.reserve(keep_columns_.size());
  for (int col : keep_columns_) {
    if (col >= 0 &&
        static_cast<size_t>(col) < input_schema_->num_fields()) {
      fields.push_back(input_schema_->field(static_cast<size_t>(col)));
    }
  }
  output_schema_ =
      MakeSchema(input_schema_->stream_name() + "_proj", std::move(fields));
}

bool SaProject::SpIrrelevantAfterProjection(
    const SecurityPunctuation& sp) const {
  if (sp.CoversWholeTuple()) return false;  // tuple/stream policies survive
  for (int col : keep_columns_) {
    if (col >= 0 &&
        static_cast<size_t>(col) < input_schema_->num_fields() &&
        sp.AppliesToAttribute(
            input_schema_->field(static_cast<size_t>(col)).name)) {
      return false;
    }
  }
  return true;  // covered only projected-away attributes
}

void SaProject::Process(StreamElement elem, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  ProcessElement(elem);
}

void SaProject::ProcessBatch(ElementBatch& batch, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  for (StreamElement& e : batch.elements()) {
    ProcessElement(e);
  }
}

bool SaProject::ProcessColumnar(ElementBatch& batch, ElementBatch* out, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  // Specials: sps irrelevant after the projection are discarded; controls
  // keep their anchors.
  std::vector<ElementBatch::Special>& specials = batch.specials();
  std::vector<ElementBatch::Special> kept;
  kept.reserve(specials.size());
  for (ElementBatch::Special& s : specials) {
    if (s.elem.is_sp()) {
      ++metrics_.sps_in;
      if (SpIrrelevantAfterProjection(s.elem.sp())) continue;
      ++metrics_.sps_out;
    }
    kept.push_back(std::move(s));
  }
  const size_t live = batch.num_live_rows();
  metrics_.tuples_in += static_cast<int64_t>(live);
  metrics_.tuples_out += static_cast<int64_t>(live);
  // Columns: move each retained array into output position; a repeated
  // source column is copied until its last use.
  std::vector<ColumnVector>& cols = batch.mutable_columns();
  std::vector<ColumnVector> projected;
  projected.reserve(keep_columns_.size());
  for (size_t j = 0; j < keep_columns_.size(); ++j) {
    const int col = keep_columns_[j];
    if (col >= 0 && static_cast<size_t>(col) < cols.size()) {
      bool last_use = true;
      for (size_t j2 = j + 1; j2 < keep_columns_.size(); ++j2) {
        if (keep_columns_[j2] == col) {
          last_use = false;
          break;
        }
      }
      if (last_use) {
        projected.push_back(std::move(cols[static_cast<size_t>(col)]));
      } else {
        projected.push_back(cols[static_cast<size_t>(col)]);
      }
    } else {
      ColumnVector null_col;
      null_col.AppendNulls(batch.num_rows());
      projected.push_back(std::move(null_col));
    }
  }
  batch.ReplaceColumns(std::move(projected));
  batch.ReplaceSpecials(std::move(kept));
  *out = std::move(batch);
  return true;
}

void SaProject::ProcessElement(StreamElement& elem) {
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    if (SpIrrelevantAfterProjection(elem.sp())) return;
    EmitSp(std::move(elem.sp()));
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  Tuple& t = elem.tuple();
  std::vector<Value> projected;
  projected.reserve(keep_columns_.size());
  for (size_t j = 0; j < keep_columns_.size(); ++j) {
    const int col = keep_columns_[j];
    if (col >= 0 && static_cast<size_t>(col) < t.values.size()) {
      // A repeated source column is copied until its last use — moving on
      // the first use would hand later uses a moved-from Value.
      bool last_use = true;
      for (size_t j2 = j + 1; j2 < keep_columns_.size(); ++j2) {
        if (keep_columns_[j2] == col) {
          last_use = false;
          break;
        }
      }
      Value& v = t.values[static_cast<size_t>(col)];
      if (last_use) {
        projected.push_back(std::move(v));
      } else {
        projected.push_back(v);
      }
    } else {
      projected.push_back(Value::Null());
    }
  }
  t.values = std::move(projected);
  EmitTuple(std::move(t));
}

}  // namespace spstream
