#include "exec/sa_setops.h"

namespace spstream {

SaSetOp::SaSetOp(ExecContext* ctx, SaSetOpOptions options, std::string label)
    : Operator(ctx, std::move(label), /*num_inputs=*/2),
      options_(std::move(options)),
      trackers_{PolicyTracker(ctx->roles, options_.left_stream_name),
                PolicyTracker(ctx->roles, options_.right_stream_name)},
      window_(options_.window_size) {}

bool SaSetOp::ValuesEqual(const Tuple& a, const Tuple& b) {
  return a.values == b.values;
}

void SaSetOp::Process(StreamElement elem, int port) {
  ScopedTimer total(&metrics_.total_nanos);
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    ScopedTimer t(&metrics_.sp_maintenance_nanos);
    if (trackers_[port].OnSp(elem.sp())) ++metrics_.policy_installs;
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  Tuple t = std::move(elem.tuple());

  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    window_.Invalidate(t.ts);
  }

  if (port == 1) {
    // Right side: only window maintenance.
    PolicyPtr policy = trackers_[1].PolicyFor(t);
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    window_.InsertTuple(std::move(t), policy,
                        trackers_[1].current_batch());
    return;
  }

  // Left side: probe the right window.
  PolicyPtr left_policy = trackers_[0].PolicyFor(t);
  if (left_policy->DeniesEveryone()) {
    ++metrics_.tuples_dropped_security;
    return;
  }

  RoleSet out_roles;
  {
    ScopedTimer tj(&metrics_.join_nanos);
    if (options_.kind == SaSetOpOptions::Kind::kIntersect) {
      // Roles receiving the tuple: P_L ∩ (∪ compatible matching P_R).
      RoleSet matched;
      for (Segment& seg : window_.segments()) {
        if (!seg.policy->allowed().Intersects(left_policy->allowed())) {
          continue;
        }
        for (const Tuple& u : seg.tuples) {
          if (ValuesEqual(t, u)) {
            matched.UnionWith(seg.policy->allowed());
            break;
          }
        }
      }
      out_roles = RoleSet::Intersect(left_policy->allowed(), matched);
    } else {
      // EXCEPT: P_L minus every policy that can see a matching right tuple.
      out_roles = left_policy->allowed();
      for (Segment& seg : window_.segments()) {
        for (const Tuple& u : seg.tuples) {
          if (ValuesEqual(t, u)) {
            out_roles.SubtractAll(seg.policy->allowed());
            break;
          }
        }
        if (out_roles.Empty()) break;
      }
    }
  }

  if (out_roles.Empty()) {
    ++metrics_.tuples_dropped_security;
    return;
  }
  if (output_emitter_.NeedsSp(out_roles, t.ts)) {
    EmitSp(SynthesizeSp(out_roles, output_emitter_.MonotoneTs(t.ts),
                        options_.output_stream_name, *ctx_->roles));
  }
  t.sid = options_.output_sid;
  EmitTuple(std::move(t));
}

}  // namespace spstream
