// Synthesis of output sps: stateful operators (join, distinct, group-by)
// emit results "preceded by the sp(s) depicting" the result policy
// (Table I). This helper fabricates a punctuation for a resolved role set
// and dedups consecutive equal-policy emissions.
#pragma once

#include <string>

#include "security/policy.h"
#include "security/security_punctuation.h"

namespace spstream {

/// \brief Build a positive tuple-level sp over `stream_name` authorizing
/// exactly `roles` from `ts` on. The SRP pattern text is reconstructed from
/// catalog names for readability; the resolved bitmap is attached so no
/// downstream re-resolution is needed.
SecurityPunctuation SynthesizeSp(const RoleSet& roles, Timestamp ts,
                                 const std::string& stream_name,
                                 const RoleCatalog& catalog);

/// \brief Tracks the policy last emitted on an output stream and decides
/// whether a new result needs a fresh preceding sp. This is what lets many
/// same-policy results share one output punctuation.
class OutputPolicyEmitter {
 public:
  /// \brief Returns true when `policy` differs from the last emitted one
  /// (caller must emit an sp before the result) and records it as current.
  bool NeedsSp(const RoleSet& policy_roles, Timestamp ts);

  /// \brief Timestamp to stamp on the synthesized sp: clamped to be
  /// non-decreasing across emissions. Derived-stream event times are not
  /// globally ordered (a join interleaves two inputs), but downstream
  /// policy trackers rightly drop out-of-order punctuations as stale — an
  /// sp stream MUST be ts-monotone or tuples would silently inherit the
  /// previous (possibly broader) policy.
  Timestamp MonotoneTs(Timestamp proposed) {
    if (proposed > last_ts_) last_ts_ = proposed;
    return last_ts_;
  }

  const RoleSet& current_roles() const { return current_; }

  /// \brief Checkpoint: only the monotone clamp survives a restart. The
  /// "last emitted roles" memo is deliberately dropped on restore so the
  /// first post-recovery result re-emits its sp — downstream consumers may
  /// have missed the pre-crash one (at-most-once delivery).
  Timestamp last_ts() const { return last_ts_; }
  void Restore(Timestamp last_ts) {
    last_ts_ = last_ts;
    has_current_ = false;
    current_ = RoleSet();
  }

 private:
  bool has_current_ = false;
  RoleSet current_;
  Timestamp last_ts_ = kMinTimestamp;
};

}  // namespace spstream
