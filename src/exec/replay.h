// Arrival-time replay and per-result latency measurement.
//
// The pipelined engine is synchronous, so result latency equals the
// processing delay between an element's (simulated) arrival and the moment
// its results leave the plan. ReplayDriver stamps each tuple's arrival with
// a wall-clock time derived from a configured arrival rate, pushes the
// stream through a compiled plan, and records per-result latencies — the
// evaluation dimension behind "speed of enforcement" claims.
#pragma once

#include <vector>

#include "engine/overload.h"
#include "exec/operator.h"

namespace spstream {

struct ReplayOptions {
  /// Simulated tuples per millisecond on each source (controls how far
  /// apart arrival stamps are placed). <= 0 means back-to-back arrival.
  double arrival_rate_per_ms = 0;
  /// Elements pushed per scheduler round per source.
  size_t batch_per_poll = 64;
  /// Optional overload controller: when set, every scheduler round polls
  /// at the controller's EffectiveBatchSize(batch_per_poll) instead of the
  /// full batch — tier-1 degradation (kThrottle) applied at the source,
  /// before elements ever enter the plan. Not owned.
  const OverloadController* overload = nullptr;
};

/// \brief Latency distribution summary (microseconds).
struct LatencySummary {
  size_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;

  std::string ToString() const;
};

/// \brief Records result-departure latencies against source arrival stamps.
///
/// Wire it as the plan's sink. The driver calls MarkArrival right before
/// pushing each source element; the sink stamps each received tuple with
/// now - last_arrival (the synchronous engine guarantee: everything a push
/// produces is emitted before the push returns).
class LatencySink : public Operator {
 public:
  explicit LatencySink(ExecContext* ctx, std::string label = "latency_sink")
      : Operator(ctx, std::move(label)) {}

  void MarkArrival() { arrival_nanos_ = NowNanos(); }

  const std::vector<int64_t>& latencies_nanos() const { return latencies_; }
  int64_t tuples() const { return metrics_.tuples_in; }

  LatencySummary Summarize() const;

 protected:
  void Process(StreamElement elem, int) override {
    if (elem.is_tuple()) {
      ++metrics_.tuples_in;
      latencies_.push_back(NowNanos() - arrival_nanos_);
    } else if (elem.is_sp()) {
      ++metrics_.sps_in;
    }
  }

 private:
  int64_t arrival_nanos_ = 0;
  std::vector<int64_t> latencies_;
};

/// \brief Drive sources element-by-element, marking arrivals on `sink`.
/// Returns total wall time in milliseconds.
double ReplayWithLatency(Pipeline* pipeline,
                         const std::vector<SourceOperator*>& sources,
                         LatencySink* sink,
                         const ReplayOptions& options = {});

}  // namespace spstream
