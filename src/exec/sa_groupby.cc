#include "exec/sa_groupby.h"

#include <algorithm>

namespace spstream {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

SaGroupBy::SaGroupBy(ExecContext* ctx, SaGroupByOptions options,
                     std::string label)
    : Operator(ctx, std::move(label)),
      options_(std::move(options)),
      tracker_(ctx->roles, options_.stream_name) {
  output_schema_ = MakeSchema(
      options_.output_stream_name,
      {Field{"group_key", ValueType::kNull},
       Field{std::string(AggFnToString(options_.agg_fn)),
             ValueType::kDouble}});
}

SaGroupBy::AsgPtr SaGroupBy::Find(AsgPtr node) {
  while (node->parent) node = node->parent;
  return node;
}

void SaGroupBy::AddToAsg(const AsgPtr& asg, double v) {
  ++asg->count;
  asg->sum += v;
  if (options_.agg_fn == AggFn::kMin || options_.agg_fn == AggFn::kMax) {
    asg->ordered.insert(v);
  }
}

void SaGroupBy::RemoveFromAsg(const AsgPtr& asg, double v) {
  --asg->count;
  asg->sum -= v;
  if (options_.agg_fn == AggFn::kMin || options_.agg_fn == AggFn::kMax) {
    auto it = asg->ordered.find(v);
    if (it != asg->ordered.end()) asg->ordered.erase(it);
  }
}

Value SaGroupBy::CurrentAggregate(const Asg& asg) const {
  switch (options_.agg_fn) {
    case AggFn::kCount:
      return asg.count;
    case AggFn::kSum:
      return asg.sum;
    case AggFn::kAvg:
      return asg.count == 0 ? Value::Null() : Value(asg.sum / asg.count);
    case AggFn::kMin:
      return asg.ordered.empty() ? Value::Null() : Value(*asg.ordered.begin());
    case AggFn::kMax:
      return asg.ordered.empty() ? Value::Null()
                                 : Value(*asg.ordered.rbegin());
  }
  return Value::Null();
}

void SaGroupBy::EmitAsgResult(const Asg& asg, Timestamp ts) {
  if (asg.policy.Empty()) return;  // nobody may read this subgroup
  if (output_emitter_.NeedsSp(asg.policy, ts)) {
    EmitSp(SynthesizeSp(asg.policy, output_emitter_.MonotoneTs(ts),
                        options_.output_stream_name, *ctx_->roles));
  }
  Tuple out;
  out.sid = options_.output_sid;
  out.tid = 0;
  out.ts = ts;
  out.values = {asg.key, CurrentAggregate(asg)};
  EmitTuple(std::move(out));
}

void SaGroupBy::Invalidate(Timestamp now) {
  const Timestamp cutoff = now - options_.window_size;
  while (!input_window_.empty() && input_window_.front().ts <= cutoff) {
    InputRec rec = std::move(input_window_.front());
    input_window_.pop_front();
    AsgPtr root = Find(rec.asg);
    RemoveFromAsg(root, rec.agg_value);  // expiry update (2nd change)
    if (options_.emit_on_expiry && root->count > 0) {
      EmitAsgResult(*root, now);
    }
    if (root->count <= 0) {
      auto git = groups_.find(root->key);
      if (git != groups_.end()) {
        auto& vec = git->second;
        vec.erase(std::remove_if(vec.begin(), vec.end(),
                                 [&](const AsgPtr& a) {
                                   return Find(a) == root || a == root;
                                 }),
                  vec.end());
        if (vec.empty()) groups_.erase(git);
      }
    }
  }
}

void SaGroupBy::Process(StreamElement elem, int) {
  ScopedTimer total(&metrics_.total_nanos);
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    ScopedTimer t(&metrics_.sp_maintenance_nanos);
    if (tracker_.OnSp(elem.sp())) ++metrics_.policy_installs;
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  const Tuple& t = elem.tuple();
  const size_t key_col = static_cast<size_t>(options_.key_col);
  const size_t agg_col = static_cast<size_t>(options_.agg_col);
  if (key_col >= t.values.size() ||
      (options_.agg_fn != AggFn::kCount && agg_col >= t.values.size())) {
    return;
  }

  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    Invalidate(t.ts);
  }

  PolicyPtr policy;
  {
    ScopedTimer tm(&metrics_.sp_maintenance_nanos);
    policy = tracker_.PolicyFor(t);
  }
  const Value key = t.values[key_col];
  const double agg_value =
      options_.agg_fn == AggFn::kCount ? 1.0 : t.values[agg_col].AsDouble();

  // Locate the ASG(s) of this key whose policies intersect the tuple's.
  auto& asgs = groups_[key];
  AsgPtr target;
  for (auto& asg_ref : asgs) {
    AsgPtr root = Find(asg_ref);
    if (root->count <= 0) continue;
    if (!root->policy.Intersects(policy->allowed())) continue;
    if (!target) {
      target = root;
    } else if (root != target) {
      // The tuple's policy bridges two subgroups: merge (their policies
      // stay pairwise non-intersecting by construction afterwards).
      target->count += root->count;
      target->sum += root->sum;
      target->ordered.insert(root->ordered.begin(), root->ordered.end());
      target->policy.UnionWith(root->policy);
      root->parent = target;
      root->ordered.clear();
    }
  }
  if (!target) {
    target = std::make_shared<Asg>();
    target->key = key;
    asgs.push_back(target);
  }
  target->policy.UnionWith(policy->allowed());
  AddToAsg(target, agg_value);  // arrival update (1st change)
  input_window_.push_back(InputRec{t.ts, agg_value, target});

  // Drop forwarding stubs so lookups stay short.
  asgs.erase(std::remove_if(asgs.begin(), asgs.end(),
                            [](const AsgPtr& a) {
                              return a->parent != nullptr;
                            }),
             asgs.end());

  EmitAsgResult(*target, t.ts);
  UpdateStateBytes();
}

void SaGroupBy::OnAllFinished() {
  // Final snapshot: report every live subgroup once more.
  for (auto& [key, asgs] : groups_) {
    (void)key;
    for (auto& asg : asgs) {
      AsgPtr root = Find(asg);
      if (root->count > 0 && asg == root) {
        EmitAsgResult(*root, kMaxTimestamp);
      }
    }
  }
}

size_t SaGroupBy::asg_count() const {
  size_t n = 0;
  for (const auto& [key, asgs] : groups_) {
    (void)key;
    for (const auto& asg : asgs) {
      if (!asg->parent && asg->count > 0) ++n;
    }
  }
  return n;
}

void SaGroupBy::UpdateStateBytes() {
  size_t bytes = sizeof(SaGroupBy) + tracker_.MemoryBytes();
  bytes += input_window_.size() * sizeof(InputRec);
  for (const auto& [key, asgs] : groups_) {
    bytes += key.MemoryBytes();
    for (const auto& asg : asgs) {
      bytes += sizeof(Asg) + asg->policy.MemoryBytes() +
               asg->ordered.size() * (sizeof(double) + 3 * sizeof(void*));
    }
  }
  metrics_.NoteStateBytes(static_cast<int64_t>(bytes));
}

}  // namespace spstream
