#include "exec/sa_groupby.h"

#include <algorithm>
#include <cstring>

#include "security/sp_codec.h"
#include "storage/state_codec.h"

namespace spstream {

namespace {

void PutF64(double d, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

Result<double> GetF64(std::string_view data, size_t* offset) {
  if (*offset + 8 > data.size()) {
    return Status::Internal("groupby delta: truncated double");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(
                static_cast<uint8_t>(data[*offset + static_cast<size_t>(i)]))
            << (8 * i);
  }
  *offset += 8;
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

SaGroupBy::SaGroupBy(ExecContext* ctx, SaGroupByOptions options,
                     std::string label)
    : Operator(ctx, std::move(label)),
      options_(std::move(options)),
      tracker_(ctx->roles, options_.stream_name) {
  output_schema_ = MakeSchema(
      options_.output_stream_name,
      {Field{"group_key", ValueType::kNull},
       Field{std::string(AggFnToString(options_.agg_fn)),
             ValueType::kDouble}});
}

SaGroupBy::AsgPtr SaGroupBy::Find(AsgPtr node) {
  while (node->parent) node = node->parent;
  return node;
}

void SaGroupBy::AddToAsg(const AsgPtr& asg, double v) {
  ++asg->count;
  asg->sum += v;
  if (options_.agg_fn == AggFn::kMin || options_.agg_fn == AggFn::kMax) {
    asg->ordered.insert(v);
  }
}

void SaGroupBy::RemoveFromAsg(const AsgPtr& asg, double v) {
  --asg->count;
  asg->sum -= v;
  if (options_.agg_fn == AggFn::kMin || options_.agg_fn == AggFn::kMax) {
    auto it = asg->ordered.find(v);
    if (it != asg->ordered.end()) asg->ordered.erase(it);
  }
}

Value SaGroupBy::CurrentAggregate(const Asg& asg) const {
  switch (options_.agg_fn) {
    case AggFn::kCount:
      return asg.count;
    case AggFn::kSum:
      return asg.sum;
    case AggFn::kAvg:
      return asg.count == 0 ? Value::Null() : Value(asg.sum / asg.count);
    case AggFn::kMin:
      return asg.ordered.empty() ? Value::Null() : Value(*asg.ordered.begin());
    case AggFn::kMax:
      return asg.ordered.empty() ? Value::Null()
                                 : Value(*asg.ordered.rbegin());
  }
  return Value::Null();
}

void SaGroupBy::EmitAsgResult(const Asg& asg, Timestamp ts) {
  if (asg.policy.Empty()) return;  // nobody may read this subgroup
  if (output_emitter_.NeedsSp(asg.policy, ts)) {
    EmitSp(SynthesizeSp(asg.policy, output_emitter_.MonotoneTs(ts),
                        options_.output_stream_name, *ctx_->roles));
  }
  Tuple out;
  out.sid = options_.output_sid;
  out.tid = 0;
  out.ts = ts;
  out.values = {asg.key, CurrentAggregate(asg)};
  EmitTuple(std::move(out));
}

void SaGroupBy::Invalidate(Timestamp now) {
  if (now > watermark_) watermark_ = now;
  const Timestamp cutoff = now - options_.window_size;
  while (!input_window_.empty() && input_window_.front().ts <= cutoff) {
    InputRec rec = std::move(input_window_.front());
    input_window_.pop_front();
    AsgPtr root = Find(rec.asg);
    dirty_keys_.insert(root->key);
    RemoveFromAsg(root, rec.agg_value);  // expiry update (2nd change)
    if (options_.emit_on_expiry && root->count > 0) {
      EmitAsgResult(*root, now);
    }
    if (root->count <= 0) {
      auto git = groups_.find(root->key);
      if (git != groups_.end()) {
        auto& vec = git->second;
        vec.erase(std::remove_if(vec.begin(), vec.end(),
                                 [&](const AsgPtr& a) {
                                   return Find(a) == root || a == root;
                                 }),
                  vec.end());
        if (vec.empty()) groups_.erase(git);
      }
    }
  }
}

void SaGroupBy::Process(StreamElement elem, int) {
  ScopedTimer total(&metrics_.total_nanos);
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    ScopedTimer t(&metrics_.sp_maintenance_nanos);
    if (tracker_.OnSp(elem.sp())) ++metrics_.policy_installs;
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  const Tuple& t = elem.tuple();
  const size_t key_col = static_cast<size_t>(options_.key_col);
  const size_t agg_col = static_cast<size_t>(options_.agg_col);
  if (key_col >= t.values.size() ||
      (options_.agg_fn != AggFn::kCount && agg_col >= t.values.size())) {
    return;
  }

  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    Invalidate(t.ts);
  }

  PolicyPtr policy;
  {
    ScopedTimer tm(&metrics_.sp_maintenance_nanos);
    policy = tracker_.PolicyFor(t);
  }
  const Value key = t.values[key_col];
  const double agg_value =
      options_.agg_fn == AggFn::kCount ? 1.0 : t.values[agg_col].AsDouble();

  // Locate the ASG(s) of this key whose policies intersect the tuple's.
  auto& asgs = groups_[key];
  AsgPtr target;
  for (auto& asg_ref : asgs) {
    AsgPtr root = Find(asg_ref);
    if (root->count <= 0) continue;
    if (!root->policy.Intersects(policy->allowed())) continue;
    if (!target) {
      target = root;
    } else if (root != target) {
      // The tuple's policy bridges two subgroups: merge (their policies
      // stay pairwise non-intersecting by construction afterwards).
      target->count += root->count;
      target->sum += root->sum;
      target->ordered.insert(root->ordered.begin(), root->ordered.end());
      target->policy.UnionWith(root->policy);
      root->parent = target;
      root->ordered.clear();
      merges_.emplace_back(root->id, target->id);
    }
  }
  if (!target) {
    target = std::make_shared<Asg>();
    target->key = key;
    target->id = next_asg_id_++;
    asgs.push_back(target);
  }
  dirty_keys_.insert(key);
  target->policy.UnionWith(policy->allowed());
  AddToAsg(target, agg_value);  // arrival update (1st change)
  input_window_.push_back(InputRec{t.ts, agg_value, target});
  ++total_appended_;

  // Drop forwarding stubs so lookups stay short.
  asgs.erase(std::remove_if(asgs.begin(), asgs.end(),
                            [](const AsgPtr& a) {
                              return a->parent != nullptr;
                            }),
             asgs.end());

  EmitAsgResult(*target, t.ts);
  UpdateStateBytes();
}

void SaGroupBy::OnAllFinished() {
  // Final snapshot: report every live subgroup once more.
  for (auto& [key, asgs] : groups_) {
    (void)key;
    for (auto& asg : asgs) {
      AsgPtr root = Find(asg);
      if (root->count > 0 && asg == root) {
        EmitAsgResult(*root, kMaxTimestamp);
      }
    }
  }
}

size_t SaGroupBy::asg_count() const {
  size_t n = 0;
  for (const auto& [key, asgs] : groups_) {
    (void)key;
    for (const auto& asg : asgs) {
      if (!asg->parent && asg->count > 0) ++n;
    }
  }
  return n;
}

// ---- durable state (docs/DURABILITY.md) ------------------------------------

void SaGroupBy::CheckpointState(std::string* out, bool full) {
  pending_tracker_ts_ = tracker_.current_ts();
  pending_emitter_ts_ = output_emitter_.last_ts();
  pending_appended_ = total_appended_;
  const uint64_t new_records = total_appended_ - ckpt_appended_;
  if (!full && dirty_keys_.empty() && merges_.empty() && new_records == 0 &&
      pending_tracker_ts_ == ckpt_tracker_ts_ &&
      pending_emitter_ts_ == ckpt_emitter_ts_) {
    return;
  }

  out->push_back(full ? 1 : 0);
  PutVarint(ZigZagEncode(pending_tracker_ts_), out);
  PutVarint(ZigZagEncode(pending_emitter_ts_), out);
  PutVarint(ZigZagEncode(watermark_), out);
  PutVarint(next_asg_id_, out);

  PutVarint(full ? 0 : merges_.size(), out);
  if (!full) {
    for (const auto& [from, to] : merges_) {
      PutVarint(from, out);
      PutVarint(to, out);
    }
  }

  // Dirty attribute groups (all groups on a full snapshot): the live roots
  // of each, snapshotted whole. A dirty key with no live root is a
  // tombstone (zero roots) — the restore erases the group.
  std::vector<const Value*> keys;
  if (full) {
    for (const auto& [key, asgs] : groups_) {
      (void)asgs;
      keys.push_back(&key);
    }
  } else {
    for (const Value& key : dirty_keys_) keys.push_back(&key);
  }
  PutVarint(keys.size(), out);
  for (const Value* key : keys) {
    storage::PutValue(*key, out);
    std::vector<const Asg*> roots;
    auto git = groups_.find(*key);
    if (git != groups_.end()) {
      for (const AsgPtr& asg : git->second) {
        if (!asg->parent && asg->count > 0) roots.push_back(asg.get());
      }
    }
    PutVarint(roots.size(), out);
    for (const Asg* asg : roots) {
      PutVarint(asg->id, out);
      storage::PutRoleSet(asg->policy, out);
      PutVarint(static_cast<uint64_t>(asg->count), out);
      PutF64(asg->sum, out);
      PutVarint(asg->ordered.size(), out);
      for (double v : asg->ordered) PutF64(v, out);
    }
  }

  // Window records appended since the cursor (everything on full). Records
  // that already expired again need no replay — the snapshots above are
  // authoritative for the aggregates.
  const uint64_t n = full ? input_window_.size()
                          : std::min<uint64_t>(new_records,
                                               input_window_.size());
  PutVarint(total_appended_, out);
  PutVarint(n, out);
  for (size_t i = input_window_.size() - static_cast<size_t>(n);
       i < input_window_.size(); ++i) {
    const InputRec& rec = input_window_[i];
    PutVarint(ZigZagEncode(rec.ts), out);
    PutF64(rec.agg_value, out);
    PutVarint(Find(rec.asg)->id, out);
  }
}

void SaGroupBy::OnCheckpointDurable() {
  dirty_keys_.clear();
  merges_.clear();
  ckpt_appended_ = pending_appended_;
  ckpt_tracker_ts_ = pending_tracker_ts_;
  ckpt_emitter_ts_ = pending_emitter_ts_;
}

Status SaGroupBy::RestoreState(std::string_view blob) {
  size_t offset = 0;
  if (offset >= blob.size()) {
    return Status::Internal("groupby delta: empty blob");
  }
  const bool full = blob[offset] != 0;
  ++offset;
  SP_ASSIGN_OR_RETURN(uint64_t tr_raw, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t em_raw, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t wm_raw, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t next_id, GetVarint(blob, &offset));

  if (full) {
    groups_.clear();
    input_window_.clear();
    restore_map_.clear();
  }

  tracker_.RestoreFailClosed(ZigZagDecode(tr_raw));
  output_emitter_.Restore(ZigZagDecode(em_raw));
  const Timestamp watermark = ZigZagDecode(wm_raw);
  if (watermark > watermark_) watermark_ = watermark;
  next_asg_id_ = std::max(next_asg_id_, next_id);

  // Merge log first: records restored from older deltas keep forwarding.
  SP_ASSIGN_OR_RETURN(uint64_t n_merges, GetVarint(blob, &offset));
  for (uint64_t i = 0; i < n_merges; ++i) {
    SP_ASSIGN_OR_RETURN(uint64_t from, GetVarint(blob, &offset));
    SP_ASSIGN_OR_RETURN(uint64_t to, GetVarint(blob, &offset));
    AsgPtr& to_asg = restore_map_[to];
    if (!to_asg) {
      to_asg = std::make_shared<Asg>();
      to_asg->id = to;
    }
    AsgPtr& from_asg = restore_map_[from];
    if (!from_asg) {
      from_asg = std::make_shared<Asg>();
      from_asg->id = from;
    }
    from_asg->parent = to_asg;
    from_asg->ordered.clear();
  }

  SP_ASSIGN_OR_RETURN(uint64_t n_groups, GetVarint(blob, &offset));
  for (uint64_t g = 0; g < n_groups; ++g) {
    SP_ASSIGN_OR_RETURN(Value key, storage::GetValue(blob, &offset));
    SP_ASSIGN_OR_RETURN(uint64_t n_asgs, GetVarint(blob, &offset));
    std::vector<AsgPtr> asgs;
    asgs.reserve(n_asgs);
    for (uint64_t a = 0; a < n_asgs; ++a) {
      SP_ASSIGN_OR_RETURN(uint64_t id, GetVarint(blob, &offset));
      SP_ASSIGN_OR_RETURN(RoleSet policy, storage::GetRoleSet(blob, &offset));
      SP_ASSIGN_OR_RETURN(uint64_t count, GetVarint(blob, &offset));
      SP_ASSIGN_OR_RETURN(double sum, GetF64(blob, &offset));
      SP_ASSIGN_OR_RETURN(uint64_t n_ordered, GetVarint(blob, &offset));
      AsgPtr& asg = restore_map_[id];
      if (!asg) {
        asg = std::make_shared<Asg>();
        asg->id = id;
      }
      asg->parent = nullptr;
      asg->policy = std::move(policy);
      asg->count = static_cast<int64_t>(count);
      asg->sum = sum;
      asg->ordered.clear();
      for (uint64_t i = 0; i < n_ordered; ++i) {
        SP_ASSIGN_OR_RETURN(double v, GetF64(blob, &offset));
        asg->ordered.insert(v);
      }
      asg->key = key;
      asgs.push_back(asg);
    }
    if (asgs.empty()) {
      groups_.erase(key);  // tombstone: the whole group expired
    } else {
      groups_[key] = std::move(asgs);
    }
  }

  SP_ASSIGN_OR_RETURN(uint64_t appended_total, GetVarint(blob, &offset));
  SP_ASSIGN_OR_RETURN(uint64_t n_records, GetVarint(blob, &offset));
  for (uint64_t i = 0; i < n_records; ++i) {
    SP_ASSIGN_OR_RETURN(uint64_t ts_raw, GetVarint(blob, &offset));
    SP_ASSIGN_OR_RETURN(double agg_value, GetF64(blob, &offset));
    SP_ASSIGN_OR_RETURN(uint64_t id, GetVarint(blob, &offset));
    auto it = restore_map_.find(id);
    if (it == restore_map_.end()) {
      return Status::Internal("groupby delta: window record references "
                              "unknown asg " + std::to_string(id));
    }
    input_window_.push_back(
        InputRec{ZigZagDecode(ts_raw), agg_value, it->second});
  }
  if (offset != blob.size()) {
    return Status::Internal("groupby delta: trailing bytes");
  }

  // Re-derive expiry WITHOUT touching aggregates: the snapshots already
  // reflect every pre-crash expiry; only the record bookkeeping must go.
  if (watermark_ > kMinTimestamp) {
    const Timestamp cutoff = watermark_ - options_.window_size;
    while (!input_window_.empty() && input_window_.front().ts <= cutoff) {
      input_window_.pop_front();
    }
  }

  total_appended_ = std::max(total_appended_, appended_total);
  ckpt_appended_ = pending_appended_ = total_appended_;
  ckpt_tracker_ts_ = pending_tracker_ts_ = tracker_.current_ts();
  ckpt_emitter_ts_ = pending_emitter_ts_ = output_emitter_.last_ts();
  dirty_keys_.clear();
  merges_.clear();
  return Status::OK();
}

void SaGroupBy::OnRestoreComplete() {
  restore_map_.clear();
  UpdateStateBytes();
}

void SaGroupBy::UpdateStateBytes() {
  size_t bytes = sizeof(SaGroupBy) + tracker_.MemoryBytes();
  bytes += input_window_.size() * sizeof(InputRec);
  for (const auto& [key, asgs] : groups_) {
    bytes += key.MemoryBytes();
    for (const auto& asg : asgs) {
      bytes += sizeof(Asg) + asg->policy.MemoryBytes() +
               asg->ordered.size() * (sizeof(double) + 3 * sizeof(void*));
    }
  }
  metrics_.NoteStateBytes(static_cast<int64_t>(bytes));
}

}  // namespace spstream
