#include "exec/sp_synth.h"

namespace spstream {

SecurityPunctuation SynthesizeSp(const RoleSet& roles, Timestamp ts,
                                 const std::string& stream_name,
                                 const RoleCatalog& catalog) {
  std::string role_text;
  roles.ForEach([&](RoleId id) {
    if (!role_text.empty()) role_text += "|";
    role_text += id < catalog.size() ? catalog.Name(id)
                                     : "#" + std::to_string(id);
  });
  Pattern role_pattern = role_text.empty()
                             ? Pattern::Literal("__nobody__")
                             : Pattern::Compile(role_text).value_or(
                                   Pattern::Literal(role_text));
  SecurityPunctuation sp(
      Pattern::Literal(stream_name), Pattern::Any(), Pattern::Any(),
      std::move(role_pattern), Sign::kPositive, /*immutable=*/false, ts);
  sp.SetResolvedRoles(roles);
  return sp;
}

bool OutputPolicyEmitter::NeedsSp(const RoleSet& policy_roles, Timestamp ts) {
  if (has_current_ && current_ == policy_roles) {
    return false;
  }
  has_current_ = true;
  current_ = policy_roles;
  // The watermark only moves forward: MonotoneTs() keeps the emitted sp
  // stream ts-ordered even when the proposed event time runs behind.
  if (ts > last_ts_) last_ts_ = ts;
  return true;
}

}  // namespace spstream
