// Vectorized predicate evaluation over columnar ElementBatches: an Expr
// tree of column refs, literals, comparisons and boolean connectives is
// compiled once into a flat node program, then tested per row straight
// against the column arrays — no Tuple, no per-row Value construction.
//
// The program reproduces the scalar semantics bit for bit: Value::Compare's
// total order (nulls first, cross-kind ordered null < numeric < string <
// bool, numerics promoted to double unless both int64) and EvalBool's
// truthiness (bool -> itself, null -> false, otherwise AsDouble() != 0,
// which makes any string falsy). tests/columnar_fuzz_test.cc holds the two
// paths equal on random inputs.
#pragma once

#include <string_view>
#include <vector>

#include "exec/expr.h"
#include "stream/element_batch.h"

namespace spstream {

/// \brief A compiled columnar predicate.
class VectorPredicate : public ColumnarPredicateBuilder {
 public:
  /// \brief Compile `root`; false when the tree contains a node with no
  /// vectorized form — the caller keeps the scalar path. No side effects
  /// on failure beyond discarding the partial program.
  bool Compile(const Expr& root);

  /// \brief EvalBool of the compiled tree against original row `row` of a
  /// columnar `batch`.
  bool Test(const ElementBatch& batch, uint32_t row) const;

  // ColumnarPredicateBuilder:
  int AddColumn(int index) override;
  int AddLiteral(const Value& v) override;
  int AddCompare(Expr::CmpOp op, int lhs, int rhs) override;
  int AddLogical(Expr::LogicalOp op, int lhs, int rhs) override;

 private:
  struct Node {
    enum class Op : uint8_t { kColumn, kLiteral, kCompare, kAnd, kOr, kNot };
    Op op = Op::kLiteral;
    int a = -1;
    int b = -1;
    int col = -1;
    Value lit;
    Expr::CmpOp cmp = Expr::CmpOp::kEq;
  };

  /// \brief Per-row scalar view of a node result, mirroring the fields
  /// Value::Compare dispatches on.
  struct View {
    int rank = 0;  // 0 null, 1 numeric, 2 string, 3 bool (Value's KindRank)
    bool is_int = false;
    int64_t i = 0;
    double d = 0.0;
    std::string_view s;
    bool b = false;
  };

  View ViewOf(int id, const ElementBatch& batch, uint32_t row) const;
  bool TestNode(int id, const ElementBatch& batch, uint32_t row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace spstream
