// Bounded out-of-order repair. The paper assumes in-order sp arrival and
// points at window-semantics work ([8], [9]) for the out-of-order case;
// this operator implements that repair: elements are buffered and released
// in timestamp order once the watermark (max ts seen minus an allowed
// `slack`) passes them. Ties release sps before tuples so the
// sp-precedes-its-tuples invariant is restored, with arrival order
// preserved within each class.
#pragma once

#include <queue>

#include "exec/operator.h"

namespace spstream {

struct ReorderOptions {
  /// How far (in timestamp units) an element may arrive late. Elements
  /// later than this are dropped (counted, never reordered past the
  /// watermark — downstream monotonicity is guaranteed).
  Timestamp slack = 100;
};

class ReorderOp : public Operator {
 public:
  ReorderOp(ExecContext* ctx, ReorderOptions options,
            std::string label = "reorder")
      : Operator(ctx, std::move(label)), options_(options) {}

  int64_t late_drops() const { return late_drops_; }

 protected:
  void Process(StreamElement elem, int) override;
  void OnAllFinished() override;

 private:
  struct Entry {
    Timestamp ts;
    bool is_tuple;   // sps sort before tuples at equal ts
    uint64_t seq;    // arrival order within the same (ts, class)
    StreamElement element;

    bool operator>(const Entry& other) const {
      if (ts != other.ts) return ts > other.ts;
      if (is_tuple != other.is_tuple) return is_tuple && !other.is_tuple;
      return seq > other.seq;
    }
  };

  void Release(Timestamp watermark);

  ReorderOptions options_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  Timestamp max_ts_ = kMinTimestamp;
  Timestamp released_ts_ = kMinTimestamp;
  uint64_t seq_ = 0;
  int64_t late_drops_ = 0;
};

}  // namespace spstream
