// Security-aware group-by with incremental aggregates (Table I).
//
// Each attribute group (AG — one group per key value) is partitioned into
// attribute subgroups (ASGs) whose policies are pairwise non-intersecting.
// A new tuple joins the ASG(s) its policy intersects — merging them when it
// bridges several — or founds a new ASG. One aggregate result is maintained
// per ASG and emitted preceded by the subgroup's policy, replacing the
// previously reported answer for that subgroup.
//
// Aggregates update twice per tuple: once on arrival, once on expiry from
// the sliding window (the 2C(λ1+λsp1) of the §VI.A cost model).
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>

#include "exec/operator.h"
#include "exec/policy_tracker.h"
#include "exec/sp_synth.h"

namespace spstream {

/// \brief Supported incremental aggregate functions.
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnToString(AggFn fn);

struct SaGroupByOptions {
  int key_col = 0;             ///< grouping attribute A
  int agg_col = 0;             ///< aggregated attribute (ignored for COUNT)
  AggFn agg_fn = AggFn::kCount;
  Timestamp window_size = 1000;
  std::string stream_name;
  std::string output_stream_name = "groupby_out";
  StreamId output_sid = 0;
  /// Emit a refreshed result when expiry changes an aggregate (in addition
  /// to the always-on emission on arrival).
  bool emit_on_expiry = false;
};

class SaGroupBy : public Operator {
 public:
  SaGroupBy(ExecContext* ctx, SaGroupByOptions options,
            std::string label = "groupby");

  /// \brief Number of (group, subgroup) aggregates currently alive.
  size_t asg_count() const;

 protected:
  void Process(StreamElement elem, int) override;
  void OnAllFinished() override;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  /// One attribute subgroup. Merging (when a policy bridges subgroups) is
  /// union-find style: a merged-away node forwards to its parent.
  struct Asg {
    std::shared_ptr<Asg> parent;  // non-null once merged away
    RoleSet policy;
    int64_t count = 0;
    double sum = 0;
    std::multiset<double> ordered;  // for MIN/MAX under expiry
    Value key;
  };
  using AsgPtr = std::shared_ptr<Asg>;

  struct InputRec {
    Timestamp ts;
    double agg_value;
    AsgPtr asg;
  };

  static AsgPtr Find(AsgPtr node);
  void AddToAsg(const AsgPtr& asg, double v);
  void RemoveFromAsg(const AsgPtr& asg, double v);
  Value CurrentAggregate(const Asg& asg) const;
  void EmitAsgResult(const Asg& asg, Timestamp ts);
  void Invalidate(Timestamp now);
  void UpdateStateBytes();

  SaGroupByOptions options_;
  PolicyTracker tracker_;
  std::deque<InputRec> input_window_;
  std::unordered_map<Value, std::vector<AsgPtr>, ValueHash> groups_;
  OutputPolicyEmitter output_emitter_;
  SchemaPtr output_schema_;
};

}  // namespace spstream
