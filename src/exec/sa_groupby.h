// Security-aware group-by with incremental aggregates (Table I).
//
// Each attribute group (AG — one group per key value) is partitioned into
// attribute subgroups (ASGs) whose policies are pairwise non-intersecting.
// A new tuple joins the ASG(s) its policy intersects — merging them when it
// bridges several — or founds a new ASG. One aggregate result is maintained
// per ASG and emitted preceded by the subgroup's policy, replacing the
// previously reported answer for that subgroup.
//
// Aggregates update twice per tuple: once on arrival, once on expiry from
// the sliding window (the 2C(λ1+λsp1) of the §VI.A cost model).
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/operator.h"
#include "exec/policy_tracker.h"
#include "exec/sp_synth.h"

namespace spstream {

/// \brief Supported incremental aggregate functions.
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnToString(AggFn fn);

struct SaGroupByOptions {
  int key_col = 0;             ///< grouping attribute A
  int agg_col = 0;             ///< aggregated attribute (ignored for COUNT)
  AggFn agg_fn = AggFn::kCount;
  Timestamp window_size = 1000;
  std::string stream_name;
  std::string output_stream_name = "groupby_out";
  StreamId output_sid = 0;
  /// Emit a refreshed result when expiry changes an aggregate (in addition
  /// to the always-on emission on arrival).
  bool emit_on_expiry = false;
};

class SaGroupBy : public Operator {
 public:
  SaGroupBy(ExecContext* ctx, SaGroupByOptions options,
            std::string label = "groupby");

  /// \brief Number of (group, subgroup) aggregates currently alive.
  size_t asg_count() const;

  // Durable state: dirty attribute groups are snapshotted (ASG snapshots
  // are authoritative for aggregates — restore never replays arithmetic),
  // window records since the cursor carry future-expiry bookkeeping, and a
  // merge log keeps records from older deltas pointing at the right root.
  bool HasDurableState() const override { return true; }
  void CheckpointState(std::string* out, bool full) override;
  void OnCheckpointDurable() override;
  Status RestoreState(std::string_view blob) override;
  void OnRestoreComplete() override;

 protected:
  void Process(StreamElement elem, int) override;
  void OnAllFinished() override;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  /// One attribute subgroup. Merging (when a policy bridges subgroups) is
  /// union-find style: a merged-away node forwards to its parent.
  struct Asg {
    std::shared_ptr<Asg> parent;  // non-null once merged away
    RoleSet policy;
    int64_t count = 0;
    double sum = 0;
    std::multiset<double> ordered;  // for MIN/MAX under expiry
    Value key;
    uint64_t id = 0;  // stable checkpoint identity (never reused)
  };
  using AsgPtr = std::shared_ptr<Asg>;

  struct InputRec {
    Timestamp ts;
    double agg_value;
    AsgPtr asg;
  };

  static AsgPtr Find(AsgPtr node);
  void AddToAsg(const AsgPtr& asg, double v);
  void RemoveFromAsg(const AsgPtr& asg, double v);
  Value CurrentAggregate(const Asg& asg) const;
  void EmitAsgResult(const Asg& asg, Timestamp ts);
  void Invalidate(Timestamp now);
  void UpdateStateBytes();

  SaGroupByOptions options_;
  PolicyTracker tracker_;
  std::deque<InputRec> input_window_;
  std::unordered_map<Value, std::vector<AsgPtr>, ValueHash> groups_;
  OutputPolicyEmitter output_emitter_;
  SchemaPtr output_schema_;

  // ---- checkpoint bookkeeping (docs/DURABILITY.md) ----
  uint64_t next_asg_id_ = 1;
  uint64_t total_appended_ = 0;   // window records ever pushed
  Timestamp watermark_ = kMinTimestamp;  // highest Invalidate(now) seen
  std::unordered_set<Value, ValueHash> dirty_keys_;
  std::vector<std::pair<uint64_t, uint64_t>> merges_;  // (from, to) asg ids
  uint64_t ckpt_appended_ = 0;
  uint64_t pending_appended_ = 0;
  Timestamp ckpt_tracker_ts_ = kMinTimestamp;
  Timestamp ckpt_emitter_ts_ = kMinTimestamp;
  Timestamp pending_tracker_ts_ = kMinTimestamp;
  Timestamp pending_emitter_ts_ = kMinTimestamp;
  // Live only while a restore chain is applied: asg id -> restored object,
  // updated in place when a later delta re-snapshots the id so that window
  // records restored earlier keep pointing at the right aggregate.
  std::unordered_map<uint64_t, AsgPtr> restore_map_;
};

}  // namespace spstream
