#include "exec/ss_operator.h"

#include <algorithm>

#include "common/audit_log.h"
#include "common/trace.h"
#include "security/sp_codec.h"

namespace {
/// Deterministic trace id of the sp-batch, or 0 while tracing is off (audit
/// events carry 0 then, per the AuditEvent contract).
spstream::TraceId SpTraceIdIfOn(spstream::Timestamp ts) {
  return SP_TRACE_ENABLED() ? spstream::SpBatchTraceId(ts) : 0;
}
}  // namespace

namespace spstream {

SsState::SsState(const SsOptions& options)
    : predicates_(options.predicates), use_index_(options.use_predicate_index) {
  for (const RoleSet& p : predicates_) union_.UnionWith(p);
  if (use_index_) {
    RoleId max_role = 0;
    bool any = false;
    union_.ForEach([&](RoleId id) {
      max_role = id;
      any = true;
    });
    postings_.resize(any ? max_role + 1 : 0);
    for (uint32_t i = 0; i < predicates_.size(); ++i) {
      predicates_[i].ForEach(
          [&](RoleId id) { postings_[id].push_back(i); });
    }
  }
}

bool SsState::Matches(const Policy& policy) const {
  if (use_index_) {
    // One word-parallel intersection against the precomputed union — the
    // predicate-index fast path (vs the paper's per-sp full state scan).
    return policy.Authorizes(union_);
  }
  for (const RoleSet& p : predicates_) {
    if (policy.Authorizes(p)) return true;
  }
  return false;
}

std::vector<size_t> SsState::MatchingPredicates(const Policy& policy) const {
  std::vector<size_t> out;
  if (use_index_ && !postings_.empty()) {
    std::vector<bool> seen(predicates_.size(), false);
    policy.allowed().ForEach([&](RoleId id) {
      if (id < postings_.size()) {
        for (uint32_t pred : postings_[id]) {
          if (!seen[pred]) {
            seen[pred] = true;
            out.push_back(pred);
          }
        }
      }
    });
    std::sort(out.begin(), out.end());
    return out;
  }
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (policy.Authorizes(predicates_[i])) out.push_back(i);
  }
  return out;
}

size_t SsState::MemoryBytes() const {
  size_t bytes = sizeof(SsState) + union_.MemoryBytes();
  for (const RoleSet& p : predicates_) bytes += p.MemoryBytes();
  for (const auto& list : postings_) {
    bytes += sizeof(list) + list.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

SsOperator::SsOperator(ExecContext* ctx, SsOptions options, std::string label)
    : Operator(ctx, std::move(label)),
      options_(std::move(options)),
      state_(options_),
      tracker_(ctx->roles, options_.stream_name) {
  UpdateStateBytes();
}

void SsOperator::UpdateStateBytes() {
  metrics_.NoteStateBytes(static_cast<int64_t>(
      state_.MemoryBytes() + tracker_.MemoryBytes() +
      pending_sps_.capacity() * sizeof(SecurityPunctuation)));
}

bool SsOperator::ApplyAttributeMask(Tuple* t) {
  const Schema& schema = *options_.schema;
  bool any_visible = false;
  // EffectiveRolesForAttribute folds whole-tuple sps in (their attribute
  // pattern matches every column), so it is the complete per-attribute
  // answer: grants extend it, attribute-level denials subtract from it.
  for (size_t i = 0; i < schema.num_fields() && i < t->values.size(); ++i) {
    const RoleSet attr_roles =
        tracker_.EffectiveRolesForAttribute(*t, schema.field(i).name);
    if (attr_roles.Intersects(state_.predicate_union())) {
      any_visible = true;
    } else {
      t->values[i] = Value::Null();
    }
  }
  return any_visible;
}

void SsOperator::Process(StreamElement elem, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  ProcessElement(elem);
}

void SsOperator::ProcessBatch(ElementBatch& batch, int) {
  // One timer and one dispatch per batch; per-tuple work between sps is the
  // memoized boolean in HandleTuple.
  ScopedTimer timer(&metrics_.total_nanos);
  for (StreamElement& e : batch.elements()) {
    ProcessElement(e);
  }
}

bool SsOperator::ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                                 int) {
  ScopedTimer timer(&metrics_.total_nanos);
  std::vector<ElementBatch::Special> kept;
  std::vector<uint32_t> sel;
  sel.reserve(batch.num_live_rows());
  std::vector<ElementBatch::Special>& specials = batch.specials();
  size_t si = 0;
  auto flush_pending = [&](uint32_t before_row) {
    pending_emitted_ = true;
    for (SecurityPunctuation& sp : pending_sps_) {
      ++metrics_.sps_out;
      kept.push_back(
          ElementBatch::Special{before_row, StreamElement(std::move(sp))});
    }
    pending_sps_.clear();
  };
  auto handle_special = [&](ElementBatch::Special& s) {
    if (s.elem.is_sp()) {
      HandleSp(s.elem);  // consumes: the sp moves into pending_sps_
    } else {
      kept.push_back(std::move(s));  // control passes through in place
    }
  };
  const size_t live = batch.num_live_rows();
  for (size_t k = 0; k < live; ++k) {
    const uint32_t r = batch.live_row(k);
    while (si < specials.size() && specials[si].before_row <= r) {
      handle_special(specials[si]);
      ++si;
    }
    ++metrics_.tuples_in;
    if (memo_valid_) {
      // Memo hit (§III.B): no materialization at all — the whole run
      // between sps shares this boolean. Denials still count and audit
      // identically to the slow path.
      if (!memo_authorized_) {
        ++metrics_.tuples_dropped_security;
        if (audit() != nullptr) {
          AuditDenial(batch.MaterializeTuple(r), *memo_policy_);
        }
        continue;
      }
      if (!pending_emitted_) flush_pending(r);
      ++metrics_.tuples_out;
      sel.push_back(r);
      continue;
    }
    // Slow path: materialize this row, decide exactly as the per-element
    // path would, and write any masking nulls back into the validity
    // bitmap (masking only ever nulls values, so SetNull covers it).
    Tuple t = batch.MaterializeTuple(r);
    const bool authorized = DecideTupleSlowPath(t);
    if (!authorized) continue;
    if (options_.mask_attributes) {
      std::vector<ColumnVector>& cols = batch.mutable_columns();
      for (size_t i = 0; i < t.values.size() && i < cols.size(); ++i) {
        if (t.values[i].is_null()) cols[i].SetNull(r);
      }
    }
    if (!pending_emitted_) flush_pending(r);
    ++metrics_.tuples_out;
    sel.push_back(r);
  }
  for (; si < specials.size(); ++si) {
    handle_special(specials[si]);
  }
  batch.ReplaceSpecials(std::move(kept));
  batch.SetSelection(std::move(sel));
  *out = std::move(batch);
  return true;
}

void SsOperator::ProcessElement(StreamElement& elem) {
  if (elem.is_sp()) {
    HandleSp(elem);
  } else if (elem.is_tuple()) {
    HandleTuple(elem);
  } else {
    Emit(std::move(elem));  // flush/control passes through
  }
}

void SsOperator::HandleSp(StreamElement& elem) {
  ++metrics_.sps_in;
  // The arriving sp opens (or extends) a tracker batch: the policy for the
  // next tuple run must be re-derived, whatever this sp turns out to mean.
  memo_valid_ = false;
  const Timestamp sp_ts = elem.sp().ts();
  AuditLog* log = audit();
  if (!tracker_.OnSp(elem.sp())) {
    if (log) {
      AuditEvent e;
      e.kind = AuditEventKind::kPolicyExpire;
      e.scope = query_tag();
      e.stream = options_.stream_name;
      e.sp_ts = sp_ts;
      e.detail = "stale sp dropped (policy in force is newer)";
      e.trace_id = SpTraceIdIfOn(sp_ts);
      log->Append(std::move(e));
    }
    return;  // stale, dropped
  }
  ++metrics_.policy_installs;
  if (!pending_ts_ || *pending_ts_ != sp_ts) {
    // A new sp-batch begins; the previous unsent batch covered a segment
    // with no authorized tuples and is discarded with them.
    if (log && pending_ts_) {
      AuditEvent e;
      e.kind = AuditEventKind::kPolicyExpire;
      e.scope = query_tag();
      e.stream = options_.stream_name;
      e.sp_ts = *pending_ts_;
      e.detail = "policy overridden by newer sp-batch ts=" +
                 std::to_string(sp_ts);
      log->Append(std::move(e));
    }
    pending_sps_.clear();
    pending_ts_ = sp_ts;
    pending_emitted_ = false;
  }
  if (log) {
    const SecurityPunctuation& sp = elem.sp();
    AuditEvent e;
    e.kind = AuditEventKind::kPolicyInstall;
    e.scope = query_tag();
    e.stream = options_.stream_name;
    e.sp_ts = sp_ts;
    e.roles = sp.roles().ToString(*ctx_->roles);
    e.detail = std::string(sp.sign() == Sign::kPositive ? "+" : "-") +
               (sp.immutable() ? " immutable" : "");
    e.trace_id = SpTraceIdIfOn(sp_ts);
    log->Append(std::move(e));
  }
  // Sp-batch lifecycle: the install at this shield (one mark per shard
  // clone — the recording thread tells the shards apart) is always visible
  // to the flight recorder, even with tracing off. arg2 counts installs at
  // this shield so convergence across shards is comparable.
  Tracer::Global().FlightMark(TraceCat::kPolicy, "policy.install",
                              SpBatchTraceId(sp_ts), sp_ts,
                              metrics_.policy_installs);
  if (Tracer::Global().SampleSpBatch(sp_ts)) first_enforce_ts_ = sp_ts;
  pending_sps_.push_back(std::move(elem.sp()));
  UpdateStateBytes();
}

void SsOperator::AuditDenial(const Tuple& t, const Policy& policy) {
  if (AuditLog* log = audit()) {
    // The record answers "who was denied what, under which policy": the
    // query (scope + its role predicate), the tuple, and the responsible
    // sp-batch (its ts is the sp id) with the roles it authorizes.
    AuditEvent e;
    e.kind = AuditEventKind::kDenial;
    e.scope = query_tag();
    e.stream = options_.stream_name;
    e.tuple_id = t.tid;
    e.sp_ts = policy.ts();
    e.roles = state_.predicate_union().ToString(*ctx_->roles);
    e.detail = "policy allows " + policy.allowed().ToString(*ctx_->roles);
    e.trace_id = SpTraceIdIfOn(policy.ts());
    log->Append(std::move(e));
  }
}

void SsOperator::HandleTuple(StreamElement& elem) {
  ++metrics_.tuples_in;
  Tuple& t = elem.tuple();

  if (memo_valid_) {
    // Memo hit: the policy has been constant since the last sp, so this
    // tuple's decision equals the previous one's. Denials still count and
    // audit identically to the slow path; the fail-closed re-check is
    // unnecessary here because the install counter can only move inside a
    // batch finalization, which the slow path (or HandleSp) always sees
    // first.
    if (!memo_authorized_) {
      ++metrics_.tuples_dropped_security;
      AuditDenial(t, *memo_policy_);
      return;
    }
    if (!pending_emitted_) {
      pending_emitted_ = true;
      for (SecurityPunctuation& sp : pending_sps_) {
        EmitSp(std::move(sp));
      }
      pending_sps_.clear();
    }
    EmitTuple(std::move(t));
    return;
  }

  if (!DecideTupleSlowPath(t)) return;
  if (!pending_emitted_) {
    pending_emitted_ = true;
    for (SecurityPunctuation& sp : pending_sps_) {
      EmitSp(std::move(sp));
    }
    pending_sps_.clear();
  }
  EmitTuple(std::move(t));
}

bool SsOperator::DecideTupleSlowPath(Tuple& t) {
  // PolicyFor finalizes any open sp-batch (and thereby decides whether the
  // batch carries attribute-granularity policies).
  const PolicyPtr policy = tracker_.PolicyFor(t);
  if (tracker_.fail_closed_installs() != seen_fail_closed_installs_) {
    // The batch never took effect: the stream is denied-all until a fresh
    // batch installs cleanly. The held sps must not propagate downstream —
    // they would advertise a policy that is not in force.
    metrics_.policy_install_failures +=
        tracker_.fail_closed_installs() - seen_fail_closed_installs_;
    seen_fail_closed_installs_ = tracker_.fail_closed_installs();
    pending_sps_.clear();
    pending_emitted_ = true;
    if (AuditLog* log = audit()) {
      AuditEvent e;
      e.kind = AuditEventKind::kPolicyExpire;
      e.scope = query_tag();
      e.stream = options_.stream_name;
      e.sp_ts = policy->ts();
      e.detail =
          "fail-closed: sp-batch install faulted; stream denies all until "
          "a fresh sp-batch installs";
      log->Append(std::move(e));
    }
  }
  const bool masking =
      options_.mask_attributes && tracker_.has_attribute_policies();
  bool authorized;
  if (masking) {
    authorized = ApplyAttributeMask(&t);
  } else {
    authorized = state_.Matches(*policy);
  }
  // Memoize the decision for the rest of the run: sound only while the
  // tracker's policy is tuple-independent and masking has nothing to
  // rewrite per tuple. Any sp arrival invalidates (HandleSp).
  memo_valid_ = !masking && tracker_.PolicyUniformAcrossTuples();
  memo_authorized_ = authorized;
  memo_policy_ = policy;

  if (first_enforce_ts_ >= 0) {
    // Final milestone of the sp-batch lifecycle trace: the first tuple
    // decided under the batch (arg2: 1 = passed, 0 = denied).
    Tracer::Global().Instant(TraceCat::kPolicy, "ss.first_enforce",
                             SpBatchTraceId(first_enforce_ts_),
                             first_enforce_ts_, authorized ? 1 : 0);
    first_enforce_ts_ = -1;
  }

  if (!authorized) {
    ++metrics_.tuples_dropped_security;
    AuditDenial(t, *policy);
    return false;
  }
  return true;
}

// ---- durable state (docs/DURABILITY.md) ------------------------------------

void SsOperator::CheckpointState(std::string* out, bool full) {
  const Timestamp ts = tracker_.current_ts();
  pending_ckpt_ts_ = ts;
  if (!full && ts == ckpt_ts_) return;  // nothing changed: elide the entry
  PutVarint(ZigZagEncode(ts), out);
}

void SsOperator::OnCheckpointDurable() { ckpt_ts_ = pending_ckpt_ts_; }

Status SsOperator::RestoreState(std::string_view blob) {
  size_t offset = 0;
  SP_ASSIGN_OR_RETURN(uint64_t raw, GetVarint(blob, &offset));
  tracker_.RestoreFailClosed(ZigZagDecode(raw));
  pending_sps_.clear();
  pending_emitted_ = true;
  pending_ts_.reset();
  memo_valid_ = false;
  memo_policy_.reset();
  first_enforce_ts_ = -1;
  seen_fail_closed_installs_ = tracker_.fail_closed_installs();
  ckpt_ts_ = pending_ckpt_ts_ = tracker_.current_ts();
  UpdateStateBytes();
  return Status::OK();
}

}  // namespace spstream
