// Compiles logical plans into physical operator pipelines, and builds the
// three access-control placement strategies of §IV.A (pre-, post- and
// intermediate filtering) for comparison.
#pragma once

#include <unordered_map>

#include "common/status.h"
#include "exec/operator.h"
#include "exec/sajoin.h"
#include "query/logical_plan.h"

namespace spstream {

/// \brief Physical compilation knobs.
struct PhysicalPlanOptions {
  enum class JoinImpl { kNestedLoop, kIndex };
  JoinImpl join_impl = JoinImpl::kIndex;
  SaJoinOptions::ProbeMethod probe_method =
      SaJoinOptions::ProbeMethod::kProbeAndFilter;
  bool use_skipping_rule = true;
  bool ss_use_predicate_index = true;
  bool ss_mask_attributes = false;
};

/// \brief Result of compiling one plan: sources to feed and the sink that
/// collects results. All operators are owned by the pipeline.
struct PhysicalPlan {
  std::vector<SourceOperator*> sources;  // one per source leaf, plan order
  CollectorSink* sink = nullptr;
  Operator* root = nullptr;              // operator feeding the sink
  SchemaPtr output_schema;               // schema of the sink's tuples
  std::string output_stream_name;        // logical name of the output
  /// Logical node -> top physical operator of its compiled subtree
  /// (EXPLAIN ANALYZE annotation source). Keys point into the plan tree
  /// passed to the builder.
  std::unordered_map<const LogicalNode*, Operator*> node_ops;
};

/// \brief Compile `plan` into `pipeline`. `inputs[stream]` supplies the
/// element sequence for each source leaf (one SourceOperator per leaf; a
/// stream read by two leaves gets two sources over a copy).
Result<PhysicalPlan> BuildPhysicalPlan(
    Pipeline* pipeline, const LogicalNodePtr& plan,
    const std::unordered_map<std::string, std::vector<StreamElement>>& inputs,
    const PhysicalPlanOptions& options = {});

/// \brief Result of compiling a *continuous* plan: externally-fed sources
/// keyed by stream name (one entry per source leaf).
struct StreamingPhysicalPlan {
  std::vector<std::pair<std::string, PushSource*>> sources;
  CollectorSink* sink = nullptr;
  Operator* root = nullptr;
  SchemaPtr output_schema;
  std::string output_stream_name;
  /// Logical node -> top physical operator of its compiled subtree.
  std::unordered_map<const LogicalNode*, Operator*> node_ops;
};

/// \brief Compile `plan` with PushSource leaves for long-lived execution:
/// the caller feeds admitted elements incrementally and operator state
/// (policies in force, windows, aggregates) persists between feeds.
Result<StreamingPhysicalPlan> BuildStreamingPhysicalPlan(
    Pipeline* pipeline, const LogicalNodePtr& plan,
    const PhysicalPlanOptions& options = {});

/// \brief §IV.A placement strategies for access-control filtering.
enum class SsPlacement {
  kPreFilter,     ///< SS at each source, sps then stripped; plain plan after
  kPostFilter,    ///< plain plan; SS once, at the very end
  kIntermediate,  ///< SS above each source (plan-embedded, optimizer-movable)
};

/// \brief Wrap a (shield-free) logical plan with the chosen placement of the
/// query's access-control predicate.
LogicalNodePtr ApplySsPlacement(const LogicalNodePtr& plan,
                                const RoleSet& query_roles,
                                SsPlacement placement);

}  // namespace spstream
