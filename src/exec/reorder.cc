#include "exec/reorder.h"

namespace spstream {

void ReorderOp::Process(StreamElement elem, int) {
  if (elem.is_control()) {
    Emit(std::move(elem));
    return;
  }
  const Timestamp ts = elem.ts();
  if (elem.is_tuple()) {
    ++metrics_.tuples_in;
  } else {
    ++metrics_.sps_in;
  }
  if (ts < released_ts_) {
    // Arrived beyond the slack: releasing it now would break downstream
    // monotonicity. Count and drop (denial-by-default keeps this safe: a
    // dropped late sp can only deny, never leak).
    ++late_drops_;
    return;
  }
  heap_.push(Entry{ts, elem.is_tuple(), seq_++, std::move(elem)});
  if (ts > max_ts_) max_ts_ = ts;
  Release(max_ts_ - options_.slack);
  metrics_.NoteStateBytes(
      static_cast<int64_t>(heap_.size() * sizeof(Entry)));
}

void ReorderOp::Release(Timestamp watermark) {
  while (!heap_.empty() && heap_.top().ts <= watermark) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    released_ts_ = e.ts;
    if (e.element.is_tuple()) {
      EmitTuple(std::move(e.element.tuple()));
    } else {
      EmitSp(std::move(e.element.sp()));
    }
  }
}

void ReorderOp::OnAllFinished() { Release(kMaxTimestamp); }

}  // namespace spstream
