// Security-aware projection π (Table I): discards unwanted attributes
// on-the-fly, propagates sps — and discards an sp when its policy only
// covered attributes the projection dropped.
#pragma once

#include "exec/operator.h"

namespace spstream {

/// \brief Projection onto a subset of the input attributes.
class SaProject : public Operator {
 public:
  /// \param keep_columns input column indexes to retain, in output order.
  /// \param input_schema schema of the input (attribute names drive the
  ///        sp-relevance check).
  SaProject(ExecContext* ctx, std::vector<int> keep_columns,
            SchemaPtr input_schema, std::string label = "project");

  const std::vector<int>& keep_columns() const { return keep_columns_; }

  /// \brief Schema of the projected output.
  const SchemaPtr& output_schema() const { return output_schema_; }

 protected:
  void Process(StreamElement elem, int) override;
  /// Batch kernel: one timer and dispatch per batch, tight column loop.
  void ProcessBatch(ElementBatch& batch, int) override;
  /// Columnar kernel: move whole column arrays into the output order — no
  /// per-row work at all. Out-of-range keep columns become null columns
  /// (the per-element path's Value::Null() behaviour).
  bool ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                       int port) override;

 private:
  void ProcessElement(StreamElement& elem);

  /// True when the sp's attribute pattern matches none of the retained
  /// attributes (the sp governed only projected-away columns).
  bool SpIrrelevantAfterProjection(const SecurityPunctuation& sp) const;

  std::vector<int> keep_columns_;
  SchemaPtr input_schema_;
  SchemaPtr output_schema_;
};

}  // namespace spstream
