// Security-aware sliding-window equijoin (§V.B).
//
// Both physical variants share window/policy bookkeeping here:
//  1. Policy Collection — arriving sps install the upcoming segment policy.
//  2. Invalidation — a new tuple expires old tuples from the *opposite*
//     window head; a fully-drained segment's sps purge with it.
//  3. Join — the new tuple probes the opposite window; result policies are
//     the intersection of the base tuples' policies, and empty intersections
//     discard the result (incompatible policies).
//
// The nested-loop variant scans the opposite window (probe-and-filter or
// filter-and-probe order); the index variant probes the SPIndex to touch
// only policy-compatible segments, with the Lemma 5.1 skipping rule.
#pragma once

#include "exec/operator.h"
#include "exec/policy_tracker.h"
#include "exec/sp_synth.h"
#include "exec/window.h"

namespace spstream {

/// \brief Configuration shared by both SAJoin variants.
struct SaJoinOptions {
  Timestamp window_size = 1000;  ///< time-based window extent (both sides)
  /// Per-side overrides (CQL gives each stream its own [RANGE n]); <= 0
  /// falls back to window_size.
  Timestamp left_window_size = 0;
  Timestamp right_window_size = 0;
  int left_key_col = 0;          ///< equijoin column on port 0
  int right_key_col = 0;         ///< equijoin column on port 1
  std::string left_stream_name;
  std::string right_stream_name;
  std::string output_stream_name = "join_out";
  StreamId output_sid = 0;

  /// Nested-loop probe order (§V.B.1): probe-and-filter checks the join
  /// value first, filter-and-probe checks policy compatibility first.
  enum class ProbeMethod { kProbeAndFilter, kFilterAndProbe };
  ProbeMethod probe_method = ProbeMethod::kProbeAndFilter;

  /// Index variant: apply the Lemma 5.1 skipping rule (turning it off falls
  /// back to visit-stamp dedup — correct but does redundant scanning; kept
  /// as an ablation knob).
  bool use_skipping_rule = true;
};

/// \brief Common machinery of the two SAJoin variants.
class SaJoinBase : public Operator {
 public:
  SaJoinBase(ExecContext* ctx, SaJoinOptions options, std::string label);

  const SaJoinOptions& options() const { return options_; }
  const SegmentedWindow& left_window() const { return windows_[0]; }
  const SegmentedWindow& right_window() const { return windows_[1]; }

  // Durable state: both windows as incremental deltas, both trackers'
  // batch timestamps (restored FAIL-CLOSED), and the output emitter's
  // monotone-ts clamp.
  bool HasDurableState() const override { return true; }
  void CheckpointState(std::string* out, bool full) override;
  void OnCheckpointDurable() override;
  Status RestoreState(std::string_view blob) override;
  void OnRestoreComplete() override;

 protected:
  /// \brief Hook: the windows were just rebuilt from a checkpoint chain —
  /// the index variant reconstructs its SPIndexes here.
  virtual void OnWindowsRestored() {}

  void Process(StreamElement elem, int port) override;
  /// Batch kernel: per-tuple invalidation/insert/probe semantics are
  /// identical to Process (window expiry depends on each tuple's ts), but
  /// the state-bytes gauge refresh — O(1) since SegmentedWindow accounts
  /// memory incrementally, yet not free — and the dispatch happen once per
  /// batch.
  void ProcessBatch(ElementBatch& batch, int port) override;
  /// Columnar kernel: input rows still materialize one Tuple each (the
  /// windows store Tuples), but every join result is appended straight
  /// into the output batch's columns by EmitJoinResult — the per-match
  /// Tuple + StreamElement construction that dominated the batch>1
  /// regression (docs/PERFORMANCE.md) never happens, and downstream
  /// operators receive a columnar batch.
  bool ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                       int port) override;

  /// \brief Shared tuple path of Process/ProcessBatch: invalidate the
  /// opposite window, resolve the policy, insert, probe. Does NOT refresh
  /// the state-bytes gauge — callers do, per element or per batch.
  void ProcessTuple(Tuple t, int port);
  /// \brief Shared sp path: install into the port's tracker.
  void ProcessSp(const SecurityPunctuation& sp, int port);

  /// \brief Variant-specific: probe the window opposite to `from_port` with
  /// tuple `t` (policy `t_policy`) and emit join results.
  virtual void Probe(const Tuple& t, const PolicyPtr& t_policy,
                     int from_port) = 0;

  /// \brief Hook: a tuple landed in `segment` of window `port` (the segment
  /// may be freshly created). The index variant maintains the SPIndex here.
  virtual void OnSegmentTouched(Segment* segment, bool created, int port) {
    (void)segment;
    (void)created;
    (void)port;
  }

  /// \brief Hook: `segment` of window `port` is being purged.
  virtual void OnSegmentPurged(Segment* segment, int port) {
    (void)segment;
    (void)port;
  }

  /// \brief Emit one join result (policies already known compatible or to be
  /// checked here): intersects the base policies, discards on empty, and
  /// precedes output with a synthesized sp when the policy changed.
  void EmitJoinResult(const Tuple& left, const Tuple& right,
                      const Policy& left_policy, const Policy& right_policy);

  /// \brief Key value of a tuple on the given port.
  const Value& KeyOf(const Tuple& t, int port) const {
    const int col =
        port == 0 ? options_.left_key_col : options_.right_key_col;
    return t.values[static_cast<size_t>(col)];
  }

  void UpdateStateBytes();

  SaJoinOptions options_;
  PolicyTracker trackers_[2];
  SegmentedWindow windows_[2];
  OutputPolicyEmitter output_emitter_;
  // Non-null while ProcessColumnar runs: EmitJoinResult appends results
  // (and synthesized sps) straight to this columnar output batch instead
  // of going through Emit's per-element collect path.
  ElementBatch* col_out_ = nullptr;

 private:
  // Checkpoint cursor over the scalar state (the windows keep their own).
  Timestamp ckpt_tracker_ts_[2] = {kMinTimestamp, kMinTimestamp};
  Timestamp ckpt_emitter_ts_ = kMinTimestamp;
  Timestamp pending_tracker_ts_[2] = {kMinTimestamp, kMinTimestamp};
  Timestamp pending_emitter_ts_ = kMinTimestamp;
};

/// \brief Nested-loop SAJoin (§V.B.1).
class SaJoinNl : public SaJoinBase {
 public:
  SaJoinNl(ExecContext* ctx, SaJoinOptions options,
           std::string label = "sajoin_nl")
      : SaJoinBase(ctx, std::move(options), std::move(label)) {}

 protected:
  void Probe(const Tuple& t, const PolicyPtr& t_policy,
             int from_port) override;
};

/// \brief The Security Punctuation Index of §V.B.2 (Figure 6): an r-node
/// array over all roles, each pointing at the FIFO list of index entries
/// (one per resident segment policy) containing that role.
class SpIndex {
 public:
  explicit SpIndex(size_t role_capacity) : rnodes_(role_capacity) {}
  ~SpIndex();

  SpIndex(SpIndex&&) = default;
  SpIndex& operator=(SpIndex&&) = default;
  SpIndex(const SpIndex&) = delete;
  SpIndex& operator=(const SpIndex&) = delete;

  /// \brief Add an index entry for a newly created segment.
  void Insert(Segment* segment);

  /// \brief Remove the entry of a purged segment. Expiry is FIFO, so the
  /// entry sits at the r-head of each of its roles' lists (property 3).
  void Remove(Segment* segment);

  /// \brief Visit policy-compatible segments: for each role in
  /// `probe_roles` (ascending), walk that r-node's entries. With the
  /// skipping rule (Lemma 5.1) each compatible segment is delivered exactly
  /// once, skipped in O(1) on re-encounters. Without it — the naive
  /// baseline — fn fires once per shared role; `first_visit` is false on
  /// re-encounters so callers can suppress duplicate emission while still
  /// paying the duplicate processing cost.
  /// \return number of index entries touched (scan-work metric).
  size_t Probe(const RoleSet& probe_roles, bool use_skipping_rule,
               const std::function<void(Segment*, bool first_visit)>& fn);

  size_t entry_count() const { return entry_count_; }
  size_t MemoryBytes() const;

 private:
  struct Entry {
    Segment* segment = nullptr;
    RoleId first_role = 0;               // for the skipping rule
    std::vector<RoleId> roles;           // ascending
    std::vector<Entry*> next;            // parallel to roles
    uint64_t visit_stamp = 0;            // no-skipping dedup
  };
  struct RNode {
    Entry* head = nullptr;
    Entry* tail = nullptr;
  };

  Entry* FindEntrySlot(Entry* e, RoleId role, size_t* slot) const;

  std::vector<RNode> rnodes_;
  std::unordered_map<Segment*, Entry*> by_segment_;
  uint64_t stamp_ = 0;
  size_t entry_count_ = 0;
};

/// \brief Index SAJoin (§V.B.2): probes the opposite window's SPIndex to
/// join only with policy-compatible segments.
class SaJoinIndex : public SaJoinBase {
 public:
  SaJoinIndex(ExecContext* ctx, SaJoinOptions options,
              std::string label = "sajoin_index");

  /// \brief Index entries scanned so far (work metric for Lemma 5.1 tests).
  int64_t index_entries_scanned() const { return entries_scanned_; }

  /// \brief Segment probings performed. With the skipping rule each
  /// compatible segment is probed once per tuple; the naive mode probes it
  /// once per shared role — the duplicate work Lemma 5.1 eliminates.
  int64_t segments_processed() const { return segments_processed_; }

 protected:
  void Probe(const Tuple& t, const PolicyPtr& t_policy,
             int from_port) override;
  void OnSegmentTouched(Segment* segment, bool created, int port) override;
  void OnSegmentPurged(Segment* segment, int port) override;
  void OnWindowsRestored() override;

 private:
  SpIndex indexes_[2];  // one SPIndex per input window
  int64_t entries_scanned_ = 0;
  int64_t segments_processed_ = 0;
};

}  // namespace spstream
