#include "exec/sa_select.h"

#include "exec/vector_eval.h"

namespace spstream {

void SaSelect::Process(StreamElement elem, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  ProcessElement(elem);
}

void SaSelect::ProcessBatch(ElementBatch& batch, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  for (StreamElement& e : batch.elements()) {
    ProcessElement(e);
  }
}

bool SaSelect::ProcessColumnar(ElementBatch& batch, ElementBatch* out, int) {
  if (!vector_pred_tried_) {
    vector_pred_tried_ = true;
    VectorPredicate pred;
    if (pred.Compile(*predicate_)) vector_pred_ = std::move(pred);
  }
  if (!vector_pred_.has_value()) return false;  // scalar fallback
  VectorPredicate& pred = *vector_pred_;
  ScopedTimer timer(&metrics_.total_nanos);
  std::vector<ElementBatch::Special> kept;
  std::vector<uint32_t> sel;
  sel.reserve(batch.num_live_rows());
  std::vector<ElementBatch::Special>& specials = batch.specials();
  size_t si = 0;
  auto flush_pending = [&](uint32_t before_row) {
    pending_emitted_ = true;
    for (SecurityPunctuation& sp : pending_sps_) {
      ++metrics_.sps_out;
      kept.push_back(
          ElementBatch::Special{before_row, StreamElement(std::move(sp))});
    }
    pending_sps_.clear();
  };
  auto handle_special = [&](ElementBatch::Special& s) {
    StreamElement& e = s.elem;
    if (e.is_sp()) {
      ++metrics_.sps_in;
      const Timestamp sp_ts = e.sp().ts();
      if (!pending_ts_ || *pending_ts_ != sp_ts) {
        // New batch: the previous one (if unsent) covered only filtered
        // tuples, so its sps are discarded per Table I.
        pending_sps_.clear();
        pending_ts_ = sp_ts;
        pending_emitted_ = false;
      }
      pending_sps_.push_back(std::move(e.sp()));
    } else {
      kept.push_back(std::move(s));  // control passes through in place
    }
  };
  const size_t live = batch.num_live_rows();
  for (size_t k = 0; k < live; ++k) {
    const uint32_t r = batch.live_row(k);
    while (si < specials.size() && specials[si].before_row <= r) {
      handle_special(specials[si]);
      ++si;
    }
    ++metrics_.tuples_in;
    if (!pred.Test(batch, r)) {
      ++metrics_.tuples_dropped_predicate;
      continue;
    }
    if (!pending_emitted_) flush_pending(r);
    ++metrics_.tuples_out;
    sel.push_back(r);
  }
  for (; si < specials.size(); ++si) {
    handle_special(specials[si]);
  }
  batch.ReplaceSpecials(std::move(kept));
  batch.SetSelection(std::move(sel));
  *out = std::move(batch);
  return true;
}

void SaSelect::ProcessElement(StreamElement& elem) {
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    const Timestamp sp_ts = elem.sp().ts();
    if (!pending_ts_ || *pending_ts_ != sp_ts) {
      // New batch: the previous one (if unsent) covered only filtered
      // tuples, so its sps are discarded per Table I.
      pending_sps_.clear();
      pending_ts_ = sp_ts;
      pending_emitted_ = false;
    }
    pending_sps_.push_back(std::move(elem.sp()));
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  const Tuple& t = elem.tuple();
  if (!predicate_->EvalBool(t)) {
    ++metrics_.tuples_dropped_predicate;
    return;
  }
  if (!pending_emitted_) {
    pending_emitted_ = true;
    for (SecurityPunctuation& sp : pending_sps_) {
      EmitSp(std::move(sp));
    }
    pending_sps_.clear();
  }
  EmitTuple(std::move(elem.tuple()));
}

}  // namespace spstream
