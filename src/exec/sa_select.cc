#include "exec/sa_select.h"

namespace spstream {

void SaSelect::Process(StreamElement elem, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  ProcessElement(elem);
}

void SaSelect::ProcessBatch(ElementBatch& batch, int) {
  ScopedTimer timer(&metrics_.total_nanos);
  for (StreamElement& e : batch.elements()) {
    ProcessElement(e);
  }
}

void SaSelect::ProcessElement(StreamElement& elem) {
  if (elem.is_sp()) {
    ++metrics_.sps_in;
    const Timestamp sp_ts = elem.sp().ts();
    if (!pending_ts_ || *pending_ts_ != sp_ts) {
      // New batch: the previous one (if unsent) covered only filtered
      // tuples, so its sps are discarded per Table I.
      pending_sps_.clear();
      pending_ts_ = sp_ts;
      pending_emitted_ = false;
    }
    pending_sps_.push_back(std::move(elem.sp()));
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }

  ++metrics_.tuples_in;
  const Tuple& t = elem.tuple();
  if (!predicate_->EvalBool(t)) {
    ++metrics_.tuples_dropped_predicate;
    return;
  }
  if (!pending_emitted_) {
    pending_emitted_ = true;
    for (SecurityPunctuation& sp : pending_sps_) {
      EmitSp(std::move(sp));
    }
    pending_sps_.clear();
  }
  EmitTuple(std::move(elem.tuple()));
}

}  // namespace spstream
