// Security-aware windowed set operations — the operators the paper's
// footnote 5 leaves out ("we do not describe security-aware set operations
// ... to keep the presentation concise"), completed here with the same
// role-faithful semantics as the rest of the algebra (∪ is UnionOp).
//
//   intersect: a left tuple is emitted when a value-equal tuple resides in
//   the right window and their policies are compatible; the result carries
//   the policy *intersection* (join semantics of Table I).
//
//   except: a left tuple is emitted for exactly the roles that may read it
//   but may NOT see any value-equal right tuple: P_out = P_L − ∪ P_R over
//   value-equal right residents. (From a role's viewpoint, a right tuple it
//   cannot see does not exclude the left tuple — the same per-role
//   reasoning as duplicate elimination's three cases.)
#pragma once

#include "exec/operator.h"
#include "exec/policy_tracker.h"
#include "exec/sp_synth.h"
#include "exec/window.h"

namespace spstream {

struct SaSetOpOptions {
  enum class Kind { kIntersect, kExcept };
  Kind kind = Kind::kIntersect;
  Timestamp window_size = 1000;
  std::string left_stream_name;
  std::string right_stream_name;
  std::string output_stream_name = "setop_out";
  StreamId output_sid = 0;
};

/// \brief Windowed security-aware INTERSECT / EXCEPT over full tuple
/// values. Left (port 0) is the probe side whose tuples are emitted; right
/// (port 1) only maintains window state.
class SaSetOp : public Operator {
 public:
  SaSetOp(ExecContext* ctx, SaSetOpOptions options,
          std::string label = "setop");

  const SegmentedWindow& right_window() const { return window_; }

 protected:
  void Process(StreamElement elem, int port) override;

 private:
  static bool ValuesEqual(const Tuple& a, const Tuple& b);

  SaSetOpOptions options_;
  PolicyTracker trackers_[2];
  SegmentedWindow window_;  // right-side residents
  OutputPolicyEmitter output_emitter_;
};

}  // namespace spstream
