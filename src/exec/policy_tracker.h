// Tracks the access-control policy in force on one input stream.
//
// Implements the applicability semantics of §III.A/§III.E on the hot path:
//  * consecutive sps with equal ts form an sp-batch = one policy (union of
//    positives minus negatives);
//  * a batch with a newer ts overrides the current policy;
//  * stale (older-ts) sps are dropped, mirroring the in-order assumption;
//  * tuples preceding any sp fall under denial-by-default;
//  * a tuple not matched by the batch's DDP also falls to denial-by-default.
//
// Sharded execution (EngineOptions::num_shards > 1) relies on these
// semantics being a pure function of the sp subsequence: the engine
// BROADCASTS every sp to every shard while hash-partitioning the tuples, so
// each pipeline clone's tracker replays the identical sp sequence and
// converges to the same policy state. The install counters below make that
// convergence observable per shard (EXPLAIN ANALYZE shard rows).
#pragma once

#include <vector>

#include "exec/exec_context.h"
#include "security/policy.h"
#include "security/security_punctuation.h"
#include "stream/tuple.h"

namespace spstream {

/// \brief Per-input policy state machine fed by the element sequence.
class PolicyTracker {
 public:
  PolicyTracker(const RoleCatalog* catalog, std::string stream_name)
      : catalog_(catalog), stream_name_(std::move(stream_name)) {}

  /// \brief Feed an arriving sp. Returns false when the sp is stale (older
  /// than the policy in force) and was discarded.
  bool OnSp(const SecurityPunctuation& sp);

  /// \brief Policy applicable to an arriving tuple (finalizes any open
  /// batch first). Cheap when the batch covers all tuples of this stream;
  /// falls back to per-tuple DDP evaluation otherwise.
  PolicyPtr PolicyFor(const Tuple& t);

  /// \brief The whole-batch policy currently in force (after finalization),
  /// ignoring per-tuple DDP narrowing.
  const PolicyPtr& current_policy() const { return current_policy_; }

  /// \brief The sps forming the policy currently in force, for downstream
  /// propagation. Valid after the batch is finalized (first tuple seen).
  const std::vector<SecurityPunctuation>& current_batch() const {
    return current_batch_;
  }

  Timestamp current_ts() const { return current_policy_->ts(); }

  /// \brief Effective roles allowed to read attribute `attr_name` of tuple
  /// `t` under the current batch (attribute-granularity support used by the
  /// Security Shield's attribute masking and by projection).
  RoleSet EffectiveRolesForAttribute(const Tuple& t,
                                     std::string_view attr_name);

  /// \brief True when the current batch contains attribute-granularity sps.
  bool has_attribute_policies() const { return has_attr_policies_; }

  /// \brief True when the policy in force applies uniformly to EVERY tuple
  /// of this stream: no open batch awaiting finalization, and no per-tuple
  /// DDP narrowing (the finalized batch covers all tuples, or no batch has
  /// arrived and denial-by-default rules). While this holds, PolicyFor is a
  /// constant function — batch kernels memoize one access decision per run
  /// and re-check only when an sp arrives (which opens a batch and clears
  /// the condition until the next finalize).
  bool PolicyUniformAcrossTuples() const {
    return open_batch_.empty() &&
           (batch_covers_all_ || current_batch_.empty());
  }

  int64_t stale_sps_dropped() const { return stale_sps_dropped_; }

  /// \brief Sp-batches that took effect (finalized into the policy in
  /// force) over this tracker's lifetime.
  int64_t batches_installed() const { return batches_installed_; }

  /// \brief Batches whose installation faulted (fault site policy.install):
  /// each flipped this stream to the fail-closed deny-all policy.
  int64_t fail_closed_installs() const { return fail_closed_installs_; }

  /// \brief True while the stream sits under the fail-closed deny-all
  /// policy; cleared when a newer sp-batch installs successfully (the
  /// stream "re-converges"). See docs/ROBUSTNESS.md.
  bool fail_closed() const { return fail_closed_; }

  size_t MemoryBytes() const;

  /// \brief Crash-recovery restore (docs/DURABILITY.md): re-arm FAIL-CLOSED
  /// at the checkpointed batch timestamp. The recovered stream denies
  /// everyone — exactly the policy.install fault posture — until a newer
  /// sp-batch arrives and re-converges; sps at or before `ts` are stale and
  /// dropped, so a replayed prefix cannot resurrect a pre-crash policy.
  void RestoreFailClosed(Timestamp ts) {
    previous_policy_ = current_policy_ = MakePolicy(RoleSet(), ts);
    open_batch_.clear();
    current_batch_.clear();
    batch_incremental_ = false;
    batch_covers_all_ = true;
    has_attr_policies_ = false;
    fail_closed_ = true;
  }

 private:
  void FinalizeOpenBatch();

  const RoleCatalog* catalog_;
  std::string stream_name_;

  std::vector<SecurityPunctuation> open_batch_;
  std::vector<SecurityPunctuation> current_batch_;
  PolicyPtr current_policy_ = DenyAllPolicy();
  // Policy in force before the current batch, and whether the current batch
  // is an incremental edit (§IX extension) rather than an override.
  PolicyPtr previous_policy_ = DenyAllPolicy();
  bool batch_incremental_ = false;
  // True when every sp of the finalized batch matches this stream, all
  // tuple ids and all attributes — the common fast path.
  bool batch_covers_all_ = false;
  bool has_attr_policies_ = false;
  bool fail_closed_ = false;
  int64_t stale_sps_dropped_ = 0;
  int64_t batches_installed_ = 0;
  int64_t fail_closed_installs_ = 0;
};

}  // namespace spstream
