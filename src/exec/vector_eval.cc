#include "exec/vector_eval.h"

namespace spstream {

bool VectorPredicate::Compile(const Expr& root) {
  nodes_.clear();
  root_ = root.CompileColumnar(this);
  return root_ >= 0;
}

int VectorPredicate::AddColumn(int index) {
  Node n;
  n.op = Node::Op::kColumn;
  n.col = index;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int VectorPredicate::AddLiteral(const Value& v) {
  Node n;
  n.op = Node::Op::kLiteral;
  n.lit = v;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int VectorPredicate::AddCompare(Expr::CmpOp op, int lhs, int rhs) {
  Node n;
  n.op = Node::Op::kCompare;
  n.cmp = op;
  n.a = lhs;
  n.b = rhs;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int VectorPredicate::AddLogical(Expr::LogicalOp op, int lhs, int rhs) {
  Node n;
  switch (op) {
    case Expr::LogicalOp::kAnd:
      n.op = Node::Op::kAnd;
      break;
    case Expr::LogicalOp::kOr:
      n.op = Node::Op::kOr;
      break;
    case Expr::LogicalOp::kNot:
      n.op = Node::Op::kNot;
      break;
  }
  n.a = lhs;
  n.b = rhs;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

VectorPredicate::View VectorPredicate::ViewOf(int id,
                                              const ElementBatch& batch,
                                              uint32_t row) const {
  const Node& n = nodes_[static_cast<size_t>(id)];
  View v;
  switch (n.op) {
    case Node::Op::kColumn: {
      // ColumnExpr semantics: out-of-range index reads as Null; an
      // untyped (all-null) or masked entry likewise.
      if (n.col < 0 || static_cast<size_t>(n.col) >= batch.num_columns()) {
        return v;
      }
      const ColumnVector& c = batch.column(static_cast<size_t>(n.col));
      if (!c.IsValid(row)) return v;
      switch (c.type()) {
        case ValueType::kInt64:
          v.rank = 1;
          v.is_int = true;
          v.i = c.Int64At(row);
          v.d = static_cast<double>(v.i);
          break;
        case ValueType::kDouble:
          v.rank = 1;
          v.d = c.DoubleAt(row);
          break;
        case ValueType::kString:
          v.rank = 2;
          v.s = c.StringAt(row);
          break;
        case ValueType::kBool:
          v.rank = 3;
          v.b = c.BoolAt(row);
          break;
        case ValueType::kNull:
          break;
      }
      return v;
    }
    case Node::Op::kLiteral: {
      const Value& lit = n.lit;
      if (lit.is_int64()) {
        v.rank = 1;
        v.is_int = true;
        v.i = lit.int64();
        v.d = static_cast<double>(v.i);
      } else if (lit.is_double()) {
        v.rank = 1;
        v.d = lit.dbl();
      } else if (lit.is_string()) {
        v.rank = 2;
        v.s = lit.str();
      } else if (lit.is_bool()) {
        v.rank = 3;
        v.b = lit.boolean();
      }
      return v;
    }
    default:
      // Compare/logical subtrees evaluate to a bool Value (CompareExpr and
      // LogicalExpr both return booleans), rank 3 in the total order.
      v.rank = 3;
      v.b = TestNode(id, batch, row);
      return v;
  }
}

bool VectorPredicate::TestNode(int id, const ElementBatch& batch,
                               uint32_t row) const {
  const Node& n = nodes_[static_cast<size_t>(id)];
  switch (n.op) {
    case Node::Op::kCompare: {
      const View l = ViewOf(n.a, batch, row);
      const View r = ViewOf(n.b, batch, row);
      int c;
      if (l.rank != r.rank) {
        c = l.rank < r.rank ? -1 : 1;
      } else {
        switch (l.rank) {
          case 0:
            c = 0;
            break;
          case 1:
            if (l.is_int && r.is_int) {
              c = l.i < r.i ? -1 : (l.i > r.i ? 1 : 0);
            } else {
              c = l.d < r.d ? -1 : (l.d > r.d ? 1 : 0);
            }
            break;
          case 2: {
            const int sc = l.s.compare(r.s);
            c = sc < 0 ? -1 : (sc == 0 ? 0 : 1);
            break;
          }
          default:
            c = l.b == r.b ? 0 : (l.b ? 1 : -1);
            break;
        }
      }
      switch (n.cmp) {
        case Expr::CmpOp::kEq:
          return c == 0;
        case Expr::CmpOp::kNe:
          return c != 0;
        case Expr::CmpOp::kLt:
          return c < 0;
        case Expr::CmpOp::kLe:
          return c <= 0;
        case Expr::CmpOp::kGt:
          return c > 0;
        case Expr::CmpOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case Node::Op::kAnd:
      return TestNode(n.a, batch, row) && TestNode(n.b, batch, row);
    case Node::Op::kOr:
      return TestNode(n.a, batch, row) || TestNode(n.b, batch, row);
    case Node::Op::kNot:
      return !TestNode(n.a, batch, row);
    case Node::Op::kColumn:
    case Node::Op::kLiteral: {
      // EvalBool truthiness of a bare value: bool -> itself, null ->
      // false, otherwise AsDouble() != 0 (strings are always falsy).
      const View v = ViewOf(id, batch, row);
      switch (v.rank) {
        case 0:
          return false;
        case 1:
          return v.is_int ? v.i != 0 : v.d != 0.0;
        case 2:
          return false;
        default:
          return v.b;
      }
    }
  }
  return false;
}

bool VectorPredicate::Test(const ElementBatch& batch, uint32_t row) const {
  return TestNode(root_, batch, row);
}

}  // namespace spstream
