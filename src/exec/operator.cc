#include "exec/operator.h"

#include <unordered_map>

#include "common/metrics_registry.h"
#include "common/trace.h"

namespace spstream {

void Operator::Push(StreamElement elem, int port) {
  if (elem.is_end_of_stream()) {
    OnPortFinished(port);
    if (++finished_ports_ >= (num_inputs_ == 0 ? 1 : num_inputs_)) {
      OnAllFinished();
      Emit(std::move(elem));  // propagate EOS exactly once
    }
    return;
  }
  Process(std::move(elem), port);
}

void Operator::Emit(StreamElement elem) {
  if (collect_ != nullptr) {
    // Batch mode: buffer the element; PushBatch forwards everything
    // collected as one output batch when the input batch completes.
    collect_->push_back(std::move(elem));
    return;
  }
  if (outputs_.empty()) return;
  // Copy for all but the last edge; move into the last.
  for (size_t i = 0; i + 1 < outputs_.size(); ++i) {
    outputs_[i].op->Push(elem, outputs_[i].port);
  }
  outputs_.back().op->Push(std::move(elem), outputs_.back().port);
}

void Operator::ProcessBatch(ElementBatch& batch, int port) {
  for (StreamElement& e : batch.elements()) {
    Process(std::move(e), port);
  }
}

namespace {
/// Restores an operator's collect pointer even if Process throws (the
/// engine quarantines the query on exceptions, but the operator must not be
/// left pointing at a dead stack buffer in the meantime).
struct CollectScope {
  ElementBatch** slot;
  ElementBatch* prev;
  CollectScope(ElementBatch** s, ElementBatch* next) : slot(s), prev(*s) {
    *slot = next;
  }
  ~CollectScope() { *slot = prev; }
};
}  // namespace

void Operator::PushBatch(ElementBatch batch, int port) {
  if (batch.empty()) return;
  ++metrics_.batches_in;
  metrics_.batch_elements_in += static_cast<int64_t>(batch.size());
  // Per-operator span (when the current batch's trace is sampled): arg1 =
  // batch size, arg2 = tuples passed downstream, arg3 = tuples dropped
  // (security + predicate) while this batch was processed.
  const bool traced = SP_TRACE_ENABLED() && Tracer::CurrentTrace() != 0;
  const int64_t out_before = traced ? metrics_.tuples_out : 0;
  const int64_t drop_before =
      traced ? metrics_.tuples_dropped_security + metrics_.tuples_dropped_predicate
             : 0;
  TraceSpan span(TraceCat::kOperator, label_.c_str(),
                 traced ? Tracer::CurrentTrace() : 0,
                 static_cast<int64_t>(batch.size()));
  ElementBatch out;
  if (!batch.has_eos() && batch.is_columnar() &&
      ProcessColumnar(batch, &out, port)) {
    // Columnar kernel: `out` was built directly (no collect-mode
    // per-element re-wrap) and forwards below like any collected batch.
  } else {
    CollectScope scope(&collect_, &out);
    if (batch.has_eos()) {
      // Rare, terminal: route through Push so the finished-port accounting
      // stays in one place. Emissions still collect, so downstream keeps
      // receiving batches.
      for (StreamElement& e : batch.elements()) {
        Push(std::move(e), port);
      }
    } else {
      ProcessBatch(batch, port);
    }
  }
  if (traced) {
    span.set_args(static_cast<int64_t>(batch.size()),
                  metrics_.tuples_out - out_before,
                  metrics_.tuples_dropped_security +
                      metrics_.tuples_dropped_predicate - drop_before);
  }
  ForwardBatch(std::move(out));
}

void Operator::ForwardBatch(ElementBatch batch) {
  if (batch.empty()) return;
  if (collect_ != nullptr) {
    for (StreamElement& e : batch.elements()) {
      collect_->push_back(std::move(e));
    }
    return;
  }
  if (outputs_.empty()) return;
  // Copy for all but the last fan-out edge; move into the last.
  for (size_t i = 0; i + 1 < outputs_.size(); ++i) {
    outputs_[i].op->PushBatch(batch, outputs_[i].port);
  }
  outputs_.back().op->PushBatch(std::move(batch), outputs_.back().port);
}

size_t SourceOperator::Poll(size_t max_elements) {
  // One poll = one batch: downstream operators get their batch kernels even
  // for pre-materialized runs (Pipeline::Run's batch_per_poll is the batch
  // size). Order is exactly the per-element order. Multi-element polls ship
  // columnar so the SoA kernels engage; a one-element poll keeps the row
  // transport (same trade-off as the engine feed).
  ElementBatch batch;
  if (max_elements > 1) batch.BeginColumnar();
  batch.reserve(std::min(max_elements, elements_.size() - next_) + 1);
  size_t pushed = 0;
  while (pushed < max_elements && next_ < elements_.size()) {
    StreamElement& e = elements_[next_++];
    if (e.is_tuple()) {
      ++metrics_.tuples_in;
      ++metrics_.tuples_out;
    } else if (e.is_sp()) {
      ++metrics_.sps_in;
      ++metrics_.sps_out;
    }
    batch.push_back(std::move(e));
    ++pushed;
  }
  if (next_ >= elements_.size() && !eos_sent_) {
    eos_sent_ = true;
    const Timestamp ts =
        elements_.empty() ? 0 : kMaxTimestamp;
    // EOS rides at the batch tail; PushBatch routes it through Push so the
    // finished-port accounting fires downstream.
    batch.push_back(StreamElement::EndOfStream(ts));
  }
  if (!batch.empty()) ForwardBatch(std::move(batch));
  return pushed;
}

const std::vector<StreamElement>& CollectorSink::elements() const {
  if (!flat_valid_) {
    flat_.clear();
    for (const ElementBatch& chunk : chunks_) {
      for (const StreamElement& e : chunk.elements()) {
        flat_.push_back(e);
      }
    }
    flat_valid_ = true;
  }
  return flat_;
}

std::vector<Tuple> CollectorSink::Tuples() const {
  std::vector<Tuple> out;
  for (const ElementBatch& chunk : chunks_) {
    if (chunk.is_columnar()) {
      // Columnar fast path: rebuild Tuples straight from the columns —
      // the sink never touches a StreamElement for these results.
      const size_t live = chunk.num_live_rows();
      for (size_t k = 0; k < live; ++k) {
        out.push_back(chunk.MaterializeTuple(chunk.live_row(k)));
      }
    } else {
      for (const StreamElement& e : chunk.elements()) {
        if (e.is_tuple()) out.push_back(e.tuple());
      }
    }
  }
  return out;
}

std::vector<SecurityPunctuation> CollectorSink::Sps() const {
  std::vector<SecurityPunctuation> out;
  for (const ElementBatch& chunk : chunks_) {
    if (chunk.is_columnar()) {
      for (const ElementBatch::Special& s : chunk.specials()) {
        if (s.elem.is_sp()) out.push_back(s.elem.sp());
      }
    } else {
      for (const StreamElement& e : chunk.elements()) {
        if (e.is_sp()) out.push_back(e.sp());
      }
    }
  }
  return out;
}

void Pipeline::SetQueryTag(const std::string& tag) {
  for (const std::unique_ptr<Operator>& op : operators_) {
    op->set_query_tag(tag);
  }
}

void Pipeline::HarvestInto(MetricsRegistry* registry, const std::string& query,
                           HarvestMode mode) const {
  std::unordered_map<std::string, int> seen;
  for (const std::unique_ptr<Operator>& op : operators_) {
    std::string key = op->label();
    const int n = seen[key]++;
    if (n > 0) key += "#" + std::to_string(n);
    if (mode == HarvestMode::kOverwrite) {
      registry->UpdateLiveOperator(query, key, op->metrics());
    } else {
      registry->MergeOperator(query, key, op->metrics());
    }
  }
}

void Pipeline::Run(size_t batch_per_poll) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (SourceOperator* src : sources_) {
      if (!src->exhausted()) {
        src->Poll(batch_per_poll);
        progressed = true;
      }
    }
  }
}

}  // namespace spstream
