#include "exec/operator.h"

#include <unordered_map>

#include "common/metrics_registry.h"

namespace spstream {

void Operator::Push(StreamElement elem, int port) {
  if (elem.is_end_of_stream()) {
    OnPortFinished(port);
    if (++finished_ports_ >= (num_inputs_ == 0 ? 1 : num_inputs_)) {
      OnAllFinished();
      Emit(std::move(elem));  // propagate EOS exactly once
    }
    return;
  }
  Process(std::move(elem), port);
}

void Operator::Emit(StreamElement elem) {
  if (outputs_.empty()) return;
  // Copy for all but the last edge; move into the last.
  for (size_t i = 0; i + 1 < outputs_.size(); ++i) {
    outputs_[i].op->Push(elem, outputs_[i].port);
  }
  outputs_.back().op->Push(std::move(elem), outputs_.back().port);
}

size_t SourceOperator::Poll(size_t max_elements) {
  size_t pushed = 0;
  while (pushed < max_elements && next_ < elements_.size()) {
    StreamElement& e = elements_[next_++];
    if (e.is_tuple()) {
      ++metrics_.tuples_in;
      ++metrics_.tuples_out;
    } else if (e.is_sp()) {
      ++metrics_.sps_in;
      ++metrics_.sps_out;
    }
    Emit(std::move(e));
    ++pushed;
  }
  if (next_ >= elements_.size() && !eos_sent_) {
    eos_sent_ = true;
    const Timestamp ts =
        elements_.empty() ? 0 : kMaxTimestamp;
    // Route EOS through Push so finished-port accounting fires downstream.
    Emit(StreamElement::EndOfStream(ts));
  }
  return pushed;
}

std::vector<Tuple> CollectorSink::Tuples() const {
  std::vector<Tuple> out;
  for (const StreamElement& e : elements_) {
    if (e.is_tuple()) out.push_back(e.tuple());
  }
  return out;
}

std::vector<SecurityPunctuation> CollectorSink::Sps() const {
  std::vector<SecurityPunctuation> out;
  for (const StreamElement& e : elements_) {
    if (e.is_sp()) out.push_back(e.sp());
  }
  return out;
}

void Pipeline::SetQueryTag(const std::string& tag) {
  for (const std::unique_ptr<Operator>& op : operators_) {
    op->set_query_tag(tag);
  }
}

void Pipeline::HarvestInto(MetricsRegistry* registry, const std::string& query,
                           HarvestMode mode) const {
  std::unordered_map<std::string, int> seen;
  for (const std::unique_ptr<Operator>& op : operators_) {
    std::string key = op->label();
    const int n = seen[key]++;
    if (n > 0) key += "#" + std::to_string(n);
    if (mode == HarvestMode::kOverwrite) {
      registry->UpdateLiveOperator(query, key, op->metrics());
    } else {
      registry->MergeOperator(query, key, op->metrics());
    }
  }
}

void Pipeline::Run(size_t batch_per_poll) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (SourceOperator* src : sources_) {
      if (!src->exhausted()) {
        src->Poll(batch_per_poll);
        progressed = true;
      }
    }
  }
}

}  // namespace spstream
