#include "exec/expr.h"

#include <algorithm>
#include <cmath>

namespace spstream {

const char* CmpOpToString(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return "=";
    case Expr::CmpOp::kNe:
      return "!=";
    case Expr::CmpOp::kLt:
      return "<";
    case Expr::CmpOp::kLe:
      return "<=";
    case Expr::CmpOp::kGt:
      return ">";
    case Expr::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(Expr::ArithOp op) {
  switch (op) {
    case Expr::ArithOp::kAdd:
      return "+";
    case Expr::ArithOp::kSub:
      return "-";
    case Expr::ArithOp::kMul:
      return "*";
    case Expr::ArithOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {

class ColumnExpr final : public Expr {
 public:
  ColumnExpr(int index, std::string name)
      : index_(index), name_(std::move(name)) {}
  Kind kind() const override { return Kind::kColumn; }
  Value Eval(const Tuple& t) const override {
    if (index_ < 0 || static_cast<size_t>(index_) >= t.values.size()) {
      return Value::Null();
    }
    return t.values[static_cast<size_t>(index_)];
  }
  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }
  void CollectColumns(std::vector<int>* out) const override {
    out->push_back(index_);
  }
  int CompileColumnar(ColumnarPredicateBuilder* builder) const override {
    return builder->AddColumn(index_);
  }

 private:
  int index_;
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Kind kind() const override { return Kind::kLiteral; }
  Value Eval(const Tuple&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<int>*) const override {}
  int CompileColumnar(ColumnarPredicateBuilder* builder) const override {
    return builder->AddLiteral(value_);
  }

 private:
  Value value_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Kind kind() const override { return Kind::kCompare; }
  Value Eval(const Tuple& t) const override {
    const int c = lhs_->Eval(t).Compare(rhs_->Eval(t));
    switch (op_) {
      case CmpOp::kEq:
        return c == 0;
      case CmpOp::kNe:
        return c != 0;
      case CmpOp::kLt:
        return c < 0;
      case CmpOp::kLe:
        return c <= 0;
      case CmpOp::kGt:
        return c > 0;
      case CmpOp::kGe:
        return c >= 0;
    }
    return false;
  }
  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + CmpOpToString(op_) + " " +
           rhs_->ToString() + ")";
  }
  void CollectColumns(std::vector<int>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  int CompileColumnar(ColumnarPredicateBuilder* builder) const override {
    const int l = lhs_->CompileColumnar(builder);
    if (l < 0) return -1;
    const int r = rhs_->CompileColumnar(builder);
    if (r < 0) return -1;
    return builder->AddCompare(op_, l, r);
  }

 private:
  CmpOp op_;
  ExprPtr lhs_, rhs_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Kind kind() const override { return Kind::kLogical; }
  Value Eval(const Tuple& t) const override {
    switch (op_) {
      case LogicalOp::kAnd:
        return lhs_->EvalBool(t) && rhs_->EvalBool(t);
      case LogicalOp::kOr:
        return lhs_->EvalBool(t) || rhs_->EvalBool(t);
      case LogicalOp::kNot:
        return !lhs_->EvalBool(t);
    }
    return false;
  }
  std::string ToString() const override {
    switch (op_) {
      case LogicalOp::kAnd:
        return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
      case LogicalOp::kOr:
        return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
      case LogicalOp::kNot:
        return "(NOT " + lhs_->ToString() + ")";
    }
    return "?";
  }
  void CollectColumns(std::vector<int>* out) const override {
    lhs_->CollectColumns(out);
    if (rhs_) rhs_->CollectColumns(out);
  }
  int CompileColumnar(ColumnarPredicateBuilder* builder) const override {
    const int l = lhs_->CompileColumnar(builder);
    if (l < 0) return -1;
    int r = -1;
    if (rhs_) {
      r = rhs_->CompileColumnar(builder);
      if (r < 0) return -1;
    }
    return builder->AddLogical(op_, l, r);
  }

 private:
  LogicalOp op_;
  ExprPtr lhs_, rhs_;  // rhs_ null for NOT
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Kind kind() const override { return Kind::kArithmetic; }
  Value Eval(const Tuple& t) const override {
    const Value l = lhs_->Eval(t), r = rhs_->Eval(t);
    if (l.is_int64() && r.is_int64() && op_ != ArithOp::kDiv) {
      switch (op_) {
        case ArithOp::kAdd:
          return l.int64() + r.int64();
        case ArithOp::kSub:
          return l.int64() - r.int64();
        case ArithOp::kMul:
          return l.int64() * r.int64();
        default:
          break;
      }
    }
    const double a = l.AsDouble(), b = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        return a + b;
      case ArithOp::kSub:
        return a - b;
      case ArithOp::kMul:
        return a * b;
      case ArithOp::kDiv:
        return b == 0.0 ? Value::Null() : Value(a / b);
    }
    return Value::Null();
  }
  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + ArithOpToString(op_) + " " +
           rhs_->ToString() + ")";
  }
  void CollectColumns(std::vector<int>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

class DistanceExpr final : public Expr {
 public:
  DistanceExpr(ExprPtr x1, ExprPtr y1, ExprPtr x2, ExprPtr y2)
      : x1_(std::move(x1)),
        y1_(std::move(y1)),
        x2_(std::move(x2)),
        y2_(std::move(y2)) {}
  Kind kind() const override { return Kind::kDistance; }
  Value Eval(const Tuple& t) const override {
    const double dx = x1_->Eval(t).AsDouble() - x2_->Eval(t).AsDouble();
    const double dy = y1_->Eval(t).AsDouble() - y2_->Eval(t).AsDouble();
    return std::sqrt(dx * dx + dy * dy);
  }
  std::string ToString() const override {
    return "DISTANCE(" + x1_->ToString() + ", " + y1_->ToString() + ", " +
           x2_->ToString() + ", " + y2_->ToString() + ")";
  }
  void CollectColumns(std::vector<int>* out) const override {
    x1_->CollectColumns(out);
    y1_->CollectColumns(out);
    x2_->CollectColumns(out);
    y2_->CollectColumns(out);
  }

 private:
  ExprPtr x1_, y1_, x2_, y2_;
};

}  // namespace

ExprPtr Expr::Column(int index, std::string name) {
  return std::make_shared<ColumnExpr>(index, std::move(name));
}
ExprPtr Expr::Literal(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}
ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(lhs),
                                       std::move(rhs));
}
ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(lhs),
                                       std::move(rhs));
}
ExprPtr Expr::Not(ExprPtr operand) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(operand),
                                       nullptr);
}
ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Expr::Distance(ExprPtr x1, ExprPtr y1, ExprPtr x2, ExprPtr y2) {
  return std::make_shared<DistanceExpr>(std::move(x1), std::move(y1),
                                        std::move(x2), std::move(y2));
}

std::vector<int> Expr::ReferencedColumns() const {
  std::vector<int> cols;
  CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

}  // namespace spstream
