// Small plumbing operators: stream union, sp stripping (for the
// pre-filtering strategy of §IV.A, whose plans carry no punctuations), and
// a rate meter used by the benchmark harness.
#pragma once

#include "exec/operator.h"

namespace spstream {

/// \brief N-ary stream union: forwards every input element in arrival
/// order. Policies ride along unchanged — each input's sps still precede
/// that input's tuples in the merged output.
class UnionOp : public Operator {
 public:
  UnionOp(ExecContext* ctx, int num_inputs, std::string label = "union")
      : Operator(ctx, std::move(label), num_inputs) {}

 protected:
  void Process(StreamElement elem, int) override {
    if (elem.is_tuple()) {
      ++metrics_.tuples_in;
      EmitTuple(std::move(elem.tuple()));
    } else if (elem.is_sp()) {
      ++metrics_.sps_in;
      EmitSp(std::move(elem.sp()));
    } else {
      Emit(std::move(elem));
    }
  }
};

/// \brief Strips security punctuations from the stream. The pre-filtering
/// strategy runs this right after its access-control filter: downstream
/// plans are then plain pipelines. A single allow-all punctuation precedes
/// the first tuple so stateful security-aware operators downstream treat
/// everything that survived the source shield as accessible (which is
/// precisely the pre-filtering contract).
class DropSpsOp : public Operator {
 public:
  explicit DropSpsOp(ExecContext* ctx, std::string label = "drop_sps")
      : Operator(ctx, std::move(label)) {}

 protected:
  void Process(StreamElement elem, int) override {
    if (elem.is_sp()) {
      ++metrics_.sps_in;
      return;  // swallowed
    }
    if (elem.is_tuple()) {
      ++metrics_.tuples_in;
      if (!allow_all_sent_) {
        allow_all_sent_ = true;
        SecurityPunctuation allow_all(
            Pattern::Any(), Pattern::Any(), Pattern::Any(), Pattern::Any(),
            Sign::kPositive, /*immutable=*/false, elem.tuple().ts - 1);
        allow_all.SetResolvedRoles(RoleSet::AllOf(*ctx_->roles));
        EmitSp(std::move(allow_all));
      }
      EmitTuple(std::move(elem.tuple()));
    } else {
      Emit(std::move(elem));
    }
  }

 private:
  bool allow_all_sent_ = false;
};

}  // namespace spstream
