#include "exec/replay.h"

#include <algorithm>
#include <sstream>

namespace spstream {

std::string LatencySummary::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean_us << "us p50=" << p50_us
     << "us p95=" << p95_us << "us p99=" << p99_us << "us max=" << max_us
     << "us";
  return os.str();
}

LatencySummary LatencySink::Summarize() const {
  LatencySummary s;
  if (latencies_.empty()) return s;
  std::vector<int64_t> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  int64_t sum = 0;
  for (int64_t v : sorted) sum += v;
  auto pct = [&](double p) {
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return static_cast<double>(sorted[idx]) / 1e3;
  };
  s.mean_us = static_cast<double>(sum) / static_cast<double>(s.count) / 1e3;
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  s.max_us = static_cast<double>(sorted.back()) / 1e3;
  return s;
}

double ReplayWithLatency(Pipeline* pipeline,
                         const std::vector<SourceOperator*>& sources,
                         LatencySink* sink, const ReplayOptions& options) {
  (void)pipeline;
  const int64_t start = NowNanos();
  const double gap_nanos =
      options.arrival_rate_per_ms > 0 ? 1e6 / options.arrival_rate_per_ms
                                      : 0;
  double next_arrival = static_cast<double>(start);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Re-read the throttle each round: the controller's tier can change
    // between rounds as pressure samples arrive.
    const size_t batch =
        options.overload
            ? options.overload->EffectiveBatchSize(options.batch_per_poll)
            : options.batch_per_poll;
    for (SourceOperator* src : sources) {
      if (src->exhausted()) continue;
      progressed = true;
      for (size_t i = 0; i < batch && !src->exhausted(); ++i) {
        if (gap_nanos > 0) {
          // Busy-wait to the simulated arrival instant (sub-ms gaps; a
          // sleep would be far coarser than the latencies measured).
          while (static_cast<double>(NowNanos()) < next_arrival) {
          }
          next_arrival += gap_nanos;
        }
        sink->MarkArrival();
        src->Poll(1);
      }
    }
  }
  return static_cast<double>(NowNanos() - start) / 1e6;
}

}  // namespace spstream
