// The Security Shield (SS, ψ) operator of §V.A — the paper's new
// special-purpose access-control filter that can be placed anywhere in a
// query plan.
//
// State: the security predicates (role sets) of the queries downstream.
// Behaviour: buffers the policy streamed by sps (sp-batch assembly +
// override on newer ts); a tuple passes iff its policy intersects some
// predicate; unauthorized tuples *and their sps* are discarded. Sps of an
// authorized segment are propagated lazily, just before the segment's first
// passing tuple, so fully-filtered segments ship no metadata downstream.
#pragma once

#include <optional>

#include "exec/operator.h"
#include "exec/policy_tracker.h"

namespace spstream {

/// \brief Configuration of one SS operator instance.
struct SsOptions {
  /// One predicate per query (or query group) whose results flow through
  /// this SS. A policy is satisfied when it intersects ANY predicate.
  std::vector<RoleSet> predicates;

  /// Name of the stream on this input (for DDP stream matching).
  std::string stream_name;

  /// Schema of the input (required when mask_attributes is set).
  SchemaPtr schema;

  /// Use the role->predicate posting-list index (the grouped-filter style
  /// speed-up of §V.A) instead of scanning every predicate per sp.
  bool use_predicate_index = true;

  /// Enforce attribute-granularity policies by nulling out attributes the
  /// predicate roles may not read (instead of only tuple-level pass/drop).
  bool mask_attributes = false;
};

/// \brief The SS state: predicates plus the optional role->predicate index.
class SsState {
 public:
  explicit SsState(const SsOptions& options);

  /// \brief Does the policy satisfy any predicate? Uses the index or the
  /// linear scan depending on options.
  bool Matches(const Policy& policy) const;

  /// \brief Indices of all predicates the policy satisfies (multi-query
  /// routing; used by SS splitting experiments).
  std::vector<size_t> MatchingPredicates(const Policy& policy) const;

  /// \brief Union of all predicate role sets.
  const RoleSet& predicate_union() const { return union_; }

  size_t predicate_count() const { return predicates_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<RoleSet> predicates_;
  RoleSet union_;
  bool use_index_;
  // Posting lists: role id -> predicate indices containing that role.
  std::vector<std::vector<uint32_t>> postings_;
};

/// \brief Physical SS operator.
class SsOperator : public Operator {
 public:
  SsOperator(ExecContext* ctx, SsOptions options, std::string label = "SS");

  const SsState& state() const { return state_; }

  // Durable state: only the tracker's batch timestamp survives a restart —
  // the SS restores FAIL-CLOSED (deny-all at that ts) and drops the sp/memo
  // buffers, so recovered tuples are denied until a fresh sp-batch arrives.
  bool HasDurableState() const override { return true; }
  void CheckpointState(std::string* out, bool full) override;
  void OnCheckpointDurable() override;
  Status RestoreState(std::string_view blob) override;

 protected:
  void Process(StreamElement elem, int port) override;
  /// Batch kernel: one timer per batch, one policy-match memo per tuple run
  /// between sps — per-tuple work between sps is a cached boolean.
  void ProcessBatch(ElementBatch& batch, int port) override;
  /// Columnar kernel: sps in the specials list delimit tuple runs; each
  /// run's first tuple decides via the slow path and the rest of the run
  /// rides the memo without ever being materialized. Passing rows narrow
  /// the selection vector in place; attribute masking clears validity bits.
  bool ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                       int port) override;

 private:
  void ProcessElement(StreamElement& elem);
  void HandleSp(StreamElement& elem);
  void HandleTuple(StreamElement& elem);
  /// Shared decision slow path (memo invalid): resolve the policy, check
  /// fail-closed installs, apply attribute masking (mutates `t`), refresh
  /// the memo and trace/audit/drop accounting. Returns whether `t` passes.
  /// Does NOT count tuples_in and does NOT emit.
  bool DecideTupleSlowPath(Tuple& t);
  void UpdateStateBytes();
  /// Null out attributes of `t` the predicate roles may not read; returns
  /// false when nothing remains visible (tuple must drop).
  bool ApplyAttributeMask(Tuple* t);
  void AuditDenial(const Tuple& t, const Policy& policy);

  SsOptions options_;
  SsState state_;
  PolicyTracker tracker_;
  // Sps of the newest batch, held until the segment's first authorized
  // tuple; emitted_ flags whether they already went downstream.
  std::vector<SecurityPunctuation> pending_sps_;
  bool pending_emitted_ = true;
  std::optional<Timestamp> pending_ts_;
  // Last observed tracker_.fail_closed_installs(); a change means an
  // sp-batch install faulted since the previous tuple (audit + metrics).
  int64_t seen_fail_closed_installs_ = 0;
  // Memoized access decision for the current tuple run (§III.B: the policy
  // is constant between sp-batches). Valid only while the tracker's policy
  // is uniform across tuples AND attribute masking has nothing to rewrite;
  // any arriving sp invalidates it. The cached policy backs the audit
  // record of memoized denials.
  bool memo_valid_ = false;
  bool memo_authorized_ = false;
  PolicyPtr memo_policy_;
  // Checkpoint cursor: tracker batch ts at the last durable checkpoint and
  // the ts staged by the last CheckpointState call.
  Timestamp ckpt_ts_ = kMinTimestamp;
  Timestamp pending_ckpt_ts_ = kMinTimestamp;
  // Sp-batch timestamp whose first enforcement decision has not been traced
  // yet (-1 when none): set on install, cleared when the next tuple's
  // decision emits the "ss.first_enforce" trace mark — the last milestone
  // of the sp-batch lifecycle trace.
  Timestamp first_enforce_ts_ = -1;
};

}  // namespace spstream
