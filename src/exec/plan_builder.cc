#include "exec/plan_builder.h"

#include <functional>

#include "exec/misc_ops.h"
#include "exec/sa_distinct.h"
#include "exec/sa_groupby.h"
#include "exec/sa_project.h"
#include "exec/sa_select.h"
#include "exec/sajoin.h"
#include "exec/ss_operator.h"

namespace spstream {

namespace {

/// Derived schema and stream-name context of a compiled subtree.
struct SubtreeInfo {
  Operator* top = nullptr;
  SchemaPtr schema;
  std::string stream_name;  // logical name used for DDP stream matching
};

class PlanCompiler {
 public:
  /// Factory producing the physical source operator for a stream leaf.
  using SourceFactory =
      std::function<Result<Operator*>(const std::string& stream_name)>;

  PlanCompiler(Pipeline* pipeline, SourceFactory make_source,
               const PhysicalPlanOptions& options,
               std::unordered_map<const LogicalNode*, Operator*>* node_ops)
      : pipeline_(pipeline),
        make_source_(std::move(make_source)),
        options_(options),
        node_ops_(node_ops) {}

  Result<SubtreeInfo> Compile(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo info, CompileNode(node));
    if (node_ops_) (*node_ops_)[node.get()] = info.top;
    return info;
  }

 private:
  Result<SubtreeInfo> CompileNode(const LogicalNodePtr& node) {
    switch (node->kind) {
      case LogicalNode::Kind::kSource:
        return CompileSource(node);
      case LogicalNode::Kind::kSs:
        return CompileSs(node);
      case LogicalNode::Kind::kSelect:
        return CompileSelect(node);
      case LogicalNode::Kind::kProject:
        return CompileProject(node);
      case LogicalNode::Kind::kJoin:
        return CompileJoin(node);
      case LogicalNode::Kind::kDistinct:
        return CompileDistinct(node);
      case LogicalNode::Kind::kGroupBy:
        return CompileGroupBy(node);
      case LogicalNode::Kind::kUnion:
        return CompileUnion(node);
    }
    return Status::Internal("unknown logical node kind");
  }

  Result<SubtreeInfo> CompileSource(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(Operator * src, make_source_(node->stream_name));
    SubtreeInfo info;
    info.top = src;
    info.schema = node->schema;
    info.stream_name = node->stream_name;
    return info;
  }

  Result<SubtreeInfo> CompileSs(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo child, Compile(node->children[0]));
    // A logical SS predicate list is conjunctive: compile to a cascade of
    // single-predicate shields (Rule 1 made physical).
    Operator* top = child.top;
    for (const RoleSet& pred : node->ss_predicates) {
      SsOptions opts;
      opts.predicates = {pred};
      opts.stream_name = child.stream_name;
      opts.schema = child.schema;
      opts.use_predicate_index = options_.ss_use_predicate_index;
      opts.mask_attributes = options_.ss_mask_attributes;
      auto* ss = pipeline_->Add<SsOperator>(std::move(opts));
      top->AddOutput(ss);
      top = ss;
    }
    if (node->ss_drop_sps) {
      auto* drop = pipeline_->Add<DropSpsOp>();
      top->AddOutput(drop);
      top = drop;
    }
    child.top = top;
    return child;
  }

  Result<SubtreeInfo> CompileSelect(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo child, Compile(node->children[0]));
    auto* sel = pipeline_->Add<SaSelect>(node->predicate);
    child.top->AddOutput(sel);
    child.top = sel;
    return child;
  }

  Result<SubtreeInfo> CompileProject(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo child, Compile(node->children[0]));
    auto* proj = pipeline_->Add<SaProject>(node->columns, child.schema);
    child.top->AddOutput(proj);
    child.top = proj;
    child.schema = proj->output_schema();
    return child;
  }

  Result<SubtreeInfo> CompileJoin(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo left, Compile(node->children[0]));
    SP_ASSIGN_OR_RETURN(SubtreeInfo right, Compile(node->children[1]));
    SaJoinOptions opts;
    opts.window_size = node->window;
    opts.left_window_size = node->window;
    opts.right_window_size =
        node->right_window > 0 ? node->right_window : node->window;
    opts.left_key_col = node->left_key;
    opts.right_key_col = node->right_key;
    opts.left_stream_name = left.stream_name;
    opts.right_stream_name = right.stream_name;
    opts.output_stream_name =
        left.stream_name + "_x_" + right.stream_name;
    opts.probe_method = options_.probe_method;
    opts.use_skipping_rule = options_.use_skipping_rule;
    Operator* join;
    if (options_.join_impl == PhysicalPlanOptions::JoinImpl::kIndex) {
      join = pipeline_->Add<SaJoinIndex>(std::move(opts));
    } else {
      join = pipeline_->Add<SaJoinNl>(std::move(opts));
    }
    left.top->AddOutput(join, 0);
    right.top->AddOutput(join, 1);

    std::vector<Field> fields = left.schema->fields();
    for (const Field& f : right.schema->fields()) fields.push_back(f);
    SubtreeInfo info;
    info.top = join;
    info.stream_name = left.stream_name + "_x_" + right.stream_name;
    info.schema = MakeSchema(info.stream_name, std::move(fields));
    return info;
  }

  Result<SubtreeInfo> CompileDistinct(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo child, Compile(node->children[0]));
    SaDistinctOptions opts;
    opts.key_col = node->key_col;
    opts.window_size = node->window;
    opts.stream_name = child.stream_name;
    opts.output_stream_name = child.stream_name + "_distinct";
    auto* dist = pipeline_->Add<SaDistinct>(std::move(opts));
    child.top->AddOutput(dist);
    child.top = dist;
    child.stream_name += "_distinct";
    return child;
  }

  Result<SubtreeInfo> CompileGroupBy(const LogicalNodePtr& node) {
    SP_ASSIGN_OR_RETURN(SubtreeInfo child, Compile(node->children[0]));
    SaGroupByOptions opts;
    opts.key_col = node->key_col;
    opts.agg_col = node->agg_col;
    opts.agg_fn = node->agg_fn;
    opts.window_size = node->window;
    opts.stream_name = child.stream_name;
    opts.output_stream_name = child.stream_name + "_agg";
    auto* gb = pipeline_->Add<SaGroupBy>(std::move(opts));
    child.top->AddOutput(gb);
    child.top = gb;
    child.stream_name += "_agg";
    child.schema = MakeSchema(
        child.stream_name,
        {Field{"group_key", ValueType::kNull},
         Field{AggFnToString(node->agg_fn), ValueType::kDouble}});
    return child;
  }

  Result<SubtreeInfo> CompileUnion(const LogicalNodePtr& node) {
    auto* u = pipeline_->Add<UnionOp>(static_cast<int>(node->children.size()));
    SubtreeInfo first;
    for (size_t i = 0; i < node->children.size(); ++i) {
      SP_ASSIGN_OR_RETURN(SubtreeInfo child, Compile(node->children[i]));
      child.top->AddOutput(u, static_cast<int>(i));
      if (i == 0) first = child;
    }
    first.top = u;
    return first;
  }

  Pipeline* pipeline_;
  SourceFactory make_source_;
  const PhysicalPlanOptions& options_;
  std::unordered_map<const LogicalNode*, Operator*>* node_ops_;
};

}  // namespace

Result<PhysicalPlan> BuildPhysicalPlan(
    Pipeline* pipeline, const LogicalNodePtr& plan,
    const std::unordered_map<std::string, std::vector<StreamElement>>& inputs,
    const PhysicalPlanOptions& options) {
  PhysicalPlan out;
  PlanCompiler compiler(
      pipeline,
      [&](const std::string& stream) -> Result<Operator*> {
        auto it = inputs.find(stream);
        if (it == inputs.end()) {
          return Status::NotFound("no input elements supplied for stream '" +
                                  stream + "'");
        }
        auto* src =
            pipeline->Add<SourceOperator>("src:" + stream, it->second);
        out.sources.push_back(src);
        return src;
      },
      options, &out.node_ops);
  SP_ASSIGN_OR_RETURN(SubtreeInfo info, compiler.Compile(plan));
  out.root = info.top;
  out.output_schema = info.schema;
  out.output_stream_name = info.stream_name;
  out.sink = pipeline->Add<CollectorSink>();
  info.top->AddOutput(out.sink);
  return out;
}

Result<StreamingPhysicalPlan> BuildStreamingPhysicalPlan(
    Pipeline* pipeline, const LogicalNodePtr& plan,
    const PhysicalPlanOptions& options) {
  StreamingPhysicalPlan out;
  PlanCompiler compiler(
      pipeline,
      [&](const std::string& stream) -> Result<Operator*> {
        auto* src = pipeline->Add<PushSource>("push:" + stream);
        out.sources.emplace_back(stream, src);
        return src;
      },
      options, &out.node_ops);
  SP_ASSIGN_OR_RETURN(SubtreeInfo info, compiler.Compile(plan));
  out.root = info.top;
  out.output_schema = info.schema;
  out.output_stream_name = info.stream_name;
  out.sink = pipeline->Add<CollectorSink>();
  info.top->AddOutput(out.sink);
  return out;
}

LogicalNodePtr ApplySsPlacement(const LogicalNodePtr& plan,
                                const RoleSet& query_roles,
                                SsPlacement placement) {
  LogicalNodePtr result = plan->Clone();
  switch (placement) {
    case SsPlacement::kPostFilter:
      return LogicalNode::Ss({query_roles}, std::move(result));
    case SsPlacement::kPreFilter:
    case SsPlacement::kIntermediate: {
      const bool drop = placement == SsPlacement::kPreFilter;
      std::function<LogicalNodePtr(LogicalNodePtr)> wrap =
          [&](LogicalNodePtr node) -> LogicalNodePtr {
        if (node->kind == LogicalNode::Kind::kSource) {
          auto ss = LogicalNode::Ss({query_roles}, node);
          ss->ss_drop_sps = drop;
          return ss;
        }
        for (LogicalNodePtr& child : node->children) {
          child = wrap(child);
        }
        return node;
      };
      return wrap(std::move(result));
    }
  }
  return result;
}

}  // namespace spstream
