// Security-aware selection σ (Table I): drops tuples failing the query
// condition; *delays* sp propagation until at least one tuple governed by
// the sp passes, and discards sps whose whole segment was filtered.
#pragma once

#include <optional>

#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/vector_eval.h"

namespace spstream {

class SaSelect : public Operator {
 public:
  SaSelect(ExecContext* ctx, ExprPtr predicate, std::string label = "select")
      : Operator(ctx, std::move(label)), predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }

 protected:
  void Process(StreamElement elem, int) override;
  /// Batch kernel: one timer and dispatch per batch, tight eval loop.
  void ProcessBatch(ElementBatch& batch, int) override;
  /// Columnar kernel: compile the predicate once (row fallback when it has
  /// no vectorized form), then narrow the batch's selection vector in
  /// place — dropped rows are never copied or materialized.
  bool ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                       int port) override;

 private:
  void ProcessElement(StreamElement& elem);

  ExprPtr predicate_;
  // Compiled-once vector form of predicate_ (the expression is immutable
  // after construction); nullopt until first ProcessColumnar, which falls
  // back to the scalar path permanently when compilation fails.
  std::optional<VectorPredicate> vector_pred_;
  bool vector_pred_tried_ = false;
  // Sps of the current batch, buffered until a covered tuple passes.
  std::vector<SecurityPunctuation> pending_sps_;
  bool pending_emitted_ = true;
  std::optional<Timestamp> pending_ts_;
};

}  // namespace spstream
