// Security-aware selection σ (Table I): drops tuples failing the query
// condition; *delays* sp propagation until at least one tuple governed by
// the sp passes, and discards sps whose whole segment was filtered.
#pragma once

#include <optional>

#include "exec/expr.h"
#include "exec/operator.h"

namespace spstream {

class SaSelect : public Operator {
 public:
  SaSelect(ExecContext* ctx, ExprPtr predicate, std::string label = "select")
      : Operator(ctx, std::move(label)), predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }

 protected:
  void Process(StreamElement elem, int) override;
  /// Batch kernel: one timer and dispatch per batch, tight eval loop.
  void ProcessBatch(ElementBatch& batch, int) override;

 private:
  void ProcessElement(StreamElement& elem);

  ExprPtr predicate_;
  // Sps of the current batch, buffered until a covered tuple passes.
  std::vector<SecurityPunctuation> pending_sps_;
  bool pending_emitted_ = true;
  std::optional<Timestamp> pending_ts_;
};

}  // namespace spstream
