#include "exec/window.h"

namespace spstream {

size_t Segment::MemoryBytes() const {
  size_t bytes = sizeof(Segment);
  bytes += policy ? policy->MemoryBytes() : 0;
  for (const SecurityPunctuation& sp : sps) bytes += sp.MemoryBytes();
  for (const Tuple& t : tuples) bytes += t.MemoryBytes();
  return bytes;
}

size_t SegmentedWindow::SegmentOverheadBytes(const Segment& s) {
  size_t bytes = sizeof(Segment);
  bytes += s.policy ? s.policy->MemoryBytes() : 0;
  for (const SecurityPunctuation& sp : s.sps) bytes += sp.MemoryBytes();
  return bytes;
}

std::pair<Segment*, bool> SegmentedWindow::InsertTuple(
    Tuple t, const PolicyPtr& policy,
    const std::vector<SecurityPunctuation>& batch_sps) {
  ++tuple_count_;
  if (!segments_.empty()) {
    Segment& tail = segments_.back();
    // Same policy object, or an equal policy, extends the tail segment —
    // this is the sp-sharing that keeps punctuation memory sublinear.
    if (tail.policy == policy ||
        (tail.policy && policy && *tail.policy == *policy)) {
      tail.tuples.push_back(std::move(t));
      bytes_ += tail.tuples.back().MemoryBytes();
      return {&tail, false};
    }
  }
  segments_.push_back(Segment{policy, batch_sps, {}});
  Segment& created = segments_.back();
  created.tuples.push_back(std::move(t));
  bytes_ += SegmentOverheadBytes(created) + created.tuples.back().MemoryBytes();
  return {&created, true};
}

SegmentedWindow::InvalidationStats SegmentedWindow::Invalidate(
    Timestamp now, const std::function<void(Segment*)>& on_purge) {
  InvalidationStats stats;
  const Timestamp cutoff = now - window_size_;
  while (!segments_.empty()) {
    Segment& head = segments_.front();
    while (!head.tuples.empty() && head.tuples.front().ts <= cutoff) {
      bytes_ -= head.tuples.front().MemoryBytes();
      head.tuples.pop_front();
      --tuple_count_;
      ++stats.tuples_removed;
    }
    if (!head.tuples.empty()) break;
    // All tuples of the head segment are invalidated: purge its sps too
    // (§V.B.1 step 2).
    ++stats.segments_purged;
    stats.sps_purged += head.sps.size();
    bytes_ -= SegmentOverheadBytes(head);
    if (on_purge) on_purge(&head);
    segments_.pop_front();
  }
  return stats;
}

}  // namespace spstream
