#include "exec/window.h"

#include <algorithm>

#include "security/sp_codec.h"
#include "storage/state_codec.h"

namespace spstream {

namespace {

// Record kinds inside a window delta (docs/DURABILITY.md).
constexpr uint8_t kRecNewSegment = 0;   // segment created since the cursor
constexpr uint8_t kRecTailAppend = 1;   // new tuples of the old tail segment

void PutSegmentFull(const Segment& s, std::string* out) {
  PutVarint(s.seq, out);
  out->push_back(static_cast<char>(kRecNewSegment));
  out->push_back(s.policy ? 1 : 0);
  if (s.policy) {
    storage::PutRoleSet(s.policy->allowed(), out);
    PutVarint(ZigZagEncode(s.policy->ts()), out);
  }
  PutVarint(s.sps.size(), out);
  for (const SecurityPunctuation& sp : s.sps) EncodeSp(sp, out);
  PutVarint(s.appended, out);
  // Surviving tuples only: expired ones are gone and the restore side never
  // needs them (expiry is re-derived from the watermark).
  PutVarint(s.tuples.size(), out);
  for (const Tuple& t : s.tuples) storage::PutTuple(t, out);
}

}  // namespace

size_t Segment::MemoryBytes() const {
  size_t bytes = sizeof(Segment);
  bytes += policy ? policy->MemoryBytes() : 0;
  for (const SecurityPunctuation& sp : sps) bytes += sp.MemoryBytes();
  for (const Tuple& t : tuples) bytes += t.MemoryBytes();
  return bytes;
}

size_t SegmentedWindow::SegmentOverheadBytes(const Segment& s) {
  size_t bytes = sizeof(Segment);
  bytes += s.policy ? s.policy->MemoryBytes() : 0;
  for (const SecurityPunctuation& sp : s.sps) bytes += sp.MemoryBytes();
  return bytes;
}

std::pair<Segment*, bool> SegmentedWindow::InsertTuple(
    Tuple t, const PolicyPtr& policy,
    const std::vector<SecurityPunctuation>& batch_sps) {
  ++tuple_count_;
  if (!segments_.empty()) {
    Segment& tail = segments_.back();
    // Same policy object, or an equal policy, extends the tail segment —
    // this is the sp-sharing that keeps punctuation memory sublinear.
    if (tail.policy == policy ||
        (tail.policy && policy && *tail.policy == *policy)) {
      tail.tuples.push_back(std::move(t));
      ++tail.appended;
      bytes_ += tail.tuples.back().MemoryBytes();
      return {&tail, false};
    }
  }
  segments_.push_back(Segment{policy, batch_sps, {}, next_seq_++, 0});
  Segment& created = segments_.back();
  created.tuples.push_back(std::move(t));
  ++created.appended;
  bytes_ += SegmentOverheadBytes(created) + created.tuples.back().MemoryBytes();
  return {&created, true};
}

SegmentedWindow::InvalidationStats SegmentedWindow::Invalidate(
    Timestamp now, const std::function<void(Segment*)>& on_purge) {
  InvalidationStats stats;
  if (now > watermark_) watermark_ = now;
  const Timestamp cutoff = now - window_size_;
  while (!segments_.empty()) {
    Segment& head = segments_.front();
    while (!head.tuples.empty() && head.tuples.front().ts <= cutoff) {
      bytes_ -= head.tuples.front().MemoryBytes();
      head.tuples.pop_front();
      --tuple_count_;
      ++stats.tuples_removed;
    }
    if (!head.tuples.empty()) break;
    // All tuples of the head segment are invalidated: purge its sps too
    // (§V.B.1 step 2).
    ++stats.segments_purged;
    stats.sps_purged += head.sps.size();
    bytes_ -= SegmentOverheadBytes(head);
    if (on_purge) on_purge(&head);
    segments_.pop_front();
  }
  return stats;
}

// ---- incremental checkpointing -------------------------------------------

void SegmentedWindow::SetCursorToTail(uint64_t* seq, uint64_t* appended) const {
  if (segments_.empty()) {
    // Nothing resident: park the cursor on the last id ever created so a
    // future segment (seq >= next_seq_) still reads as "new".
    *seq = next_seq_ - 1;
    *appended = 0;
  } else {
    *seq = segments_.back().seq;
    *appended = segments_.back().appended;
  }
}

bool SegmentedWindow::CheckpointClean() const {
  for (const Segment& s : segments_) {
    if (s.seq > ckpt_seq_) return false;
    if (s.seq == ckpt_seq_ && s.appended > ckpt_appended_) return false;
  }
  return true;
}

void SegmentedWindow::CheckpointDelta(std::string* out, bool full) {
  out->push_back(full ? 1 : 0);
  PutVarint(ZigZagEncode(watermark_), out);
  PutVarint(next_seq_, out);

  size_t count = 0;
  std::string body;
  for (const Segment& s : segments_) {
    if (full || s.seq > ckpt_seq_) {
      PutSegmentFull(s, &body);
      ++count;
    } else if (s.seq == ckpt_seq_ && s.appended > ckpt_appended_) {
      // The segment that was the tail at the last durable checkpoint grew.
      // Only the tail ever takes appends, so there is at most one of these.
      PutVarint(s.seq, &body);
      body.push_back(static_cast<char>(kRecTailAppend));
      PutVarint(s.appended, &body);
      const uint64_t new_since = s.appended - ckpt_appended_;
      const uint64_t n =
          std::min<uint64_t>(new_since, s.tuples.size());  // some may have expired
      PutVarint(n, &body);
      for (size_t i = s.tuples.size() - static_cast<size_t>(n);
           i < s.tuples.size(); ++i) {
        storage::PutTuple(s.tuples[i], &body);
      }
      ++count;
    }
  }
  PutVarint(count, out);
  out->append(body);
  SetCursorToTail(&pending_seq_, &pending_appended_);
}

void SegmentedWindow::CommitCheckpointCursor() {
  ckpt_seq_ = pending_seq_;
  ckpt_appended_ = pending_appended_;
}

Status SegmentedWindow::ApplyCheckpoint(std::string_view data,
                                        size_t* offset) {
  if (*offset >= data.size()) {
    return Status::Internal("window delta: truncated header");
  }
  const bool full = data[*offset] != 0;
  ++*offset;
  SP_ASSIGN_OR_RETURN(uint64_t wm_raw, GetVarint(data, offset));
  const Timestamp watermark = ZigZagDecode(wm_raw);
  SP_ASSIGN_OR_RETURN(uint64_t next_seq, GetVarint(data, offset));
  SP_ASSIGN_OR_RETURN(uint64_t count, GetVarint(data, offset));

  if (full) {
    segments_.clear();
    tuple_count_ = 0;
    bytes_ = 0;
  }

  for (uint64_t r = 0; r < count; ++r) {
    SP_ASSIGN_OR_RETURN(uint64_t seq, GetVarint(data, offset));
    if (*offset >= data.size()) {
      return Status::Internal("window delta: truncated record");
    }
    const uint8_t kind = static_cast<uint8_t>(data[*offset]);
    ++*offset;
    if (kind == kRecNewSegment) {
      if (*offset >= data.size()) {
        return Status::Internal("window delta: truncated segment");
      }
      const bool has_policy = data[*offset] != 0;
      ++*offset;
      PolicyPtr policy;
      if (has_policy) {
        SP_ASSIGN_OR_RETURN(RoleSet roles, storage::GetRoleSet(data, offset));
        SP_ASSIGN_OR_RETURN(uint64_t ts_raw, GetVarint(data, offset));
        policy = MakePolicy(std::move(roles), ZigZagDecode(ts_raw));
      }
      SP_ASSIGN_OR_RETURN(uint64_t n_sps, GetVarint(data, offset));
      std::vector<SecurityPunctuation> sps;
      sps.reserve(n_sps);
      for (uint64_t i = 0; i < n_sps; ++i) {
        SP_ASSIGN_OR_RETURN(SecurityPunctuation sp, DecodeSp(data, offset));
        sps.push_back(std::move(sp));
      }
      SP_ASSIGN_OR_RETURN(uint64_t appended, GetVarint(data, offset));
      SP_ASSIGN_OR_RETURN(uint64_t n_tuples, GetVarint(data, offset));
      if (!segments_.empty() && segments_.back().seq >= seq) {
        return Status::Internal("window delta: segment seq out of order");
      }
      segments_.push_back(
          Segment{std::move(policy), std::move(sps), {}, seq, appended});
      Segment& created = segments_.back();
      for (uint64_t i = 0; i < n_tuples; ++i) {
        SP_ASSIGN_OR_RETURN(Tuple t, storage::GetTuple(data, offset));
        created.tuples.push_back(std::move(t));
        bytes_ += created.tuples.back().MemoryBytes();
        ++tuple_count_;
      }
      bytes_ += SegmentOverheadBytes(created);
    } else if (kind == kRecTailAppend) {
      SP_ASSIGN_OR_RETURN(uint64_t appended, GetVarint(data, offset));
      SP_ASSIGN_OR_RETURN(uint64_t n_new, GetVarint(data, offset));
      if (segments_.empty() || segments_.back().seq != seq) {
        return Status::Internal("window delta: tail-append targets seq " +
                                std::to_string(seq) +
                                " which is not the resident tail");
      }
      Segment& tail = segments_.back();
      tail.appended = appended;
      for (uint64_t i = 0; i < n_new; ++i) {
        SP_ASSIGN_OR_RETURN(Tuple t, storage::GetTuple(data, offset));
        tail.tuples.push_back(std::move(t));
        bytes_ += tail.tuples.back().MemoryBytes();
        ++tuple_count_;
      }
    } else {
      return Status::Internal("window delta: unknown record kind " +
                              std::to_string(kind));
    }
  }

  next_seq_ = std::max(next_seq_, next_seq);
  // Re-derive expiry: the live run invalidated up to `watermark` before
  // this delta was cut, and expiry is a monotone threshold on tuple ts.
  if (watermark > kMinTimestamp) Invalidate(watermark);
  SetCursorToTail(&ckpt_seq_, &ckpt_appended_);
  pending_seq_ = ckpt_seq_;
  pending_appended_ = ckpt_appended_;
  return Status::OK();
}

}  // namespace spstream
