// Time-based sliding window organized as s-punctuated segments (§V.B):
// runs of tuples sharing one access-control policy, each preceded by the
// sp(s) describing it. Invalidation purges a segment's sps exactly when its
// last tuple expires.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "security/policy.h"
#include "security/security_punctuation.h"
#include "stream/tuple.h"

namespace spstream {

/// \brief One s-punctuated segment: a policy, the sps that expressed it, and
/// the run of tuples it governs (chronological, newest at the back).
struct Segment {
  PolicyPtr policy;
  std::vector<SecurityPunctuation> sps;
  std::deque<Tuple> tuples;
  /// Stable creation id within one window (1-based, ascending front to
  /// back) — the address space of incremental checkpoint records.
  uint64_t seq = 0;
  /// Tuples ever appended to this segment, including ones already expired;
  /// the checkpoint cursor counts in this coordinate so expiry between two
  /// checkpoints cannot shift what "new since last delta" means.
  uint64_t appended = 0;

  size_t MemoryBytes() const;
};

/// \brief Sliding window over one join input, segment-partitioned.
///
/// Tuples are appended at the tail (most recent); expiry removes from the
/// head — the list structure of §V.B.1. Segment objects have stable
/// addresses for the lifetime of their residency (the SPIndex points at
/// them).
class SegmentedWindow {
 public:
  explicit SegmentedWindow(Timestamp window_size)
      : window_size_(window_size) {}

  /// \brief Append a tuple under `policy`. Starts a new segment when the
  /// policy differs from the tail segment's; `batch_sps` (the sps that
  /// carried the policy) are recorded on the new segment.
  /// \return the segment holding the tuple, and whether it was just created.
  std::pair<Segment*, bool> InsertTuple(
      Tuple t, const PolicyPtr& policy,
      const std::vector<SecurityPunctuation>& batch_sps);

  struct InvalidationStats {
    size_t tuples_removed = 0;
    size_t segments_purged = 0;
    size_t sps_purged = 0;
  };

  /// \brief Remove tuples with ts <= now - window_size from the head.
  /// `on_purge` (optional) fires for each fully-drained segment while it is
  /// still alive, so callers can unhook index entries.
  InvalidationStats Invalidate(
      Timestamp now, const std::function<void(Segment*)>& on_purge = {});

  std::deque<Segment>& segments() { return segments_; }
  const std::deque<Segment>& segments() const { return segments_; }

  size_t tuple_count() const { return tuple_count_; }
  size_t segment_count() const { return segments_.size(); }
  Timestamp window_size() const { return window_size_; }

  // ---- incremental checkpointing (docs/DURABILITY.md) --------------------
  // The delta records only what changed since the last DURABLE checkpoint:
  // segments created since then in full, plus the surviving new tuples of
  // the segment that was the tail at that checkpoint. Expiry is never
  // recorded — it is a monotone function of the watermark, so the restore
  // side re-derives it by invalidating at the serialized watermark.

  /// \brief Append the delta (or a complete snapshot when `full`) to `out`.
  /// Does NOT advance the checkpoint cursor; call CommitCheckpointCursor()
  /// once the delta is durable.
  void CheckpointDelta(std::string* out, bool full);

  /// \brief The last CheckpointDelta's interval is durable: future deltas
  /// start after it.
  void CommitCheckpointCursor();

  /// \brief True when CheckpointDelta would record nothing.
  bool CheckpointClean() const;

  /// \brief Apply one delta blob starting at `*offset` (chain order,
  /// oldest first). Leaves the checkpoint cursor at the applied state.
  Status ApplyCheckpoint(std::string_view data, size_t* offset);

  /// O(1): maintained incrementally by InsertTuple/Invalidate — the window
  /// used to be walked in full (every segment, tuple and value) on every
  /// call, which made per-tuple state accounting O(window) and dominated
  /// single-shard join cost. Resident tuples/sps/policies are immutable
  /// while windowed, so add-at-insert / subtract-at-expiry stays exact.
  /// Callers mutating segments() directly would desync the counter; none
  /// do (the SPIndex only links to segments).
  size_t MemoryBytes() const { return sizeof(SegmentedWindow) + bytes_; }

 private:
  /// Bytes of a segment minus its tuples (header, policy, sps) — the part
  /// accounted at segment creation and purge.
  static size_t SegmentOverheadBytes(const Segment& s);

  /// Reset the checkpoint cursor to the current tail (or "nothing new"
  /// when the window is empty).
  void SetCursorToTail(uint64_t* seq, uint64_t* appended) const;

  Timestamp window_size_;
  std::deque<Segment> segments_;
  size_t tuple_count_ = 0;
  size_t bytes_ = 0;  // contents: segment overheads + resident tuples

  uint64_t next_seq_ = 1;  // id of the next segment created
  /// Highest invalidation timestamp seen (the serialized expiry horizon).
  Timestamp watermark_ = kMinTimestamp;
  // Committed cursor: tail position at the last durable checkpoint.
  uint64_t ckpt_seq_ = 0;
  uint64_t ckpt_appended_ = 0;
  // Staged cursor: tail position at the last CheckpointDelta call.
  uint64_t pending_seq_ = 0;
  uint64_t pending_appended_ = 0;
};

}  // namespace spstream
