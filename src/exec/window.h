// Time-based sliding window organized as s-punctuated segments (§V.B):
// runs of tuples sharing one access-control policy, each preceded by the
// sp(s) describing it. Invalidation purges a segment's sps exactly when its
// last tuple expires.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/types.h"
#include "security/policy.h"
#include "security/security_punctuation.h"
#include "stream/tuple.h"

namespace spstream {

/// \brief One s-punctuated segment: a policy, the sps that expressed it, and
/// the run of tuples it governs (chronological, newest at the back).
struct Segment {
  PolicyPtr policy;
  std::vector<SecurityPunctuation> sps;
  std::deque<Tuple> tuples;

  size_t MemoryBytes() const;
};

/// \brief Sliding window over one join input, segment-partitioned.
///
/// Tuples are appended at the tail (most recent); expiry removes from the
/// head — the list structure of §V.B.1. Segment objects have stable
/// addresses for the lifetime of their residency (the SPIndex points at
/// them).
class SegmentedWindow {
 public:
  explicit SegmentedWindow(Timestamp window_size)
      : window_size_(window_size) {}

  /// \brief Append a tuple under `policy`. Starts a new segment when the
  /// policy differs from the tail segment's; `batch_sps` (the sps that
  /// carried the policy) are recorded on the new segment.
  /// \return the segment holding the tuple, and whether it was just created.
  std::pair<Segment*, bool> InsertTuple(
      Tuple t, const PolicyPtr& policy,
      const std::vector<SecurityPunctuation>& batch_sps);

  struct InvalidationStats {
    size_t tuples_removed = 0;
    size_t segments_purged = 0;
    size_t sps_purged = 0;
  };

  /// \brief Remove tuples with ts <= now - window_size from the head.
  /// `on_purge` (optional) fires for each fully-drained segment while it is
  /// still alive, so callers can unhook index entries.
  InvalidationStats Invalidate(
      Timestamp now, const std::function<void(Segment*)>& on_purge = {});

  std::deque<Segment>& segments() { return segments_; }
  const std::deque<Segment>& segments() const { return segments_; }

  size_t tuple_count() const { return tuple_count_; }
  size_t segment_count() const { return segments_.size(); }
  Timestamp window_size() const { return window_size_; }

  /// O(1): maintained incrementally by InsertTuple/Invalidate — the window
  /// used to be walked in full (every segment, tuple and value) on every
  /// call, which made per-tuple state accounting O(window) and dominated
  /// single-shard join cost. Resident tuples/sps/policies are immutable
  /// while windowed, so add-at-insert / subtract-at-expiry stays exact.
  /// Callers mutating segments() directly would desync the counter; none
  /// do (the SPIndex only links to segments).
  size_t MemoryBytes() const { return sizeof(SegmentedWindow) + bytes_; }

 private:
  /// Bytes of a segment minus its tuples (header, policy, sps) — the part
  /// accounted at segment creation and purge.
  static size_t SegmentOverheadBytes(const Segment& s);

  Timestamp window_size_;
  std::deque<Segment> segments_;
  size_t tuple_count_ = 0;
  size_t bytes_ = 0;  // contents: segment overheads + resident tuples
};

}  // namespace spstream
