#include "exec/sajoin.h"

#include <algorithm>
#include <cassert>

#include "common/audit_log.h"
#include "security/sp_codec.h"

namespace spstream {

namespace {

/// Audit record for a join result suppressed by incompatible base policies.
void AuditJoinDenial(AuditLog* log, const Operator& op,
                     const std::string& stream, const Tuple& left,
                     const Tuple& right, const Policy& left_policy,
                     const Policy& right_policy, const RoleCatalog& roles) {
  AuditEvent e;
  e.kind = AuditEventKind::kDenial;
  e.scope = op.query_tag();
  e.stream = stream;
  e.tuple_id = std::max(left.tid, right.tid);
  e.sp_ts = std::max(left_policy.ts(), right_policy.ts());
  e.roles = left_policy.allowed().ToString(roles) + "∩" +
            right_policy.allowed().ToString(roles);
  e.detail = "join policies incompatible (empty intersection)";
  log->Append(std::move(e));
}

/// Probe-loop key equality. The inner loop runs once per resident opposite
/// tuple, so the common case — both keys int64 — compares inline instead of
/// calling Value::Compare; everything else (strings, nulls, int64/double
/// cross-kind numeric equality) falls back to the full comparison.
struct KeyMatcher {
  const Value& key;
  const bool is_i64;
  const int64_t i64;

  explicit KeyMatcher(const Value& k)
      : key(k), is_i64(k.is_int64()), i64(is_i64 ? k.int64() : 0) {}

  bool operator()(const Value& other) const {
    if (is_i64 && other.is_int64()) return other.int64() == i64;
    return other == key;
  }
};

}  // namespace

SaJoinBase::SaJoinBase(ExecContext* ctx, SaJoinOptions options,
                       std::string label)
    : Operator(ctx, std::move(label), /*num_inputs=*/2),
      options_(std::move(options)),
      trackers_{PolicyTracker(ctx->roles, options_.left_stream_name),
                PolicyTracker(ctx->roles, options_.right_stream_name)},
      windows_{SegmentedWindow(options_.left_window_size > 0
                                   ? options_.left_window_size
                                   : options_.window_size),
               SegmentedWindow(options_.right_window_size > 0
                                   ? options_.right_window_size
                                   : options_.window_size)} {}

void SaJoinBase::UpdateStateBytes() {
  metrics_.NoteStateBytes(static_cast<int64_t>(
      windows_[0].MemoryBytes() + windows_[1].MemoryBytes() +
      trackers_[0].MemoryBytes() + trackers_[1].MemoryBytes()));
}

void SaJoinBase::EmitJoinResult(const Tuple& left, const Tuple& right,
                                const Policy& left_policy,
                                const Policy& right_policy) {
  // Intersect the base tuples' policies; incompatible policies discard the
  // result (Table I join semantics).
  RoleSet out_roles =
      RoleSet::Intersect(left_policy.allowed(), right_policy.allowed());
  if (out_roles.Empty()) {
    ++metrics_.tuples_dropped_security;
    if (AuditLog* log = audit()) {
      AuditJoinDenial(log, *this, options_.output_stream_name, left, right,
                      left_policy, right_policy, *ctx_->roles);
    }
    return;
  }
  const Timestamp out_ts = std::max(left.ts, right.ts);
  if (col_out_ != nullptr) {
    // Columnar emission: the result's values go straight into the output
    // batch's columns — no Tuple, no StreamElement, no downstream re-wrap.
    if (output_emitter_.NeedsSp(out_roles, out_ts)) {
      ++metrics_.sps_out;
      col_out_->AppendSpecial(StreamElement(
          SynthesizeSp(out_roles, output_emitter_.MonotoneTs(out_ts),
                       options_.output_stream_name, *ctx_->roles)));
    }
    ++metrics_.tuples_out;
    col_out_->AppendComposedTuple(options_.output_sid,
                                  std::max(left.tid, right.tid), out_ts,
                                  left.values, right.values);
    return;
  }
  if (output_emitter_.NeedsSp(out_roles, out_ts)) {
    EmitSp(SynthesizeSp(out_roles, output_emitter_.MonotoneTs(out_ts),
                        options_.output_stream_name, *ctx_->roles));
  }
  Tuple out;
  out.sid = options_.output_sid;
  // Direction-stable derived tuple id: Rule 4 (join commutativity) must
  // hold for the full tuple, metadata included.
  out.tid = std::max(left.tid, right.tid);
  out.ts = out_ts;
  out.values.reserve(left.values.size() + right.values.size());
  out.values.insert(out.values.end(), left.values.begin(),
                    left.values.end());
  out.values.insert(out.values.end(), right.values.begin(),
                    right.values.end());
  EmitTuple(std::move(out));
}

void SaJoinBase::ProcessSp(const SecurityPunctuation& sp, int port) {
  ++metrics_.sps_in;
  ScopedTimer t(&metrics_.sp_maintenance_nanos);
  // 1. Policy Collection: the sp installs the policy for upcoming tuples.
  if (trackers_[port].OnSp(sp)) ++metrics_.policy_installs;
}

void SaJoinBase::ProcessTuple(Tuple t, int port) {
  ++metrics_.tuples_in;
  const int opp = 1 - port;

  // 2. Invalidation: expire the opposite window's head by this tuple's ts;
  // a drained segment's sps purge with it.
  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    windows_[opp].Invalidate(
        t.ts, [&](Segment* seg) { OnSegmentPurged(seg, opp); });
  }

  // Resolve this tuple's policy and insert it into its own window.
  PolicyPtr t_policy;
  {
    ScopedTimer tm(&metrics_.sp_maintenance_nanos);
    t_policy = trackers_[port].PolicyFor(t);
  }
  Segment* seg;
  bool created;
  {
    ScopedTimer tm(&metrics_.tuple_maintenance_nanos);
    std::tie(seg, created) = windows_[port].InsertTuple(
        t, t_policy, trackers_[port].current_batch());
  }
  if (created) {
    ScopedTimer tm(&metrics_.sp_maintenance_nanos);
    OnSegmentTouched(seg, created, port);
  }

  // 3. Join: probe the opposite window.
  {
    ScopedTimer tj(&metrics_.join_nanos);
    Probe(t, t_policy, port);
  }
}

void SaJoinBase::Process(StreamElement elem, int port) {
  ScopedTimer total(&metrics_.total_nanos);
  assert(port == 0 || port == 1);
  if (elem.is_sp()) {
    ProcessSp(elem.sp(), port);
    return;
  }
  if (!elem.is_tuple()) {
    Emit(std::move(elem));
    return;
  }
  ProcessTuple(std::move(elem.tuple()), port);
  UpdateStateBytes();
}

void SaJoinBase::ProcessBatch(ElementBatch& batch, int port) {
  ScopedTimer total(&metrics_.total_nanos);
  assert(port == 0 || port == 1);
  bool state_changed = false;
  for (StreamElement& e : batch.elements()) {
    if (e.is_sp()) {
      ProcessSp(e.sp(), port);
      state_changed = true;
    } else if (e.is_tuple()) {
      ProcessTuple(std::move(e.tuple()), port);
      state_changed = true;
    } else {
      Emit(std::move(e));
    }
  }
  // One gauge refresh per batch. Peaks are sampled at batch granularity;
  // window state grows monotonically between invalidations, so the
  // end-of-batch sample tracks the true peak closely (exactly at size 1).
  if (state_changed) UpdateStateBytes();
}

namespace {
/// Clears the columnar-output pointer even if Probe throws (the engine
/// quarantines the query on exceptions, but the operator must not be left
/// pointing at a dead stack batch).
struct ColOutScope {
  ElementBatch** slot;
  ColOutScope(ElementBatch** s, ElementBatch* next) : slot(s) { *slot = next; }
  ~ColOutScope() { *slot = nullptr; }
};
}  // namespace

bool SaJoinBase::ProcessColumnar(ElementBatch& batch, ElementBatch* out,
                                 int port) {
  ScopedTimer total(&metrics_.total_nanos);
  assert(port == 0 || port == 1);
  ColOutScope scope(&col_out_, out);
  bool state_changed = false;
  std::vector<ElementBatch::Special>& specials = batch.specials();
  size_t si = 0;
  auto handle_special = [&](ElementBatch::Special& s) {
    if (s.elem.is_sp()) {
      ProcessSp(s.elem.sp(), port);
      state_changed = true;
    } else {
      out->AppendSpecial(std::move(s.elem));  // control passes through
    }
  };
  const size_t live = batch.num_live_rows();
  for (size_t k = 0; k < live; ++k) {
    const uint32_t r = batch.live_row(k);
    while (si < specials.size() && specials[si].before_row <= r) {
      handle_special(specials[si]);
      ++si;
    }
    // The windows store Tuples, so each input row materializes once here —
    // the same cost the row path paid to carry the element in.
    ProcessTuple(batch.MaterializeTuple(r), port);
    state_changed = true;
  }
  for (; si < specials.size(); ++si) {
    handle_special(specials[si]);
  }
  if (state_changed) UpdateStateBytes();
  return true;
}

void SaJoinNl::Probe(const Tuple& t, const PolicyPtr& t_policy,
                     int from_port) {
  const int opp = 1 - from_port;
  const KeyMatcher key(KeyOf(t, from_port));
  for (Segment& seg : windows_[opp].segments()) {
    if (options_.probe_method == SaJoinOptions::ProbeMethod::kFilterAndProbe) {
      // Filter-and-probe: skip the whole segment when policies are
      // incompatible, before touching any tuple.
      if (!t_policy->allowed().Intersects(seg.policy->allowed())) continue;
    }
    for (const Tuple& u : seg.tuples) {
      if (!key(KeyOf(u, opp))) continue;
      if (options_.probe_method ==
          SaJoinOptions::ProbeMethod::kProbeAndFilter) {
        if (!t_policy->allowed().Intersects(seg.policy->allowed())) {
          ++metrics_.tuples_dropped_security;
          if (AuditLog* log = audit()) {
            AuditJoinDenial(log, *this, options_.output_stream_name, t, u,
                            *t_policy, *seg.policy, *ctx_->roles);
          }
          continue;
        }
      }
      if (from_port == 0) {
        EmitJoinResult(t, u, *t_policy, *seg.policy);
      } else {
        EmitJoinResult(u, t, *seg.policy, *t_policy);
      }
    }
  }
}

// ---------------------------------------------------------------- SpIndex

SpIndex::~SpIndex() {
  for (auto& [seg, entry] : by_segment_) {
    (void)seg;
    delete entry;
  }
}

void SpIndex::Insert(Segment* segment) {
  assert(segment->policy);
  auto* entry = new Entry();
  entry->segment = segment;
  entry->roles = segment->policy->allowed().ToIds();  // ascending
  if (entry->roles.empty()) {
    // Deny-all segments can never be policy-compatible; indexing them under
    // no role keeps them unreachable, which is exactly right.
    by_segment_.emplace(segment, entry);
    ++entry_count_;
    return;
  }
  entry->first_role = entry->roles.front();
  entry->next.assign(entry->roles.size(), nullptr);
  for (size_t i = 0; i < entry->roles.size(); ++i) {
    const RoleId r = entry->roles[i];
    if (r >= rnodes_.size()) rnodes_.resize(r + 1);
    RNode& node = rnodes_[r];
    if (node.tail == nullptr) {
      node.head = node.tail = entry;
    } else {
      // Link the previous tail's next-pointer-for-role-r to this entry.
      size_t slot = 0;
      Entry* prev = FindEntrySlot(node.tail, r, &slot);
      assert(prev != nullptr);
      prev->next[slot] = entry;
      node.tail = entry;
    }
  }
  by_segment_.emplace(segment, entry);
  ++entry_count_;
}

SpIndex::Entry* SpIndex::FindEntrySlot(Entry* e, RoleId role,
                                       size_t* slot) const {
  auto it = std::lower_bound(e->roles.begin(), e->roles.end(), role);
  if (it == e->roles.end() || *it != role) return nullptr;
  *slot = static_cast<size_t>(it - e->roles.begin());
  return e;
}

void SpIndex::Remove(Segment* segment) {
  auto it = by_segment_.find(segment);
  if (it == by_segment_.end()) return;
  Entry* entry = it->second;
  for (size_t i = 0; i < entry->roles.size(); ++i) {
    const RoleId r = entry->roles[i];
    RNode& node = rnodes_[r];
    // FIFO expiry: the entry is at this role's r-head (property 3). Guard
    // anyway by unlinking from an arbitrary position if it is not.
    if (node.head == entry) {
      node.head = entry->next[i];
      if (node.head == nullptr) node.tail = nullptr;
    } else {
      Entry* cur = node.head;
      while (cur != nullptr) {
        size_t slot = 0;
        if (FindEntrySlot(cur, r, &slot) == nullptr) break;
        Entry* nxt = cur->next[slot];
        if (nxt == entry) {
          cur->next[slot] = entry->next[i];
          if (node.tail == entry) node.tail = cur;
          break;
        }
        cur = nxt;
      }
    }
  }
  by_segment_.erase(it);
  delete entry;
  --entry_count_;
}

size_t SpIndex::Probe(
    const RoleSet& probe_roles, bool use_skipping_rule,
    const std::function<void(Segment*, bool first_visit)>& fn) {
  size_t touched = 0;
  ++stamp_;
  std::vector<RoleId> roles = probe_roles.ToIds();
  for (RoleId r : roles) {
    if (r >= rnodes_.size()) continue;
    Entry* cur = rnodes_[r].head;
    while (cur != nullptr) {
      ++touched;
      size_t slot = 0;
      FindEntrySlot(cur, r, &slot);
      Entry* nxt = cur->next[slot];
      if (use_skipping_rule) {
        // Lemma 5.1, generalized: the probe visits its roles ascending, so
        // an entry is processed exactly when the current r-node role is the
        // *first role it shares with the probe policy*. (The paper states
        // the rule with the entry's globally-first role, which coincides
        // when the probe policy covers it; using the first *common* role is
        // the correct rule for arbitrary probe policies.)
        RoleId first_common = r;
        for (RoleId er : cur->roles) {
          if (er >= r) break;  // nothing smaller shared
          if (probe_roles.Contains(er)) {
            first_common = er;
            break;
          }
        }
        if (first_common == r) fn(cur->segment, /*first_visit=*/true);
      } else {
        // Naive mode (the ablation baseline the skipping rule replaces):
        // the segment is processed once per role it shares with the probe
        // policy. The visit stamp only tells the caller which encounter is
        // the first, so it can suppress duplicate *emission* while still
        // paying the duplicate *processing* cost.
        const bool first = cur->visit_stamp != stamp_;
        cur->visit_stamp = stamp_;
        fn(cur->segment, first);
      }
      cur = nxt;
    }
  }
  return touched;
}

size_t SpIndex::MemoryBytes() const {
  size_t bytes = sizeof(SpIndex) + rnodes_.capacity() * sizeof(RNode);
  for (const auto& [seg, entry] : by_segment_) {
    (void)seg;
    bytes += sizeof(Entry) + entry->roles.capacity() * sizeof(RoleId) +
             entry->next.capacity() * sizeof(Entry*);
  }
  bytes += by_segment_.size() * (sizeof(void*) * 4);
  return bytes;
}

// ---- durable state (docs/DURABILITY.md) ------------------------------------

void SaJoinBase::CheckpointState(std::string* out, bool full) {
  for (int port = 0; port < 2; ++port) {
    pending_tracker_ts_[port] = trackers_[port].current_ts();
  }
  pending_emitter_ts_ = output_emitter_.last_ts();
  if (!full && windows_[0].CheckpointClean() && windows_[1].CheckpointClean() &&
      pending_tracker_ts_[0] == ckpt_tracker_ts_[0] &&
      pending_tracker_ts_[1] == ckpt_tracker_ts_[1] &&
      pending_emitter_ts_ == ckpt_emitter_ts_) {
    return;  // nothing changed since the last durable checkpoint
  }
  for (int port = 0; port < 2; ++port) {
    PutVarint(ZigZagEncode(pending_tracker_ts_[port]), out);
    windows_[port].CheckpointDelta(out, full);
  }
  PutVarint(ZigZagEncode(pending_emitter_ts_), out);
}

void SaJoinBase::OnCheckpointDurable() {
  for (int port = 0; port < 2; ++port) {
    windows_[port].CommitCheckpointCursor();
    ckpt_tracker_ts_[port] = pending_tracker_ts_[port];
  }
  ckpt_emitter_ts_ = pending_emitter_ts_;
}

Status SaJoinBase::RestoreState(std::string_view blob) {
  size_t offset = 0;
  for (int port = 0; port < 2; ++port) {
    SP_ASSIGN_OR_RETURN(uint64_t ts_raw, GetVarint(blob, &offset));
    trackers_[port].RestoreFailClosed(ZigZagDecode(ts_raw));
    SP_RETURN_NOT_OK(windows_[port].ApplyCheckpoint(blob, &offset));
  }
  SP_ASSIGN_OR_RETURN(uint64_t em_raw, GetVarint(blob, &offset));
  output_emitter_.Restore(ZigZagDecode(em_raw));
  if (offset != blob.size()) {
    return Status::Internal("sajoin delta: trailing bytes");
  }
  for (int port = 0; port < 2; ++port) {
    ckpt_tracker_ts_[port] = pending_tracker_ts_[port] =
        trackers_[port].current_ts();
  }
  ckpt_emitter_ts_ = pending_emitter_ts_ = output_emitter_.last_ts();
  return Status::OK();
}

void SaJoinBase::OnRestoreComplete() {
  OnWindowsRestored();
  UpdateStateBytes();
}

// ------------------------------------------------------------ SaJoinIndex

SaJoinIndex::SaJoinIndex(ExecContext* ctx, SaJoinOptions options,
                         std::string label)
    : SaJoinBase(ctx, std::move(options), std::move(label)),
      indexes_{SpIndex(ctx->roles->size()), SpIndex(ctx->roles->size())} {}

void SaJoinIndex::OnSegmentTouched(Segment* segment, bool created, int port) {
  if (created) indexes_[port].Insert(segment);
}

void SaJoinIndex::OnSegmentPurged(Segment* segment, int port) {
  indexes_[port].Remove(segment);
}

void SaJoinIndex::OnWindowsRestored() {
  // Rebuild both SPIndexes from the recovered segments. Segment objects are
  // freshly allocated by the restore, so the old pointer keys are gone —
  // start from empty indexes and re-insert in FIFO (front-to-back) order to
  // preserve the expiry-order property the skipping rule relies on.
  for (int port = 0; port < 2; ++port) {
    indexes_[port] = SpIndex(ctx_->roles->size());
    for (Segment& seg : windows_[port].segments()) {
      indexes_[port].Insert(&seg);
    }
  }
}

void SaJoinIndex::Probe(const Tuple& t, const PolicyPtr& t_policy,
                        int from_port) {
  const int opp = 1 - from_port;
  const KeyMatcher key(KeyOf(t, from_port));
  entries_scanned_ += static_cast<int64_t>(indexes_[opp].Probe(
      t_policy->allowed(), options_.use_skipping_rule,
      [&](Segment* seg, bool first_visit) {
        ++segments_processed_;
        // Only policy-compatible segments reach here; probe their tuples.
        // On a duplicate visit (naive no-skipping mode) the probing work is
        // still paid, but matches must not be emitted twice.
        for (const Tuple& u : seg->tuples) {
          if (!key(KeyOf(u, opp))) continue;
          if (!first_visit) continue;
          if (from_port == 0) {
            EmitJoinResult(t, u, *t_policy, *seg->policy);
          } else {
            EmitJoinResult(u, t, *seg->policy, *t_policy);
          }
        }
      }));
}

}  // namespace spstream
