// Shard-key analysis for intra-query parallelism.
//
// A query plan can run as N parallel clones only when tuples can be
// hash-partitioned so that every stateful operator sees all tuples relevant
// to each piece of its state in one shard:
//   * stateless operators (SS, select, project, union) accept any partition;
//   * an equijoin requires both inputs partitioned on their join key
//     (equal keys co-locate, so each clone joins exactly its key range);
//   * group-by / distinct require the input partitioned on the grouping
//     (resp. distinct) key.
// Security punctuations are NOT partitioned — the engine broadcasts every
// sp to every shard, so each clone's PolicyTracker converges to the same
// policy state (the punctuation-semantics invariant the differential-oracle
// suite proves).
//
// AnalyzeShardRouting walks the logical plan top-down carrying the
// partition requirement, composes it through projections and joins, and
// produces one routing key per source leaf (plan DFS order — the same order
// the plan builder registers sources). Plans whose requirements conflict
// (e.g. a join key that is not the grouping key above it) report
// shardable = false and fall back to the single-threaded path.
#pragma once

#include <vector>

#include "query/logical_plan.h"
#include "stream/tuple.h"

namespace spstream {

/// \brief Routing decision for one source leaf.
struct LeafShardKey {
  /// Column whose value partitions this leaf's tuples; kByTupleId (-1)
  /// hashes the tuple id instead (any partition is correct for the plan).
  int key_col = -1;

  static constexpr int kByTupleId = -1;
};

/// \brief Result of analyzing a plan for shardability.
struct ShardRouting {
  bool shardable = false;
  /// One entry per source leaf, in plan DFS order (matches the
  /// StreamingPhysicalPlan::sources order).
  std::vector<LeafShardKey> leaf_keys;
  /// Human-readable reason when !shardable (EXPLAIN / logging).
  std::string reason;
};

/// \brief Analyze `plan` and derive per-leaf routing keys.
ShardRouting AnalyzeShardRouting(const LogicalNodePtr& plan);

/// \brief Shard index of a tuple under a leaf's routing key: hash of the
/// key column's value (or of the tuple id) modulo `num_shards`. The hash is
/// deterministic across runs and shard counts, so results are reproducible.
size_t ShardOf(const Tuple& t, const LeafShardKey& key, size_t num_shards);

}  // namespace spstream
