#include "exec/shard_router.h"

namespace spstream {

namespace {

constexpr int kNoRequirement = -1;

/// Output width (number of columns) of a subtree — needed to map a
/// partition requirement through a join's concatenated output schema.
size_t OutputWidth(const LogicalNodePtr& node) {
  switch (node->kind) {
    case LogicalNode::Kind::kSource:
      return node->schema ? node->schema->num_fields() : 0;
    case LogicalNode::Kind::kProject:
      return node->columns.size();
    case LogicalNode::Kind::kJoin:
      return OutputWidth(node->children[0]) + OutputWidth(node->children[1]);
    case LogicalNode::Kind::kGroupBy:
      return 2;  // (group_key, aggregate)
    default:
      return node->children.empty() ? 0 : OutputWidth(node->children[0]);
  }
}

/// Walk the plan carrying the partition requirement from above.
/// `required_col` is a column index of this subtree's OUTPUT that must
/// partition the data, or kNoRequirement. Appends one LeafShardKey per
/// source leaf in DFS order; returns false (with `reason`) when the
/// requirements cannot be satisfied by hash partitioning.
bool Walk(const LogicalNodePtr& node, int required_col,
          std::vector<LeafShardKey>* leaf_keys, std::string* reason) {
  switch (node->kind) {
    case LogicalNode::Kind::kSource:
      leaf_keys->push_back(LeafShardKey{required_col});
      return true;

    case LogicalNode::Kind::kSelect:
    case LogicalNode::Kind::kSs:
      // Columns pass through unchanged.
      return Walk(node->children[0], required_col, leaf_keys, reason);

    case LogicalNode::Kind::kProject: {
      int below = kNoRequirement;
      if (required_col != kNoRequirement) {
        if (required_col < 0 ||
            static_cast<size_t>(required_col) >= node->columns.size()) {
          *reason = "partition column out of projection range";
          return false;
        }
        below = node->columns[static_cast<size_t>(required_col)];
      }
      return Walk(node->children[0], below, leaf_keys, reason);
    }

    case LogicalNode::Kind::kJoin: {
      // The join itself demands both inputs partitioned on the join key.
      // A requirement from above must coincide with a join key — equal
      // values of the required column then imply equal join keys, which the
      // key partitioning already co-locates.
      if (required_col != kNoRequirement) {
        const size_t left_width = OutputWidth(node->children[0]);
        if (static_cast<size_t>(required_col) < left_width) {
          if (required_col != node->left_key) {
            *reason = "partition requirement above join is not the join key";
            return false;
          }
        } else {
          const int right_col =
              required_col - static_cast<int>(left_width);
          if (right_col != node->right_key) {
            *reason = "partition requirement above join is not the join key";
            return false;
          }
        }
      }
      return Walk(node->children[0], node->left_key, leaf_keys, reason) &&
             Walk(node->children[1], node->right_key, leaf_keys, reason);
    }

    case LogicalNode::Kind::kDistinct: {
      // Distinct forwards tuples unchanged but dedups on key_col: the
      // input must partition on that key. A requirement from above is
      // only satisfiable when it IS the distinct key.
      if (required_col != kNoRequirement && required_col != node->key_col) {
        *reason = "partition requirement above distinct is not its key";
        return false;
      }
      return Walk(node->children[0], node->key_col, leaf_keys, reason);
    }

    case LogicalNode::Kind::kGroupBy: {
      // Output is (group_key, aggregate); only column 0 maps below.
      if (required_col != kNoRequirement && required_col != 0) {
        *reason = "partition requirement above group-by is the aggregate";
        return false;
      }
      return Walk(node->children[0], node->key_col, leaf_keys, reason);
    }

    case LogicalNode::Kind::kUnion: {
      for (const LogicalNodePtr& child : node->children) {
        if (!Walk(child, required_col, leaf_keys, reason)) return false;
      }
      return true;
    }
  }
  *reason = "unknown logical node kind";
  return false;
}

/// splitmix64 finalizer — cheap, well-mixed, deterministic across runs.
inline uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouting AnalyzeShardRouting(const LogicalNodePtr& plan) {
  ShardRouting routing;
  routing.shardable =
      Walk(plan, kNoRequirement, &routing.leaf_keys, &routing.reason);
  if (!routing.shardable) routing.leaf_keys.clear();
  return routing;
}

size_t ShardOf(const Tuple& t, const LeafShardKey& key, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h;
  if (key.key_col == LeafShardKey::kByTupleId) {
    h = MixHash(static_cast<uint64_t>(t.tid));
  } else if (static_cast<size_t>(key.key_col) < t.values.size()) {
    h = MixHash(static_cast<uint64_t>(
        t.values[static_cast<size_t>(key.key_col)].Hash()));
  } else {
    h = MixHash(static_cast<uint64_t>(t.tid));
  }
  return static_cast<size_t>(h % num_shards);
}

}  // namespace spstream
