#include "exec/policy_tracker.h"

#include "common/fault.h"

namespace spstream {

bool PolicyTracker::OnSp(const SecurityPunctuation& sp) {
  if (!open_batch_.empty()) {
    if (sp.ts() == open_batch_.front().ts()) {
      open_batch_.push_back(sp);
      open_batch_.back().ResolveRoles(*catalog_);
      return true;
    }
    if (sp.ts() < open_batch_.front().ts()) {
      ++stale_sps_dropped_;
      return false;
    }
    // Newer batch begins before any tuple of the previous batch arrived;
    // the previous batch applied to zero tuples. Finalize it (so override
    // bookkeeping stays monotone) and open the new one.
    FinalizeOpenBatch();
  }
  if (sp.ts() < current_policy_->ts()) {
    ++stale_sps_dropped_;
    return false;
  }
  open_batch_.push_back(sp);
  open_batch_.back().ResolveRoles(*catalog_);
  return true;
}

void PolicyTracker::FinalizeOpenBatch() {
  if (open_batch_.empty()) return;
  if (SP_FAULT_FIRED(fault::kPolicyInstall)) {
    // Fail closed: a fault while installing the batch must never leave the
    // previous (possibly wider) policy silently in force. The stream flips
    // to deny-all at the batch's timestamp; OnSp keeps accepting newer
    // batches, so the next batch that installs cleanly re-converges the
    // stream to its intended policy. Denying is always safe — the engine
    // may drop authorized tuples here, never leak unauthorized ones.
    const Timestamp ts = open_batch_.front().ts();
    previous_policy_ = current_policy_ = MakePolicy(RoleSet(), ts);
    open_batch_.clear();
    current_batch_.clear();
    batch_incremental_ = false;
    batch_covers_all_ = true;  // the deny-all applies to every tuple
    has_attr_policies_ = false;
    fail_closed_ = true;
    ++fail_closed_installs_;
    return;
  }
  fail_closed_ = false;
  previous_policy_ = current_policy_;
  batch_incremental_ = true;
  for (const SecurityPunctuation& sp : open_batch_) {
    if (!sp.incremental()) batch_incremental_ = false;
  }
  if (batch_incremental_) {
    // §IX extension: an incremental batch *edits* the policy in force —
    // positive sps add roles, negative sps remove them.
    RoleSet updated = current_policy_->allowed();
    for (const SecurityPunctuation& sp : open_batch_) {
      if (sp.sign() == Sign::kPositive) {
        updated.UnionWith(sp.roles());
      } else {
        updated.SubtractAll(sp.roles());
      }
    }
    current_policy_ = std::make_shared<const Policy>(
        std::move(updated), open_batch_.front().ts());
  } else {
    // override(): the newly finalized batch replaces the policy in force.
    // OnSp already rejected stale sps, so install unconditionally — also on
    // timestamp TIES, which legitimately occur in derived streams where a
    // join emits several distinct result policies at one output timestamp;
    // positional semantics says the latest punctuation governs what
    // follows.
    current_policy_ =
        std::make_shared<const Policy>(BuildBatchPolicy(open_batch_));
  }
  current_batch_ = std::move(open_batch_);
  open_batch_.clear();
  ++batches_installed_;

  batch_covers_all_ = true;
  has_attr_policies_ = false;
  for (const SecurityPunctuation& sp : current_batch_) {
    if (!sp.AppliesToStream(stream_name_) || !sp.tuple_pattern().IsAny() ||
        !sp.CoversWholeTuple()) {
      batch_covers_all_ = false;
    }
    if (!sp.CoversWholeTuple()) has_attr_policies_ = true;
  }
}

PolicyPtr PolicyTracker::PolicyFor(const Tuple& t) {
  FinalizeOpenBatch();
  if (batch_covers_all_ || current_batch_.empty()) {
    return current_policy_;
  }
  // Fast path: when every sp of the batch covers this tuple (the common
  // case — e.g. a tuple-range DDP naming exactly the tuples that follow),
  // the whole-batch policy applies and the shared object is returned
  // without building anything.
  bool all_apply = true, any_apply = false;
  for (const SecurityPunctuation& sp : current_batch_) {
    const bool applies = sp.CoversWholeTuple() &&
                         sp.AppliesToStream(stream_name_) &&
                         sp.AppliesToTupleId(t.tid);
    all_apply = all_apply && applies;
    any_apply = any_apply || applies;
  }
  if (all_apply) return current_policy_;
  if (!any_apply) {
    // An incremental batch that does not cover this tuple leaves its
    // previous policy intact; an absolute one means denial-by-default.
    return batch_incremental_ ? previous_policy_ : DenyAllPolicy();
  }

  // Narrow the batch to the sps whose DDP covers this tuple as a whole.
  // For an incremental batch the covered deltas apply on top of the
  // previous policy.
  RoleSet positive, negative;
  for (const SecurityPunctuation& sp : current_batch_) {
    if (!sp.AppliesToStream(stream_name_)) continue;
    if (!sp.AppliesToTupleId(t.tid)) continue;
    if (!sp.CoversWholeTuple()) continue;  // attribute policies mask, below
    if (sp.sign() == Sign::kPositive) {
      positive.UnionWith(sp.roles());
    } else {
      negative.UnionWith(sp.roles());
    }
  }
  RoleSet allowed = batch_incremental_ ? previous_policy_->allowed()
                                       : RoleSet();
  allowed.UnionWith(positive);
  allowed.SubtractAll(negative);
  return MakePolicy(std::move(allowed), current_batch_.front().ts());
}

RoleSet PolicyTracker::EffectiveRolesForAttribute(const Tuple& t,
                                                  std::string_view attr_name) {
  FinalizeOpenBatch();
  RoleSet positive, negative;
  for (const SecurityPunctuation& sp : current_batch_) {
    if (!sp.AppliesToStream(stream_name_)) continue;
    if (!sp.AppliesToTupleId(t.tid)) continue;
    if (!sp.AppliesToAttribute(attr_name)) continue;
    if (sp.sign() == Sign::kPositive) {
      positive.UnionWith(sp.roles());
    } else {
      negative.UnionWith(sp.roles());
    }
  }
  return RoleSet::Difference(positive, negative);
}

size_t PolicyTracker::MemoryBytes() const {
  size_t bytes = sizeof(PolicyTracker) + stream_name_.capacity();
  for (const SecurityPunctuation& sp : open_batch_) bytes += sp.MemoryBytes();
  for (const SecurityPunctuation& sp : current_batch_) {
    bytes += sp.MemoryBytes();
  }
  bytes += current_policy_->MemoryBytes();
  return bytes;
}

}  // namespace spstream
