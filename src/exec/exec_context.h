// Shared runtime context handed to every physical operator.
#pragma once

#include "security/role_catalog.h"
#include "stream/schema.h"

namespace spstream {

/// \brief Catalogs every operator may consult. Owned by the engine/driver;
/// outlives all operators.
struct ExecContext {
  RoleCatalog* roles = nullptr;
  StreamCatalog* streams = nullptr;
};

}  // namespace spstream
