// Shared runtime context handed to every physical operator.
#pragma once

#include "security/role_catalog.h"
#include "stream/schema.h"

namespace spstream {

class AuditLog;
class MetricsRegistry;

/// \brief Catalogs every operator may consult. Owned by the engine/driver;
/// outlives all operators.
struct ExecContext {
  RoleCatalog* roles = nullptr;
  StreamCatalog* streams = nullptr;
  /// Observability hooks; both optional (raw pipelines leave them null and
  /// operators then skip all event/metric emission beyond OperatorMetrics).
  MetricsRegistry* metrics = nullptr;
  AuditLog* audit = nullptr;
};

}  // namespace spstream
