// Durable state subsystem cost (docs/DURABILITY.md) — what crash safety
// costs on the hot path and how long coming back takes:
//
//  * checkpoint-write overhead: the identical epoch workload (stateful
//    window + group-by queries, fresh sp-batch per epoch) run with
//    durability OFF vs ON (WAL group commit + incremental checkpoint per
//    epoch), as min/mean/stddev over repetitions (MeasureReps);
//  * recovery-replay time: opening a fresh engine over the populated data
//    dir — WAL catalog replay + latest-checkpoint restore — timed per rep.
//
// Emits BENCH_recovery.json (stdout, and into SPSTREAM_BENCH_JSON_DIR when
// set) so the bench trajectory can be tracked across commits.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "engine/engine.h"

namespace spstream::bench {
namespace {

constexpr int kEpochs = 12;
constexpr int kTuplesPerEpoch = 4000;
constexpr int kTuplesPerSp = 200;
constexpr int kKeySpace = 1024;
constexpr int kReps = 3;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SchemaPtr BenchSchema() {
  return MakeSchema("Feed", {Field{"k", ValueType::kInt64},
                             Field{"v", ValueType::kInt64}});
}

std::unique_ptr<SpStreamEngine> BuildEngine(const std::string& data_dir,
                                            std::vector<QueryId>* qids) {
  EngineOptions opts;
  opts.data_dir = data_dir;
  auto engine = std::make_unique<SpStreamEngine>(std::move(opts));
  engine->RegisterRole("analyst");
  (void)engine->RegisterStream(BenchSchema());
  (void)engine->RegisterSubject("bench", {"analyst"});
  // Stateful plans so checkpoints carry real window/group-by deltas, plus a
  // stateless pass-through for contrast.
  for (const char* sql :
       {"SELECT k, SUM(v) FROM Feed [RANGE 4096] GROUP BY k",
        "SELECT DISTINCT k FROM Feed [RANGE 4096]",
        "SELECT k, v FROM Feed"}) {
    qids->push_back(engine->RegisterQuery("bench", sql).value());
  }
  return engine;
}

/// One full workload run: kEpochs epochs, each opening with a fresh
/// sp-batch and carrying kTuplesPerEpoch tuples (an sp every kTuplesPerSp).
/// Returns elapsed seconds; results are drained per epoch like a server.
double OneWorkloadRep(SpStreamEngine* engine,
                      const std::vector<QueryId>& qids, size_t* received) {
  *received = 0;
  int64_t ts = 1;
  TupleId tid = 0;
  const int64_t start = NowUs();
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<StreamElement> batch;
    batch.reserve(static_cast<size_t>(kTuplesPerEpoch) +
                  kTuplesPerEpoch / kTuplesPerSp + 1);
    for (int i = 0; i < kTuplesPerEpoch; ++i) {
      if (i % kTuplesPerSp == 0) {
        SecurityPunctuation sp(Pattern::Literal("Feed"), Pattern::Any(),
                               Pattern::Any(), Pattern::Any(),
                               Sign::kPositive, /*immutable=*/false, ts);
        sp.SetResolvedRoles(RoleSet::FromIds({0}));
        batch.emplace_back(std::move(sp));
      }
      batch.emplace_back(Tuple(0, tid, {Value(tid % kKeySpace), Value(tid)},
                               ts));
      ++tid;
      ++ts;
    }
    (void)engine->Push("Feed", std::move(batch));
    (void)engine->Run();
    for (QueryId q : qids) *received += engine->TakeResults(q)->size();
  }
  return static_cast<double>(NowUs() - start) / 1e6;
}

struct ModeResult {
  std::string mode;
  RepStats stats;
  double tuples_per_sec = 0;
  size_t received = 0;
  int64_t recovered_epochs = -1;  // recovery_replay rows only
};

std::string ToJson(const std::vector<ModeResult>& results,
                   double overhead_pct) {
  std::ostringstream os;
  os << "{\"bench\":\"recovery\",\"config\":{\"epochs\":" << kEpochs
     << ",\"tuples_per_epoch\":" << kTuplesPerEpoch
     << ",\"tuples_per_sp\":" << kTuplesPerSp
     << ",\"key_space\":" << kKeySpace << ",\"reps\":" << kReps
     << "},\"checkpoint_overhead_pct\":" << overhead_pct << ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    if (i) os << ",";
    os << "{\"mode\":\"" << r.mode << "\",";
    AppendRepStatsJson(os, r.stats);
    if (r.recovered_epochs >= 0) {
      os << ",\"recovered_epochs\":" << r.recovered_epochs;
    } else {
      os << ",\"tuples_per_sec\":" << r.tuples_per_sec
         << ",\"results\":" << r.received;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream;
  using namespace spstream::bench;
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "spstream_bench_recovery").string();

  std::cout << "Durable state subsystem: checkpoint-write overhead and "
               "recovery-replay time\n(" << kEpochs << " epochs x "
            << kTuplesPerEpoch << " tuples, sp every " << kTuplesPerSp
            << ", " << kReps << " reps + warmup)\n";

  std::vector<ModeResult> results;

  // Durability OFF baseline: fresh engine per rep, no data dir.
  {
    ModeResult r;
    r.mode = "durability_off";
    auto one_rep = [&] {
      std::vector<QueryId> qids;
      auto engine = BuildEngine("", &qids);
      return OneWorkloadRep(engine.get(), qids, &r.received);
    };
    r.stats = MeasureReps(kReps, [&] { (void)one_rep(); }, one_rep);
    r.tuples_per_sec =
        static_cast<double>(kEpochs) * kTuplesPerEpoch / r.stats.Min();
    results.push_back(std::move(r));
  }

  // Durability ON: fresh data dir per rep — every epoch pays the WAL group
  // commit + incremental checkpoint. The last rep's dir is kept for the
  // recovery measurement below.
  {
    ModeResult r;
    r.mode = "durability_on";
    auto one_rep = [&] {
      std::error_code ec;
      fs::remove_all(dir, ec);
      std::vector<QueryId> qids;
      auto engine = BuildEngine(dir, &qids);
      return OneWorkloadRep(engine.get(), qids, &r.received);
    };
    r.stats = MeasureReps(kReps, [&] { (void)one_rep(); }, one_rep);
    r.tuples_per_sec =
        static_cast<double>(kEpochs) * kTuplesPerEpoch / r.stats.Min();
    results.push_back(std::move(r));
  }
  const double overhead_pct =
      100.0 * (results[1].stats.Min() / results[0].stats.Min() - 1.0);

  // Recovery replay: open a fresh engine over the populated dir per rep
  // (WAL catalog replay + checkpoint restore; read-only, so reps repeat).
  {
    ModeResult r;
    r.mode = "recovery_replay";
    auto one_rep = [&] {
      const int64_t t0 = NowUs();
      EngineOptions opts;
      opts.data_dir = dir;
      SpStreamEngine engine(std::move(opts));
      const double seconds = static_cast<double>(NowUs() - t0) / 1e6;
      r.recovered_epochs = engine.durable_epochs();
      if (!engine.recovery_error().ok()) {
        std::cerr << "recovery failed: "
                  << engine.recovery_error().ToString() << "\n";
      }
      return seconds;
    };
    r.stats = MeasureReps(kReps, [&] { (void)one_rep(); }, one_rep);
    results.push_back(std::move(r));
  }

  PrintHeader("Durability", "workload seconds and recovery time");
  PrintLegend("mode", {"sec(min)", "sec(mean)", "stddev"});
  for (const ModeResult& r : results) {
    PrintRow(r.mode, {r.stats.Min(), r.stats.Mean(), r.stats.Stddev()}, 4);
  }
  std::cout << "checkpoint overhead: " << overhead_pct << "% over "
            << kEpochs << " epochs; recovery replays "
            << results[2].recovered_epochs << " durable epochs\n";

  const std::string json = ToJson(results, overhead_pct);
  std::cout << "\nJSON: " << json << "\n";
  if (const char* jdir = std::getenv("SPSTREAM_BENCH_JSON_DIR")) {
    const std::string path = std::string(jdir) + "/BENCH_recovery.json";
    std::ofstream out(path);
    out << json << "\n";
    std::cout << "wrote " << path << "\n";
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
