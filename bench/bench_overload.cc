// Overload resilience cost/benefit (docs/ROBUSTNESS.md, "Overload and
// self-healing") — what tiered load shedding buys when the offered load
// exceeds capacity, and what the watchdog-era self-healing round trip
// costs:
//
//  * goodput under overload: capacity is pinned by the controller's
//    pending-backlog watermark; the same punctuated workload is offered at
//    1x/2x/4x capacity against (a) a shedding engine and (b) a no-shed
//    oracle. Goodput = delivered data tuples / offered. The invariant
//    *shed data, never shed security* is checked per multiplier: both
//    engines must install byte-identical policy sequences (equal
//    kPolicyInstall audit counts), i.e. sps_shed == 0 even in kShed;
//  * self-healing: a seeded exec.operator_process fault quarantines one
//    query mid-run; the next epoch recovers it from the durable checkpoint
//    (backoff 0), and the bench times that recovery epoch.
//
// Emits BENCH_overload.json (stdout, and into SPSTREAM_BENCH_JSON_DIR when
// set) so the bench trajectory can be tracked across commits.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <sstream>

#include "bench_util.h"
#include "common/fault.h"
#include "engine/engine.h"

namespace spstream::bench {
namespace {

constexpr int kTicks = 6;            // epochs per rep
constexpr int kChunk = 512;          // data tuples per push
constexpr int kChunksPerCapacity = 8;  // capacity = 8 chunks = watermark
constexpr size_t kPendingHigh = static_cast<size_t>(kChunk) *
                                kChunksPerCapacity;
constexpr double kShedFraction = 0.3;
constexpr int kReps = 3;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SchemaPtr BenchSchema() {
  return MakeSchema("Feed", {Field{"k", ValueType::kInt64},
                             Field{"v", ValueType::kInt64}});
}

std::unique_ptr<SpStreamEngine> BuildEngine(bool shedding, QueryId* qid,
                                            const std::string& data_dir = "",
                                            int max_recovery_attempts = 0) {
  EngineOptions opts;
  opts.data_dir = data_dir;
  if (shedding) {
    opts.overload.enable_shedding = true;
    opts.overload.pending_high_watermark = kPendingHigh;
    opts.overload.pending_low_watermark = kPendingHigh / 2;
    opts.overload.shed_fraction = kShedFraction;
  }
  opts.overload.max_recovery_attempts = max_recovery_attempts;
  opts.overload.recovery_backoff_base_ms = 0;
  auto engine = std::make_unique<SpStreamEngine>(std::move(opts));
  engine->RegisterRole("analyst");
  (void)engine->RegisterStream(BenchSchema());
  (void)engine->RegisterSubject("bench", {"analyst"});
  // Stateless pass-through: with a full grant, delivered rows == admitted
  // data tuples, so goodput falls straight out of the result count.
  *qid = engine->RegisterQuery("bench", "SELECT k, v FROM Feed").value();
  return engine;
}

/// One offered-load rep: kTicks epochs, each offering `multiplier` x
/// capacity as kChunk-sized pushes (an sp heads every chunk, so sps keep
/// arriving while the tier is kShed). Returns elapsed seconds.
double OneRep(SpStreamEngine* engine, QueryId qid, int multiplier,
              size_t* delivered, size_t* sps_offered, int ticks = kTicks,
              std::vector<double>* epoch_ms = nullptr) {
  *delivered = 0;
  *sps_offered = 0;
  int64_t ts = 1;
  TupleId tid = 0;
  const int64_t start = NowUs();
  for (int t = 0; t < ticks; ++t) {
    for (int c = 0; c < multiplier * kChunksPerCapacity; ++c) {
      std::vector<StreamElement> chunk;
      chunk.reserve(kChunk + 1);
      SecurityPunctuation sp(Pattern::Literal("Feed"), Pattern::Any(),
                             Pattern::Any(), Pattern::Any(), Sign::kPositive,
                             /*immutable=*/false, ts);
      sp.SetResolvedRoles(RoleSet::FromIds({0}));
      chunk.emplace_back(std::move(sp));
      ++*sps_offered;
      for (int i = 0; i < kChunk; ++i) {
        chunk.emplace_back(
            Tuple(0, tid, {Value(tid % 1024), Value(tid)}, ts));
        ++tid;
        ++ts;
      }
      (void)engine->Push("Feed", std::move(chunk));
    }
    const int64_t run_start = NowUs();
    (void)engine->Run();
    if (epoch_ms != nullptr) {
      epoch_ms->push_back(static_cast<double>(NowUs() - run_start) / 1e3);
    }
    *delivered += engine->TakeResults(qid)->size();
  }
  return static_cast<double>(NowUs() - start) / 1e6;
}

/// p99 of the collected per-epoch Run() times (ms); with few samples this
/// degrades to the max, which is the conservative bound anyway.
double P99(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx =
      std::min(v.size() - 1, static_cast<size_t>(0.99 * v.size()));
  return v[idx];
}

struct LoadResult {
  int multiplier = 1;
  RepStats stats;
  size_t offered = 0;
  size_t delivered = 0;
  double goodput = 0;        // delivered / offered
  int64_t tuples_shed = 0;   // admission-shed data tuples (last rep)
  int64_t sps_shed = 0;      // MUST stay 0: install-count delta vs oracle
  double epoch_p99_ms = 0;   // per-epoch Run() wall time, last rep
};

struct SelfHealResult {
  bool recovered = false;
  double recovery_seconds = 0;
  int64_t recoveries = 0;
};

std::string ToJson(const std::vector<LoadResult>& loads,
                   const SelfHealResult& heal) {
  std::ostringstream os;
  os << "{\"bench\":\"overload\",\"config\":{\"ticks\":" << kTicks
     << ",\"chunk\":" << kChunk
     << ",\"capacity_tuples\":" << kPendingHigh
     << ",\"shed_fraction\":" << kShedFraction << ",\"reps\":" << kReps
     << "},\"results\":[";
  for (size_t i = 0; i < loads.size(); ++i) {
    const LoadResult& r = loads[i];
    if (i) os << ",";
    os << "{\"multiplier\":" << r.multiplier << ",";
    AppendRepStatsJson(os, r.stats);
    os << ",\"offered\":" << r.offered << ",\"delivered\":" << r.delivered
       << ",\"goodput\":" << r.goodput
       << ",\"epoch_p99_ms\":" << r.epoch_p99_ms
       << ",\"tuples_shed\":" << r.tuples_shed
       << ",\"sps_shed\":" << r.sps_shed << "}";
  }
  os << "],\"self_heal\":{\"recovered\":" << (heal.recovered ? "true" : "false")
     << ",\"recovery_seconds\":" << heal.recovery_seconds
     << ",\"recoveries\":" << heal.recoveries << "}}";
  return os.str();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream;
  using namespace spstream::bench;
  namespace fs = std::filesystem;

  std::cout << "Overload resilience: goodput at 1x/2x/4x capacity ("
            << kPendingHigh << " tuples/epoch) with shed_fraction="
            << kShedFraction << ", plus the self-healing round trip\n";

  std::vector<LoadResult> loads;
  for (int multiplier : {1, 2, 4}) {
    LoadResult r;
    r.multiplier = multiplier;
    size_t sps_offered = 0;
    int64_t shed_installs = 0;
    auto one_rep = [&] {
      QueryId qid = 0;
      auto engine = BuildEngine(/*shedding=*/true, &qid);
      std::vector<double> epoch_ms;
      const double sec = OneRep(engine.get(), qid, multiplier, &r.delivered,
                                &sps_offered, kTicks, &epoch_ms);
      r.epoch_p99_ms = P99(std::move(epoch_ms));
      r.tuples_shed = engine->overload().tuples_shed();
      shed_installs = engine->audit()->CountOf(AuditEventKind::kPolicyInstall);
      return sec;
    };
    r.stats = MeasureReps(kReps, [&] { (void)one_rep(); }, one_rep);
    r.offered = static_cast<size_t>(kTicks) * multiplier *
                kChunksPerCapacity * kChunk;
    r.goodput = static_cast<double>(r.delivered) /
                static_cast<double>(r.offered);
    // sp-losslessness oracle: a no-shed engine over the identical offered
    // load must install the same number of policies; any delta would mean
    // an sp was shed.
    {
      QueryId qid = 0;
      auto oracle = BuildEngine(/*shedding=*/false, &qid);
      size_t delivered = 0, sps = 0;
      (void)OneRep(oracle.get(), qid, multiplier, &delivered, &sps);
      r.sps_shed =
          oracle->audit()->CountOf(AuditEventKind::kPolicyInstall) -
          shed_installs;
    }
    loads.push_back(std::move(r));
  }

  // Self-healing: durable engine, seeded one-shot operator fault, watchdog
  // off so the recovery lands deterministically at the next Run safe point.
  SelfHealResult heal;
  {
    const std::string dir =
        (fs::temp_directory_path() / "spstream_bench_overload").string();
    std::error_code ec;
    fs::remove_all(dir, ec);
    QueryId qid = 0;
    auto engine =
        BuildEngine(/*shedding=*/false, &qid, dir, /*max_attempts=*/3);
    size_t delivered = 0, sps = 0;
    // Single epochs: with backoff 0 the very next Run recovers, so the
    // quarantined window is exactly one epoch wide.
    (void)OneRep(engine.get(), qid, 1, &delivered, &sps, /*ticks=*/1);
    {
      FaultSpec spec;
      spec.trigger_on_hit = 1;
      ScopedFault armed(fault::kOperatorProcess, spec);
      (void)OneRep(engine.get(), qid, 1, &delivered, &sps, /*ticks=*/1);
    }
    const bool was_quarantined = engine->quarantined_count() == 1;
    const int64_t t0 = NowUs();
    (void)OneRep(engine.get(), qid, 1, &delivered, &sps, /*ticks=*/1);
    heal.recovery_seconds = static_cast<double>(NowUs() - t0) / 1e6;
    heal.recoveries =
        engine->metrics()->CounterValue("engine.query_recoveries");
    heal.recovered = was_quarantined && engine->quarantined_count() == 0 &&
                     heal.recoveries >= 1;
    fs::remove_all(dir, ec);
  }

  PrintHeader("Overload", "goodput under offered load");
  PrintLegend("load",
              {"sec(min)", "goodput", "p99(ms)", "shed", "sps_shed"});
  for (const LoadResult& r : loads) {
    PrintRow(std::to_string(r.multiplier) + "x",
             {r.stats.Min(), r.goodput, r.epoch_p99_ms,
              static_cast<double>(r.tuples_shed),
              static_cast<double>(r.sps_shed)},
             3);
  }
  std::cout << "self-heal: " << (heal.recovered ? "recovered" : "FAILED")
            << " in " << heal.recovery_seconds << "s ("
            << heal.recoveries << " recoveries)\n";

  const std::string json = ToJson(loads, heal);
  std::cout << "\nJSON: " << json << "\n";
  if (const char* jdir = std::getenv("SPSTREAM_BENCH_JSON_DIR")) {
    const std::string path = std::string(jdir) + "/BENCH_overload.json";
    std::ofstream out(path);
    out << json << "\n";
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
