// Micro-benchmarks (google-benchmark) for the primitives on the engine's
// hot paths: role bitmaps, pattern matching, policy algebra, sp codec,
// policy tracking, and the Security Shield per-element costs.
#include <benchmark/benchmark.h>

#include "exec/policy_tracker.h"
#include "exec/ss_operator.h"
#include "security/pattern.h"
#include "security/policy.h"
#include "security/role_set.h"
#include "security/sp_codec.h"

namespace spstream {
namespace {

RoleSet MakeRoles(size_t count, size_t stride = 3) {
  RoleSet s;
  for (size_t i = 0; i < count; ++i) {
    s.Insert(static_cast<RoleId>(i * stride));
  }
  return s;
}

void BM_RoleSetIntersects(benchmark::State& state) {
  const RoleSet a = MakeRoles(static_cast<size_t>(state.range(0)));
  const RoleSet b = MakeRoles(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_RoleSetIntersects)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

void BM_RoleSetUnion(benchmark::State& state) {
  const RoleSet a = MakeRoles(static_cast<size_t>(state.range(0)));
  const RoleSet b = MakeRoles(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    RoleSet u = RoleSet::Union(a, b);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_RoleSetUnion)->Arg(10)->Arg(500);

void BM_PatternRangeMatch(benchmark::State& state) {
  const Pattern p = Pattern::Range(120, 133);
  int64_t v = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.MatchesInt(v));
    v = (v + 7) % 200;
  }
}
BENCHMARK(BM_PatternRangeMatch);

void BM_PatternGlobMatch(benchmark::State& state) {
  const Pattern p = Pattern::Compile("hr_ward*_bed?").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.MatchesString("hr_ward12_bed3"));
  }
}
BENCHMARK(BM_PatternGlobMatch);

void BM_PatternCopy(benchmark::State& state) {
  const Pattern p = Pattern::Compile("s1|s2|[100-200]|adm*").value();
  for (auto _ : state) {
    Pattern q = p;  // shared-rep: one refcount bump
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_PatternCopy);

void BM_PolicyIntersect(benchmark::State& state) {
  const Policy a(MakeRoles(static_cast<size_t>(state.range(0))), 1);
  const Policy b(MakeRoles(static_cast<size_t>(state.range(0)), 5), 2);
  for (auto _ : state) {
    Policy p = Policy::Intersect(a, b);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PolicyIntersect)->Arg(10)->Arg(100);

void BM_SpEncode(benchmark::State& state) {
  SecurityPunctuation sp = SecurityPunctuation::TupleLevel(
      Pattern::Literal("Location"), Pattern::Range(1000, 1099),
      Pattern::Any(), 42);
  sp.SetResolvedRoles(MakeRoles(static_cast<size_t>(state.range(0))));
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    EncodeSp(sp, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.counters["bytes"] =
      static_cast<double>(EncodedSpSize(sp));
}
BENCHMARK(BM_SpEncode)->Arg(1)->Arg(10)->Arg(100);

void BM_SpDecode(benchmark::State& state) {
  SecurityPunctuation sp = SecurityPunctuation::TupleLevel(
      Pattern::Literal("Location"), Pattern::Range(1000, 1099),
      Pattern::Any(), 42);
  sp.SetResolvedRoles(MakeRoles(static_cast<size_t>(state.range(0))));
  std::string buf;
  EncodeSp(sp, &buf);
  for (auto _ : state) {
    size_t off = 0;
    auto decoded = DecodeSp(buf, &off);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SpDecode)->Arg(1)->Arg(100);

void BM_PolicyTrackerTuple(benchmark::State& state) {
  RoleCatalog catalog;
  catalog.RegisterSyntheticRoles(32);
  PolicyTracker tracker(&catalog, "Location");
  SecurityPunctuation sp = SecurityPunctuation::TupleLevel(
      Pattern::Literal("Location"), Pattern::Range(0, 1000000),
      Pattern::Any(), 1);
  sp.SetResolvedRoles(MakeRoles(4));
  tracker.OnSp(sp);
  Tuple t(0, 500, {Value(1), Value(2.0)}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.PolicyFor(t));
  }
}
BENCHMARK(BM_PolicyTrackerTuple);

void BM_SsStateMatch(benchmark::State& state) {
  SsOptions opts;
  for (int i = 0; i < state.range(0); ++i) {
    opts.predicates.push_back(RoleSet::Of(static_cast<RoleId>(i)));
  }
  opts.use_predicate_index = state.range(1) != 0;
  SsState ss(opts);
  const Policy policy(MakeRoles(4, 7), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss.Matches(policy));
  }
}
BENCHMARK(BM_SsStateMatch)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({500, 0})
    ->Args({500, 1});

}  // namespace
}  // namespace spstream

BENCHMARK_MAIN();
