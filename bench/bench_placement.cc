// Ablation A1 — the §IV.A access-control filtering placements:
// pre-filtering (SS at the sources, sps stripped), post-filtering (SS at
// the plan root) and intermediate filtering (plan-embedded SS), swept over
// query selectivity x access-control selectivity, on a join query where
// placement actually matters.
#include "bench_util.h"
#include "exec/plan_builder.h"
#include "query/planner.h"
#include "workload/policy_gen.h"

namespace spstream::bench {
namespace {

constexpr size_t kTuplesPerStream = 8000;

struct PlacementCosts {
  double pre_ms;
  double post_ms;
  double mid_ms;
  int64_t results;
};

PlacementCosts RunAllPlacements(double sp_selectivity,
                                double query_selectivity) {
  RoleCatalog roles;
  StreamCatalog streams;
  JoinWorkloadOptions wopts;
  wopts.tuples_per_stream = kTuplesPerStream;
  wopts.tuples_per_sp = 10;
  wopts.sp_selectivity = sp_selectivity;
  wopts.join_key_cardinality = 200;
  wopts.seed = 4;
  JoinWorkload wl = GenerateJoinWorkload(&roles, wopts);
  (void)streams.RegisterStream(wl.left_schema);
  (void)streams.RegisterStream(wl.right_schema);
  ExecContext ctx{&roles, &streams};

  // Query: join on key, then select a payload range whose width sets the
  // query selectivity.
  const auto max_payload = static_cast<int64_t>(
      query_selectivity * static_cast<double>(kTuplesPerStream));
  auto bare = LogicalNode::Select(
      Expr::Compare(Expr::CmpOp::kLt, Expr::Column(1),
                    Expr::Literal(Value(max_payload))),
      LogicalNode::Join(0, 0, /*window=*/200,
                        LogicalNode::Source("s1", wl.left_schema),
                        LogicalNode::Source("s2", wl.right_schema)));

  // The access predicate: the shared role — matches σ_sp of the stream's
  // policies, so ss-selectivity tracks sp_selectivity.
  RoleSet q = RoleSet::Of(roles.Lookup("g_shared").value());

  std::unordered_map<std::string, std::vector<StreamElement>> inputs{
      {"s1", wl.left}, {"s2", wl.right}};

  auto run = [&](SsPlacement placement) {
    LogicalNodePtr plan = ApplySsPlacement(bare, q, placement);
    Pipeline pipeline(&ctx);
    auto built = BuildPhysicalPlan(&pipeline, plan, inputs);
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return std::pair<double, int64_t>{0, 0};
    }
    int64_t elapsed = 0;
    {
      ScopedTimer timer(&elapsed);
      pipeline.Run(256);
    }
    return std::pair<double, int64_t>{
        elapsed / 1e6,
        static_cast<int64_t>(built->sink->Tuples().size())};
  };

  PlacementCosts out{};
  auto [pre_ms, pre_n] = run(SsPlacement::kPreFilter);
  auto [post_ms, post_n] = run(SsPlacement::kPostFilter);
  auto [mid_ms, mid_n] = run(SsPlacement::kIntermediate);
  out.pre_ms = pre_ms;
  out.post_ms = post_ms;
  out.mid_ms = mid_ms;
  out.results = pre_n;
  if (pre_n != post_n || post_n != mid_n) {
    std::cerr << "WARNING: placements disagree: " << pre_n << "/" << post_n
              << "/" << mid_n << "\n";
  }
  return out;
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using spstream::bench::PrintHeader;
  using spstream::bench::PrintLegend;
  using spstream::bench::PrintRow;
  using spstream::bench::RunAllPlacements;

  std::cout
      << "Ablation A1 (SIV.A): SS placement strategies on a join query\n"
      << "(two streams x " << spstream::bench::kTuplesPerStream
      << " tuples; pre = SS@source + drop sps, post = SS@root, "
         "intermediate = plan-embedded SS@sources)\n";

  PrintHeader("Placement",
              "total pipeline time (ms) across selectivity mix");
  PrintLegend("s_sp/q_sel", {"pre", "post", "intermediate", "results"});
  for (double sp_sel : {0.1, 0.5, 1.0}) {
    for (double q_sel : {0.1, 1.0}) {
      auto c = RunAllPlacements(sp_sel, q_sel);
      char label[32];
      snprintf(label, sizeof(label), "%.1f / %.1f", sp_sel, q_sel);
      PrintRow(label, {c.pre_ms, c.post_ms, c.mid_ms,
                       static_cast<double>(c.results)},
               2);
    }
  }
  std::cout
      << "\nExpected shape: with selective access control (s_sp = 0.1) the\n"
         "pre/intermediate placements win big (the join never sees\n"
         "unauthorized segments); with loose access control (s_sp = 1.0)\n"
         "post-filtering is competitive because the shield filters "
         "nothing.\n";
  return 0;
}
