// Ablations A4 and A5 — security-aware optimization (§VI):
//
//   A4  multi-query sharing: N queries over one subplan executed as
//       (a) N independent plans vs (b) one shared trunk behind a merged SS
//       with per-query split shields (Rule 1 merge/split).
//   A5  cost-model fidelity: does the §VI.A model rank candidate plans in
//       the same order as measured execution time?
#include <algorithm>

#include "bench_util.h"
#include "exec/plan_builder.h"
#include "exec/ss_operator.h"
#include "optimizer/optimizer.h"
#include "workload/policy_gen.h"

namespace spstream::bench {
namespace {

constexpr size_t kTuples = 20000;

double RunPlanMs(ExecContext* ctx,
                 const std::unordered_map<std::string,
                                          std::vector<StreamElement>>& inputs,
                 const LogicalNodePtr& plan) {
  Pipeline pipeline(ctx);
  auto built = BuildPhysicalPlan(&pipeline, plan, inputs);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 0;
  }
  int64_t elapsed = 0;
  {
    ScopedTimer timer(&elapsed);
    pipeline.Run(256);
  }
  return elapsed / 1e6;
}

void SharingAblation() {
  PrintHeader("Ablation A4 (SVI.C)",
              "multi-query sharing via SS merge/split (total ms, N queries "
              "over one select subplan)");
  PrintLegend("N queries", {"independent", "shared trunk", "speedup x"});

  RoleCatalog roles;
  StreamCatalog streams;
  auto ids = roles.RegisterSyntheticRoles(64);
  EnforcementWorkload wl = MakeLocationWorkload(
      &roles, kTuples, /*tuples_per_sp=*/10, /*roles_per_policy=*/2,
      /*role_pool=*/64);
  (void)streams.RegisterStream(wl.schema);
  ExecContext ctx{&roles, &streams};
  std::unordered_map<std::string, std::vector<StreamElement>> inputs{
      {"Location", wl.elements}};

  auto subplan = LogicalNode::Select(
      Expr::Compare(Expr::CmpOp::kGt, Expr::Column(3),
                    Expr::Literal(Value(12.0))),
      LogicalNode::Source("Location", wl.schema));

  Rng rng(9);
  for (size_t n : {2, 4, 8, 16}) {
    std::vector<RoleSet> query_roles;
    for (size_t i = 0; i < n; ++i) {
      query_roles.push_back(RoleSet::Of(ids[rng.NextBounded(64)]));
    }

    // (a) independent: each query runs its own shielded plan.
    double independent_ms = 0;
    for (const RoleSet& q : query_roles) {
      independent_ms +=
          RunPlanMs(&ctx, inputs, LogicalNode::Ss({q}, subplan->Clone()));
    }

    // (b) shared: one trunk (merged SS + subplan) executed once, plus the
    // cheap per-query split shields over the trunk's (small) output.
    SharedPlan shared = BuildSharedPlan(subplan, query_roles);
    double shared_ms = RunPlanMs(&ctx, inputs, shared.trunk);
    // Split shields re-filter the trunk output per query.
    {
      Pipeline trunk_pipeline(&ctx);
      auto built = BuildPhysicalPlan(&trunk_pipeline, shared.trunk, inputs);
      if (built.ok()) {
        trunk_pipeline.Run(256);
        std::vector<StreamElement> trunk_out = built->sink->elements();
        for (const RoleSet& q : query_roles) {
          Pipeline split(&ctx);
          auto* src = split.Add<SourceOperator>("trunk", trunk_out);
          SsOptions o;
          o.predicates = {q};
          o.stream_name = "Location";
          o.schema = wl.schema;
          auto* ss = split.Add<SsOperator>(std::move(o));
          auto* sink = split.Add<CollectorSink>();
          src->AddOutput(ss);
          ss->AddOutput(sink);
          int64_t elapsed = 0;
          {
            ScopedTimer timer(&elapsed);
            split.Run(256);
          }
          shared_ms += elapsed / 1e6;
        }
      }
    }
    PrintRow("N=" + std::to_string(n),
             {independent_ms, shared_ms,
              shared_ms > 0 ? independent_ms / shared_ms : 0},
             2);
  }
}

void CostModelFidelity() {
  PrintHeader("Ablation A5 (SVI.A)",
              "cost-model rank fidelity over SS-placement candidates");
  PrintLegend("candidate", {"predicted cost", "measured ms"});

  RoleCatalog roles;
  StreamCatalog streams;
  JoinWorkloadOptions wopts;
  wopts.tuples_per_stream = 6000;
  wopts.sp_selectivity = 0.15;
  wopts.seed = 77;
  JoinWorkload wl = GenerateJoinWorkload(&roles, wopts);
  (void)streams.RegisterStream(wl.left_schema);
  (void)streams.RegisterStream(wl.right_schema);
  ExecContext ctx{&roles, &streams};
  std::unordered_map<std::string, std::vector<StreamElement>> inputs{
      {"s1", wl.left}, {"s2", wl.right}};

  RoleSet q = RoleSet::Of(roles.Lookup("g_shared").value());
  auto base = LogicalNode::Ss(
      {q}, LogicalNode::Join(0, 0, /*window=*/200,
                             LogicalNode::Source("s1", wl.left_schema),
                             LogicalNode::Source("s2", wl.right_schema)));

  CostModelOptions mopts;
  mopts.ss_selectivity = 0.15;
  mopts.sp_selectivity = 0.15;
  CostModel model({{"s1", SourceStats{100, 10}},
                   {"s2", SourceStats{100, 10}}},
                  mopts);

  std::vector<std::pair<std::string, LogicalNodePtr>> candidates = {
      {"post (SS@root)", base},
      {"push both sides", PushSsOverBinary(base, true, true)},
      {"push left only", PushSsOverBinary(base, true, false)},
      {"push right only", PushSsOverBinary(base, false, true)},
  };

  struct Scored {
    std::string name;
    double predicted;
    double measured;
  };
  std::vector<Scored> scored;
  for (auto& [name, plan] : candidates) {
    if (!plan) continue;
    scored.push_back(
        Scored{name, model.PlanCost(plan), RunPlanMs(&ctx, inputs, plan)});
  }
  for (const Scored& s : scored) {
    PrintRow(s.name, {s.predicted, s.measured}, 3);
  }

  // Rank agreement between prediction and measurement (Spearman-ish).
  auto rank_of = [&](auto key) {
    std::vector<size_t> idx(scored.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return key(a) < key(b); });
    std::vector<size_t> rank(scored.size());
    for (size_t pos = 0; pos < idx.size(); ++pos) rank[idx[pos]] = pos;
    return rank;
  };
  auto pr = rank_of([&](size_t i) { return scored[i].predicted; });
  auto mr = rank_of([&](size_t i) { return scored[i].measured; });
  size_t agreements = 0;
  for (size_t i = 0; i < scored.size(); ++i) {
    if (pr[i] == mr[i]) ++agreements;
  }
  std::cout << "rank agreement: " << agreements << "/" << scored.size()
            << " candidates ranked identically; cheapest predicted = '"
            << scored[std::min_element(scored.begin(), scored.end(),
                                       [](auto& a, auto& b) {
                                         return a.predicted < b.predicted;
                                       }) -
                      scored.begin()]
                   .name
            << "', cheapest measured = '"
            << scored[std::min_element(scored.begin(), scored.end(),
                                       [](auto& a, auto& b) {
                                         return a.measured < b.measured;
                                       }) -
                      scored.begin()]
                   .name
            << "'\n";
}

}  // namespace
}  // namespace spstream::bench

int main() {
  std::cout << "Ablations A4/A5: security-aware optimization\n";
  spstream::bench::SharingAblation();
  spstream::bench::CostModelFidelity();
  return 0;
}
