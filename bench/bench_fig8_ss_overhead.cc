// Figure 8 — overhead of the Security Shield operator, measured inside the
// select-project location query plan:
//
//   8a  per-operator cost (project / select / SS) vs sp:tuple ratio
//   8b  per-operator cost vs query-specifier role count R {1,10,50,100,500}
#include "bench_util.h"
#include "exec/sa_project.h"
#include "exec/sa_select.h"
#include "exec/ss_operator.h"

namespace spstream::bench {
namespace {

constexpr size_t kUpdates = 60000;

struct OpCosts {
  double project_ms;
  double select_ms;
  double ss_ms;
};

/// Run source -> SS -> select -> project -> sink and report per-operator
/// processing time per 100 tuples (ms).
OpCosts RunPlan(RoleCatalog* roles, StreamCatalog* streams,
                const EnforcementWorkload& wl,
                std::vector<RoleSet> predicates,
                bool use_predicate_index = true) {
  ExecContext ctx{roles, streams};
  Pipeline pipeline(&ctx);
  auto* src = pipeline.Add<SourceOperator>("src", wl.elements);
  SsOptions ss_opts;
  ss_opts.predicates = std::move(predicates);
  ss_opts.stream_name = wl.stream_name;
  ss_opts.schema = wl.schema;
  ss_opts.use_predicate_index = use_predicate_index;
  auto* ss = pipeline.Add<SsOperator>(std::move(ss_opts));
  auto* sel = pipeline.Add<SaSelect>(Expr::Compare(
      Expr::CmpOp::kLe,
      Expr::Distance(Expr::Column(1), Expr::Column(2),
                     Expr::Literal(Value(1450.0)),
                     Expr::Literal(Value(1450.0))),
      Expr::Literal(Value(1200.0))));
  auto* proj =
      pipeline.Add<SaProject>(std::vector<int>{0, 1, 2}, wl.schema);
  auto* sink = pipeline.Add<CollectorSink>();
  src->AddOutput(ss);
  ss->AddOutput(sel);
  sel->AddOutput(proj);
  proj->AddOutput(sink);
  pipeline.Run(256);

  // Per-operator costs come out of the harvested registry slice, the same
  // surface \metrics reads, not the raw operator pointers.
  QueryMetricsSnapshot snap = HarvestPipeline(pipeline, "fig8");
  const int64_t n = static_cast<int64_t>(kUpdates);
  return OpCosts{MsPer100Tuples(OpMetrics(snap, "project").total_nanos, n),
                 MsPer100Tuples(OpMetrics(snap, "select").total_nanos, n),
                 MsPer100Tuples(OpMetrics(snap, "SS").total_nanos, n)};
}

void RatioSweep() {
  PrintHeader("Figure 8a",
              "operator cost (ms per 100 tuples) vs sp:tuple ratio");
  PrintLegend("sp:tuple", {"project", "select", "SS"});
  for (int k : {1, 10, 25, 50, 100}) {
    RoleCatalog roles;
    StreamCatalog streams;
    EnforcementWorkload wl = MakeLocationWorkload(
        &roles, kUpdates, k, /*roles_per_policy=*/2, /*role_pool=*/100);
    auto r1 = roles.Lookup("r1").value();
    auto r2 = roles.Lookup("r2").value();
    OpCosts c = RunPlan(&roles, &streams, wl,
                        {RoleSet::FromIds({r1, r2})});
    PrintRow("1/" + std::to_string(k),
             {c.project_ms, c.select_ms, c.ss_ms}, 4);
  }
}

void RoleCountSweep() {
  PrintHeader("Figure 8b",
              "operator cost (ms per 100 tuples) vs SS state role count R");
  PrintLegend("role count", {"project", "select", "SS", "SS(no idx)"});
  for (size_t r : {size_t{1}, size_t{10}, size_t{50}, size_t{100},
                   size_t{500}}) {
    RoleCatalog roles;
    StreamCatalog streams;
    const size_t pool = std::max<size_t>(600, r + 1);
    EnforcementWorkload wl = MakeLocationWorkload(
        &roles, kUpdates, /*tuples_per_sp=*/10, /*roles_per_policy=*/2,
        /*role_pool=*/pool);
    // SS state: R query specifiers, one single-role predicate each (the
    // paper's "roles of query specifiers who want to access the results").
    std::vector<RoleSet> preds;
    preds.reserve(r);
    for (size_t i = 0; i < r; ++i) {
      preds.push_back(RoleSet::Of(static_cast<RoleId>(i)));
    }
    OpCosts with_index = RunPlan(&roles, &streams, wl, preds, true);
    OpCosts no_index = RunPlan(&roles, &streams, wl, preds, false);
    PrintRow("R=" + std::to_string(r),
             {with_index.project_ms, with_index.select_ms,
              with_index.ss_ms, no_index.ss_ms},
             4);
  }
}

}  // namespace
}  // namespace spstream::bench

int main() {
  std::cout << "Reproduction of Figure 8: Security Shield operator "
               "overhead\n(select-project location query, "
            << spstream::bench::kUpdates << " updates)\n";
  spstream::bench::RatioSweep();
  spstream::bench::RoleCountSweep();
  return 0;
}
