#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace spstream::bench {

void PrintHeader(const std::string& figure, const std::string& title) {
  std::cout << "\n=== " << figure << ": " << title << " ===\n";
}

void PrintLegend(const std::string& first,
                 const std::vector<std::string>& columns) {
  std::cout << std::left << std::setw(18) << first;
  for (const std::string& c : columns) {
    std::cout << std::right << std::setw(16) << c;
  }
  std::cout << "\n";
}

void PrintRow(const std::string& label, const std::vector<double>& values,
              int precision) {
  std::cout << std::left << std::setw(18) << label;
  for (double v : values) {
    std::cout << std::right << std::setw(16) << std::fixed
              << std::setprecision(precision) << v;
  }
  std::cout << "\n";
}

EnforcementWorkload MakeLocationWorkload(RoleCatalog* roles,
                                         size_t num_updates,
                                         int tuples_per_sp,
                                         size_t roles_per_policy,
                                         size_t role_pool,
                                         size_t distinct_policies,
                                         uint64_t seed) {
  MovingObjectsGenerator::SeedRoles(roles, role_pool);
  MovingObjectsOptions opts;
  opts.num_objects = std::min<size_t>(num_updates, 110000);  // paper: 110K
  opts.num_updates = num_updates;
  opts.tuples_per_sp = tuples_per_sp;
  opts.roles_per_policy = roles_per_policy;
  opts.role_pool = role_pool;
  opts.distinct_policies = distinct_policies;
  opts.seed = seed;
  RoadNetworkOptions net_opts;
  net_opts.grid_width = 30;  // Worcester-scale synthetic road grid
  net_opts.grid_height = 30;
  MovingObjectsGenerator gen(roles, RoadNetwork::Grid(net_opts), opts);
  EnforcementWorkload wl;
  wl.elements = gen.Generate();
  wl.schema = MovingObjectsGenerator::LocationSchema("Location");
  wl.stream_name = "Location";
  return wl;
}

QueryMetricsSnapshot HarvestPipeline(const Pipeline& pipeline,
                                     const std::string& query) {
  MetricsRegistry registry;
  pipeline.HarvestInto(&registry, query, Pipeline::HarvestMode::kMerge);
  MetricsSnapshot snap = registry.Snapshot();
  const QueryMetricsSnapshot* q = snap.FindQuery(query);
  if (q == nullptr) return QueryMetricsSnapshot{};  // empty pipeline
  return *q;
}

const OperatorMetrics& OpMetrics(const QueryMetricsSnapshot& snap,
                                 const std::string& label) {
  const OperatorMetrics* m = snap.FindOperator(label);
  if (m == nullptr) {
    std::cerr << "bench error: no operator labeled '" << label
              << "' in harvested metrics of '" << snap.query << "'\n";
    std::abort();
  }
  return *m;
}

double RepStats::Min() const {
  double m = seconds.empty() ? 0.0 : seconds[0];
  for (double s : seconds) m = std::min(m, s);
  return m;
}

double RepStats::Mean() const {
  if (seconds.empty()) return 0.0;
  double sum = 0;
  for (double s : seconds) sum += s;
  return sum / static_cast<double>(seconds.size());
}

double RepStats::Stddev() const {
  if (seconds.size() < 2) return 0.0;
  const double mean = Mean();
  double sq = 0;
  for (double s : seconds) sq += (s - mean) * (s - mean);
  return std::sqrt(sq / static_cast<double>(seconds.size()));
}

RepStats MeasureReps(int reps, const std::function<void()>& warmup,
                     const std::function<double()>& timed_rep) {
  warmup();
  RepStats stats;
  stats.seconds.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) stats.seconds.push_back(timed_rep());
  return stats;
}

void AppendRepStatsJson(std::ostream& os, const RepStats& stats) {
  os << "\"seconds\":" << stats.Min() << ",\"seconds_mean\":" << stats.Mean()
     << ",\"seconds_stddev\":" << stats.Stddev()
     << ",\"reps\":" << stats.seconds.size();
}

double MsPer100Tuples(int64_t nanos, int64_t tuples) {
  if (tuples == 0) return 0.0;
  return (static_cast<double>(nanos) / 1e6) /
         (static_cast<double>(tuples) / 100.0);
}

EnforcementQuery MakeRegionQuery(RoleSet query_roles, double center_x,
                                 double center_y, double radius) {
  EnforcementQuery q;
  q.select_predicate = Expr::Compare(
      Expr::CmpOp::kLe,
      Expr::Distance(Expr::Column(1), Expr::Column(2),
                     Expr::Literal(Value(center_x)),
                     Expr::Literal(Value(center_y))),
      Expr::Literal(Value(radius)));
  q.project_columns = {0, 1, 2};
  q.query_roles = std::move(query_roles);
  return q;
}

}  // namespace spstream::bench
