// Shared helpers for the figure-reproduction benchmarks: fixed-width table
// printing in the shape of the paper's plots, plus common workload/query
// builders.
#pragma once

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/enforcement.h"
#include "exec/expr.h"
#include "security/role_catalog.h"
#include "workload/moving_objects.h"
#include "workload/road_network.h"

namespace spstream::bench {

/// \brief Print a section header for one figure/panel.
void PrintHeader(const std::string& figure, const std::string& title);

/// \brief Print one table row: first column label + numeric columns.
void PrintRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

/// \brief Print the column legend.
void PrintLegend(const std::string& first,
                 const std::vector<std::string>& columns);

/// \brief Build the §VII.A moving-objects workload.
EnforcementWorkload MakeLocationWorkload(RoleCatalog* roles,
                                         size_t num_updates,
                                         int tuples_per_sp,
                                         size_t roles_per_policy,
                                         size_t role_pool,
                                         size_t distinct_policies = 0,
                                         uint64_t seed = 2008);

/// \brief The paper's running query: "continuously retrieve all moving
/// objects in the two mile region around the store" — a select-project over
/// the location stream.
EnforcementQuery MakeRegionQuery(RoleSet query_roles, double center_x,
                                 double center_y, double radius);

}  // namespace spstream::bench
