// Shared helpers for the figure-reproduction benchmarks: fixed-width table
// printing in the shape of the paper's plots, plus common workload/query
// builders.
#pragma once

#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/enforcement.h"
#include "common/metrics_registry.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "security/role_catalog.h"
#include "workload/moving_objects.h"
#include "workload/road_network.h"

namespace spstream::bench {

/// \brief Print a section header for one figure/panel.
void PrintHeader(const std::string& figure, const std::string& title);

/// \brief Print one table row: first column label + numeric columns.
void PrintRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

/// \brief Print the column legend.
void PrintLegend(const std::string& first,
                 const std::vector<std::string>& columns);

/// \brief Build the §VII.A moving-objects workload.
EnforcementWorkload MakeLocationWorkload(RoleCatalog* roles,
                                         size_t num_updates,
                                         int tuples_per_sp,
                                         size_t roles_per_policy,
                                         size_t role_pool,
                                         size_t distinct_policies = 0,
                                         uint64_t seed = 2008);

/// \brief The paper's running query: "continuously retrieve all moving
/// objects in the two mile region around the store" — a select-project over
/// the location stream.
EnforcementQuery MakeRegionQuery(RoleSet query_roles, double center_x,
                                 double center_y, double radius);

// ---- registry consumption ------------------------------------------------
// The figures read operator costs through the same MetricsRegistry surface
// the engine exposes, instead of poking individual Operator pointers.

/// \brief Harvest a finished pipeline into a one-off registry and return the
/// per-query slice (bench pipelines run once, so metrics merge cleanly).
QueryMetricsSnapshot HarvestPipeline(const Pipeline& pipeline,
                                     const std::string& query = "bench");

/// \brief Metrics of the operator labeled `label` in a harvested slice.
/// Aborts with a diagnostic when the label is absent — a bench mislabeling
/// is a bug, not a runtime condition.
const OperatorMetrics& OpMetrics(const QueryMetricsSnapshot& snap,
                                 const std::string& label);

/// \brief The figures' normalization: milliseconds per 100 input tuples.
double MsPer100Tuples(int64_t nanos, int64_t tuples);

// ---- repetition statistics -------------------------------------------------
// Throughput benches report min/mean/stddev over N repetitions after a
// discarded warmup, instead of a single hot-or-cold run. The min is the
// headline (least scheduler noise); the stddev is the error bar.

/// \brief Per-configuration timing across repetitions (seconds each).
struct RepStats {
  std::vector<double> seconds;
  double Min() const;
  double Mean() const;
  double Stddev() const;  ///< population stddev; 0 with fewer than 2 reps
};

/// \brief Run `warmup` once (untimed, discarded), then `reps` calls of
/// `timed_rep` — which runs one full repetition and returns its elapsed
/// seconds — and collect the timings.
RepStats MeasureReps(int reps, const std::function<void()>& warmup,
                     const std::function<double()>& timed_rep);

/// \brief Append the shared JSON fields of one repeated measurement:
/// "seconds":<min>,"seconds_mean":...,"seconds_stddev":...,"reps":N.
void AppendRepStatsJson(std::ostream& os, const RepStats& stats);

}  // namespace spstream::bench
