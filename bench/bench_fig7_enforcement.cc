// Figure 7 — comparison of access-control enforcement mechanisms.
//
//   7a  output rate (tuples/ms)       vs sp:tuple ratio {1/1 .. 1/100}
//   7b  processing cost per tuple     vs sp:tuple ratio
//   7c  memory (MB)                   vs policy size |R| in {1,10,25,50,100}
//   7d  processing cost per 100 tup.  vs policy size |R|
//
// Mechanisms: store-and-probe, tuple-embedded policies, security
// punctuations (ours). Same workload, same select-project region query.
#include "bench_util.h"

namespace spstream::bench {
namespace {

constexpr size_t kUpdates = 60000;
constexpr double kMb = 1024.0 * 1024.0;

struct Trio {
  EnforcementResult store, embedded, sp;
};

Trio RunAll(RoleCatalog* roles, StreamCatalog* streams,
            const EnforcementWorkload& wl, const EnforcementQuery& q) {
  Trio t;
  StoreAndProbeDriver store(roles);
  TupleEmbeddedDriver embedded(roles);
  SpFrameworkDriver sp(roles, streams);
  t.store = store.Run(wl, q);
  t.embedded = embedded.Run(wl, q);
  t.sp = sp.Run(wl, q);
  return t;
}

void RatioSweep() {
  const int kRatios[] = {1, 10, 25, 50, 100};
  std::vector<std::vector<double>> output_rate(5), per_tuple(5);
  std::vector<std::string> ratio_labels;

  for (int k : kRatios) {
    RoleCatalog roles;
    StreamCatalog streams;
    EnforcementWorkload wl = MakeLocationWorkload(
        &roles, kUpdates, k, /*roles_per_policy=*/2, /*role_pool=*/100);
    auto r1 = roles.Lookup("r1").value();
    auto r2 = roles.Lookup("r2").value();
    EnforcementQuery q =
        MakeRegionQuery(RoleSet::FromIds({r1, r2}), 1450, 1450, 1000);
    Trio t = RunAll(&roles, &streams, wl, q);
    ratio_labels.push_back("1/" + std::to_string(k));
    const size_t i = ratio_labels.size() - 1;
    output_rate[i] = {t.store.output_rate_per_ms,
                      t.embedded.output_rate_per_ms,
                      t.sp.output_rate_per_ms};
    per_tuple[i] = {t.store.cost_per_tuple_us, t.embedded.cost_per_tuple_us,
                    t.sp.cost_per_tuple_us};
  }

  PrintHeader("Figure 7a", "output rate (tuples/ms) vs sp:tuple ratio");
  PrintLegend("sp:tuple",
              {"store-and-probe", "tuple-embedded", "security-punct"});
  for (size_t i = 0; i < ratio_labels.size(); ++i) {
    PrintRow(ratio_labels[i], output_rate[i], 1);
  }

  PrintHeader("Figure 7b",
              "processing cost per tuple (us) vs sp:tuple ratio");
  PrintLegend("sp:tuple",
              {"store-and-probe", "tuple-embedded", "security-punct"});
  for (size_t i = 0; i < ratio_labels.size(); ++i) {
    PrintRow(ratio_labels[i], per_tuple[i], 3);
  }
}

void PolicySizeSweep() {
  // Paper: sp:tuple ratio fixed at 1/10; explicit per-role authorizations
  // (no pattern compression); policies drawn from a shared pool so
  // store-and-probe keeps a single copy of each.
  const size_t kSizes[] = {1, 10, 25, 50, 100};
  std::vector<std::string> labels;
  std::vector<std::vector<double>> mem(5), cost100(5);

  for (size_t r : kSizes) {
    RoleCatalog roles;
    StreamCatalog streams;
    EnforcementWorkload wl = MakeLocationWorkload(
        &roles, kUpdates, /*tuples_per_sp=*/10, /*roles_per_policy=*/r,
        /*role_pool=*/128, /*distinct_policies=*/64);
    auto r1 = roles.Lookup("r1").value();
    EnforcementQuery q = MakeRegionQuery(RoleSet::Of(r1), 1450, 1450, 1200);
    Trio t = RunAll(&roles, &streams, wl, q);
    labels.push_back("|R|=" + std::to_string(r));
    const size_t i = labels.size() - 1;
    mem[i] = {t.store.policy_memory_bytes / kMb,
              t.embedded.policy_memory_bytes / kMb,
              t.sp.policy_memory_bytes / kMb};
    cost100[i] = {t.store.cost_per_tuple_us * 100 / 1000.0,
                  t.embedded.cost_per_tuple_us * 100 / 1000.0,
                  t.sp.cost_per_tuple_us * 100 / 1000.0};
  }

  PrintHeader("Figure 7c", "policy memory (MB) vs policy size |R|");
  PrintLegend("policy size",
              {"store-and-probe", "tuple-embedded", "security-punct"});
  for (size_t i = 0; i < labels.size(); ++i) PrintRow(labels[i], mem[i], 4);

  PrintHeader("Figure 7d",
              "processing cost per 100 tuples (ms) vs policy size |R|");
  PrintLegend("policy size",
              {"store-and-probe", "tuple-embedded", "security-punct"});
  for (size_t i = 0; i < labels.size(); ++i) {
    PrintRow(labels[i], cost100[i], 4);
  }
}

}  // namespace
}  // namespace spstream::bench

int main() {
  std::cout << "Reproduction of Figure 7: comparison of access control "
               "enforcement mechanisms\n"
            << "(workload: moving-objects location stream, "
            << spstream::bench::kUpdates
            << " updates, tuple-level policies, select-project query)\n";
  spstream::bench::RatioSweep();
  spstream::bench::PolicySizeSweep();
  return 0;
}
