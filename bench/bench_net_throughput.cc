// Network subsystem throughput/latency — what the wire costs: end-to-end
// tuples/sec and per-batch p50/p99 source->client latency through the
// loopback stream server (net/server.h) versus the same workload driven
// in-process through EngineService. Reported as min/mean/stddev over
// repetitions after a discarded warmup (MeasureReps). Also emits a
// machine-readable JSON summary (stdout, and BENCH_net_throughput.json when
// SPSTREAM_BENCH_JSON_DIR is set) so the bench trajectory can be tracked
// across commits.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "engine/engine_service.h"
#include "net/client.h"
#include "net/server.h"

namespace spstream::bench {
namespace {

constexpr int kTuples = 20000;
constexpr int kBatch = 64;
constexpr int kReps = 3;

SchemaPtr BenchSchema() {
  return MakeSchema("Feed", {Field{"object_id", ValueType::kInt64},
                             Field{"x", ValueType::kDouble},
                             Field{"y", ValueType::kDouble}});
}

std::vector<StreamElement> MakeBatch(int base, int n) {
  std::vector<StreamElement> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int64_t id = base + i;
    out.emplace_back(Tuple(0, id,
                           {Value(id), Value(1000.0 + id % 97),
                            Value(2000.0 - id % 89)},
                           id + 1));
  }
  return out;
}

struct NetBenchResult {
  std::string mode;
  RepStats stats;
  double tuples_per_sec = 0;  // from the min (headline) repetition
  double p50_us = 0;          // per-batch latency of the last repetition
  double p99_us = 0;
};

double Percentile(std::vector<double>& us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(us.size()));
  return us[std::min(idx, us.size() - 1)];
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetupCatalog(EngineService* service) {
  SpStreamEngine* engine = service->UnsafeEngine();
  engine->RegisterRole("analyst");
  (void)engine->RegisterStream(BenchSchema());
  (void)engine->RegisterSubject("bench", {"analyst"});
}

// The same logical workload both modes run: one authorizing sp, then
// kTuples tuples in kBatch-sized batches, results drained per batch. Each
// repetition is a fresh service/engine (and connection, for loopback).
double OneInProcessRep(std::vector<double>* batch_us, size_t* received) {
  EngineService service;
  SetupCatalog(&service);
  SpStreamEngine* engine = service.UnsafeEngine();
  const QueryId qid =
      engine->RegisterQuery("bench", "SELECT object_id, x FROM Feed")
          .value();
  (void)engine->ExecuteInsertSp(
      "INSERT SP INTO STREAM Feed LET DDP = (Feed, *, *), SRP = "
      "(RBAC, analyst), TS = 0");
  (void)engine->Run();

  batch_us->clear();
  *received = 0;
  const int64_t start = NowUs();
  for (int base = 0; base < kTuples; base += kBatch) {
    const int64_t t0 = NowUs();
    (void)engine->Push("Feed", MakeBatch(base, kBatch));
    (void)engine->Run();
    *received += engine->TakeResults(qid).value().size();
    batch_us->push_back(static_cast<double>(NowUs() - t0));
  }
  return static_cast<double>(NowUs() - start) / 1e6;
}

double OneLoopbackRep(std::vector<double>* batch_us, size_t* received) {
  EngineService service;
  SetupCatalog(&service);
  StreamServer server(&service);
  if (!server.Start(0).ok()) return 0;

  StreamClient client;
  if (!client.Connect("127.0.0.1", server.port(), "bench").ok()) return 0;
  const uint64_t qid =
      client.RegisterQuery("bench", "SELECT object_id, x FROM Feed").value();
  (void)client.Subscribe(qid);
  (void)client.InsertSp(
      "INSERT SP INTO STREAM Feed LET DDP = (Feed, *, *), SRP = "
      "(RBAC, analyst), TS = 0");

  batch_us->clear();
  *received = 0;
  const int64_t start = NowUs();
  for (int base = 0; base < kTuples; base += kBatch) {
    const int64_t t0 = NowUs();
    (void)client.Push("Feed", MakeBatch(base, kBatch));
    // Source->client latency: the batch is pushed, an epoch runs, and the
    // authorized results come back over the socket.
    (void)client.Run();
    *received += client.TakeResults(qid).size();
    batch_us->push_back(static_cast<double>(NowUs() - t0));
  }
  const double seconds = static_cast<double>(NowUs() - start) / 1e6;
  client.Close();
  server.Stop();
  return seconds;
}

NetBenchResult MeasureMode(
    const std::string& mode,
    const std::function<double(std::vector<double>*, size_t*)>& one_rep) {
  std::vector<double> batch_us;
  size_t received = 0;
  NetBenchResult r;
  r.mode = mode;
  r.stats = MeasureReps(
      kReps, [&] { (void)one_rep(&batch_us, &received); },
      [&] { return one_rep(&batch_us, &received); });
  r.tuples_per_sec = static_cast<double>(received) / r.stats.Min();
  r.p50_us = Percentile(batch_us, 0.50);
  r.p99_us = Percentile(batch_us, 0.99);
  return r;
}

std::string ToJson(const std::vector<NetBenchResult>& results) {
  std::ostringstream os;
  os << "{\"bench\":\"net_throughput\",\"config\":{\"tuples\":" << kTuples
     << ",\"batch\":" << kBatch << ",\"reps\":" << kReps << "},\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const NetBenchResult& r = results[i];
    if (i) os << ",";
    os << "{\"mode\":\"" << r.mode << "\",";
    AppendRepStatsJson(os, r.stats);
    os << ",\"tuples_per_sec\":" << r.tuples_per_sec
       << ",\"batch_p50_us\":" << r.p50_us << ",\"batch_p99_us\":" << r.p99_us
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream::bench;
  std::cout << "Network subsystem: loopback stream server vs in-process "
               "engine (" << kTuples << " tuples, batches of " << kBatch
            << ", " << kReps << " reps + warmup)\n";

  std::vector<NetBenchResult> results;
  results.push_back(MeasureMode("in_process", OneInProcessRep));
  results.push_back(MeasureMode("loopback", OneLoopbackRep));

  PrintHeader("Net", "tuples/sec and per-batch latency (us)");
  PrintLegend("mode", {"tuples/s", "p50", "p99", "stddev_s"});
  for (const NetBenchResult& r : results) {
    PrintRow(r.mode,
             {r.tuples_per_sec, r.p50_us, r.p99_us, r.stats.Stddev()}, 1);
  }

  const std::string json = ToJson(results);
  std::cout << "\nJSON: " << json << "\n";
  if (const char* dir = std::getenv("SPSTREAM_BENCH_JSON_DIR")) {
    const std::string path =
        std::string(dir) + "/BENCH_net_throughput.json";
    std::ofstream out(path);
    out << json << "\n";
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\nThe wire adds framing + a socket round trip per epoch; "
               "credit flow keeps the\nserver's buffering bounded while the "
               "loopback pipeline stays within the same\norder of magnitude "
               "as direct in-process pushes.\n";
  return 0;
}
