// Network subsystem throughput/latency — what the wire costs: end-to-end
// tuples/sec and per-batch p50/p99 source->client latency through the
// loopback stream server (net/server.h) versus the same workload driven
// in-process through EngineService. Reported as min/mean/stddev over
// repetitions after a discarded warmup (MeasureReps). Also emits a
// machine-readable JSON summary (stdout, and BENCH_net_throughput.json when
// SPSTREAM_BENCH_JSON_DIR is set) so the bench trajectory can be tracked
// across commits.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/resource.h>

#include "bench_util.h"
#include "engine/engine_service.h"
#include "net/client.h"
#include "net/server.h"

namespace spstream::bench {
namespace {

constexpr int kTuples = 20000;
constexpr int kBatch = 64;
constexpr int kReps = 3;

// fan_in mode: many producer connections funneling into one query. The
// point is the reactor's scaling claim — 10k concurrent connections on
// O(net_loops) threads — so the connection count is the workload.
constexpr int kFanConnsTarget = 10000;
constexpr int kFanBatch = 8;   // tuples per producer push
constexpr int kFanGroup = 64;  // producers pushed between epochs

SchemaPtr BenchSchema() {
  return MakeSchema("Feed", {Field{"object_id", ValueType::kInt64},
                             Field{"x", ValueType::kDouble},
                             Field{"y", ValueType::kDouble}});
}

std::vector<StreamElement> MakeBatch(int base, int n) {
  std::vector<StreamElement> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int64_t id = base + i;
    out.emplace_back(Tuple(0, id,
                           {Value(id), Value(1000.0 + id % 97),
                            Value(2000.0 - id % 89)},
                           id + 1));
  }
  return out;
}

struct NetBenchResult {
  std::string mode;
  RepStats stats;
  double tuples_per_sec = 0;  // from the min (headline) repetition
  double p50_us = 0;          // per-batch latency of the last repetition
  double p99_us = 0;
  // fan_in only: the scaling evidence.
  int conns = 0;
  int threads_peak = 0;       // whole process, at 10k live connections
  int threads_old_model = 0;  // thread-per-connection estimate: conns + 2
};

/// Threads of this process per /proc/self/status — the reactor's headline
/// number next to the old thread-per-connection architecture's conns + 2
/// (one reader per connection, plus the accept and serve loops).
int CountThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) return std::atoi(line.c_str() + 8);
  }
  return -1;
}

/// 10k connections need ~20k fds (client + server end per connection).
/// Raise RLIMIT_NOFILE when the process may; otherwise scale the fan-in
/// down to what the limit allows rather than failing.
int ResolveFanConns() {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1000;
  const rlim_t want = 65536;
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = rl.rlim_max < want ? rl.rlim_max : want;
    if (raised.rlim_max < want) raised.rlim_max = want;  // root may raise
    if (setrlimit(RLIMIT_NOFILE, &raised) != 0) {
      raised.rlim_max = rl.rlim_max;  // not root: stay under the hard cap
      raised.rlim_cur = rl.rlim_max < want ? rl.rlim_max : want;
      (void)setrlimit(RLIMIT_NOFILE, &raised);
    }
    (void)getrlimit(RLIMIT_NOFILE, &rl);
  }
  const rlim_t headroom = rl.rlim_cur > 256 ? rl.rlim_cur - 256 : 0;
  const int max_conns = static_cast<int>(headroom / 2);
  return std::min(kFanConnsTarget, max_conns);
}

double Percentile(std::vector<double>& us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(us.size()));
  return us[std::min(idx, us.size() - 1)];
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetupCatalog(EngineService* service) {
  SpStreamEngine* engine = service->UnsafeEngine();
  engine->RegisterRole("analyst");
  (void)engine->RegisterStream(BenchSchema());
  (void)engine->RegisterSubject("bench", {"analyst"});
}

// The same logical workload both modes run: one authorizing sp, then
// kTuples tuples in kBatch-sized batches, results drained per batch. Each
// repetition is a fresh service/engine (and connection, for loopback).
double OneInProcessRep(std::vector<double>* batch_us, size_t* received) {
  EngineService service;
  SetupCatalog(&service);
  SpStreamEngine* engine = service.UnsafeEngine();
  const QueryId qid =
      engine->RegisterQuery("bench", "SELECT object_id, x FROM Feed")
          .value();
  (void)engine->ExecuteInsertSp(
      "INSERT SP INTO STREAM Feed LET DDP = (Feed, *, *), SRP = "
      "(RBAC, analyst), TS = 0");
  (void)engine->Run();

  batch_us->clear();
  *received = 0;
  const int64_t start = NowUs();
  for (int base = 0; base < kTuples; base += kBatch) {
    const int64_t t0 = NowUs();
    (void)engine->Push("Feed", MakeBatch(base, kBatch));
    (void)engine->Run();
    *received += engine->TakeResults(qid).value().size();
    batch_us->push_back(static_cast<double>(NowUs() - t0));
  }
  return static_cast<double>(NowUs() - start) / 1e6;
}

double OneLoopbackRep(std::vector<double>* batch_us, size_t* received) {
  EngineService service;
  SetupCatalog(&service);
  StreamServer server(&service);
  if (!server.Start(0).ok()) return 0;

  StreamClient client;
  if (!client.Connect("127.0.0.1", server.port(), "bench").ok()) return 0;
  const uint64_t qid =
      client.RegisterQuery("bench", "SELECT object_id, x FROM Feed").value();
  (void)client.Subscribe(qid);
  (void)client.InsertSp(
      "INSERT SP INTO STREAM Feed LET DDP = (Feed, *, *), SRP = "
      "(RBAC, analyst), TS = 0");

  batch_us->clear();
  *received = 0;
  const int64_t start = NowUs();
  for (int base = 0; base < kTuples; base += kBatch) {
    const int64_t t0 = NowUs();
    (void)client.Push("Feed", MakeBatch(base, kBatch));
    // Source->client latency: the batch is pushed, an epoch runs, and the
    // authorized results come back over the socket.
    (void)client.Run();
    *received += client.TakeResults(qid).size();
    batch_us->push_back(static_cast<double>(NowUs() - t0));
  }
  const double seconds = static_cast<double>(NowUs() - start) / 1e6;
  client.Close();
  server.Stop();
  return seconds;
}

// One fan-in repetition: `conns` producer connections each push one
// kFanBatch-tuple batch, pipelined in groups of kFanGroup between epochs;
// a single subscriber drains the aggregate. Latency samples are per epoch
// cycle (push group -> RUN -> results back).
double OneFanInRep(int conns, std::vector<double>* batch_us, size_t* received,
                   int* threads_peak) {
  EngineService service;
  SetupCatalog(&service);
  StreamServer server(&service);
  if (!server.Start(0).ok()) return 0;

  StreamClient subscriber;
  if (!subscriber.Connect("127.0.0.1", server.port(), "fan-sub").ok()) {
    return 0;
  }
  const uint64_t qid =
      subscriber.RegisterQuery("bench", "SELECT object_id, x FROM Feed")
          .value();
  (void)subscriber.Subscribe(qid);
  (void)subscriber.InsertSp(
      "INSERT SP INTO STREAM Feed LET DDP = (Feed, *, *), SRP = "
      "(RBAC, analyst), TS = 0");

  std::vector<StreamClient> producers(static_cast<size_t>(conns));
  for (int i = 0; i < conns; ++i) {
    if (!producers[static_cast<size_t>(i)]
             .Connect("127.0.0.1", server.port(), "fan")
             .ok()) {
      return 0;
    }
  }
  *threads_peak = CountThreads();

  batch_us->clear();
  *received = 0;
  const size_t total = static_cast<size_t>(conns) * kFanBatch;
  const int64_t start = NowUs();
  for (int g = 0; g < conns; g += kFanGroup) {
    const int64_t t0 = NowUs();
    const int end = std::min(g + kFanGroup, conns);
    for (int i = g; i < end; ++i) {
      (void)producers[static_cast<size_t>(i)].Push(
          "Feed", MakeBatch(i * kFanBatch, kFanBatch));
    }
    (void)subscriber.Run();
    *received += subscriber.TakeResults(qid).size();
    batch_us->push_back(static_cast<double>(NowUs() - t0));
  }
  for (int tries = 0; *received < total && tries < 16; ++tries) {
    (void)subscriber.Run();
    *received += subscriber.TakeResults(qid).size();
  }
  const double seconds = static_cast<double>(NowUs() - start) / 1e6;
  server.Stop();
  return seconds;
}

NetBenchResult MeasureMode(
    const std::string& mode,
    const std::function<double(std::vector<double>*, size_t*)>& one_rep) {
  std::vector<double> batch_us;
  size_t received = 0;
  NetBenchResult r;
  r.mode = mode;
  r.stats = MeasureReps(
      kReps, [&] { (void)one_rep(&batch_us, &received); },
      [&] { return one_rep(&batch_us, &received); });
  r.tuples_per_sec = static_cast<double>(received) / r.stats.Min();
  r.p50_us = Percentile(batch_us, 0.50);
  r.p99_us = Percentile(batch_us, 0.99);
  return r;
}

std::string ToJson(const std::vector<NetBenchResult>& results) {
  std::ostringstream os;
  os << "{\"bench\":\"net_throughput\",\"config\":{\"tuples\":" << kTuples
     << ",\"batch\":" << kBatch << ",\"reps\":" << kReps << "},\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const NetBenchResult& r = results[i];
    if (i) os << ",";
    os << "{\"mode\":\"" << r.mode << "\",";
    AppendRepStatsJson(os, r.stats);
    os << ",\"tuples_per_sec\":" << r.tuples_per_sec
       << ",\"batch_p50_us\":" << r.p50_us << ",\"batch_p99_us\":" << r.p99_us;
    if (r.conns > 0) {
      os << ",\"conns\":" << r.conns << ",\"threads_peak\":" << r.threads_peak
         << ",\"threads_old_model\":" << r.threads_old_model;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream::bench;
  std::cout << "Network subsystem: loopback stream server vs in-process "
               "engine (" << kTuples << " tuples, batches of " << kBatch
            << ", " << kReps << " reps + warmup)\n";

  std::vector<NetBenchResult> results;
  results.push_back(MeasureMode("in_process", OneInProcessRep));
  results.push_back(MeasureMode("loopback", OneLoopbackRep));

  const int fan_conns = ResolveFanConns();
  std::cout << "fan_in: " << fan_conns << " producer connections ("
            << kFanBatch << " tuples each, epochs every " << kFanGroup
            << " producers)\n";
  int threads_peak = 0;
  NetBenchResult fan = MeasureMode(
      "fan_in", [&](std::vector<double>* batch_us, size_t* received) {
        return OneFanInRep(fan_conns, batch_us, received, &threads_peak);
      });
  fan.conns = fan_conns;
  fan.threads_peak = threads_peak;
  fan.threads_old_model = fan_conns + 2;
  results.push_back(fan);

  PrintHeader("Net", "tuples/sec and per-batch latency (us)");
  PrintLegend("mode", {"tuples/s", "p50", "p99", "stddev_s"});
  for (const NetBenchResult& r : results) {
    PrintRow(r.mode,
             {r.tuples_per_sec, r.p50_us, r.p99_us, r.stats.Stddev()}, 1);
  }
  std::cout << "fan_in threads at " << fan.conns
            << " live connections: " << fan.threads_peak
            << " (thread-per-connection model would need "
            << fan.threads_old_model << ")\n";

  const std::string json = ToJson(results);
  std::cout << "\nJSON: " << json << "\n";
  if (const char* dir = std::getenv("SPSTREAM_BENCH_JSON_DIR")) {
    const std::string path =
        std::string(dir) + "/BENCH_net_throughput.json";
    std::ofstream out(path);
    out << json << "\n";
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\nThe wire adds framing + a socket round trip per epoch; "
               "credit flow keeps the\nserver's buffering bounded while the "
               "loopback pipeline stays within the same\norder of magnitude "
               "as direct in-process pushes.\n";
  return 0;
}
