// Wire overhead of in-stream policies — quantifies the paper's §I claim
// that sps "can be encoded into a compact format, and in most cases can be
// included into the same network message with the data. Thus little demand
// for additional network communication is expected."
//
// Reports, across sp:tuple ratios and policy sizes |R|: bytes of policy
// metadata per KB of tuple payload, for the punctuation encoding vs the
// tuple-embedded alternative.
#include "bench_util.h"
#include "security/sp_codec.h"

namespace spstream::bench {
namespace {

struct WireStats {
  size_t tuple_bytes = 0;
  size_t sp_bytes = 0;
  size_t embedded_bytes = 0;
  size_t sp_count = 0;
  size_t tuple_count = 0;
};

size_t TupleWireBytes(const Tuple& t) {
  // Approximate a compact tuple wire format: varint tid/ts + 8B per value.
  return 6 + t.values.size() * 8;
}

WireStats Measure(size_t num_updates, int tuples_per_sp,
                  size_t roles_per_policy) {
  RoleCatalog roles;
  EnforcementWorkload wl =
      MakeLocationWorkload(&roles, num_updates, tuples_per_sp,
                           roles_per_policy, /*role_pool=*/512);
  WireStats stats;
  size_t current_sp_bytes = 0;
  for (const StreamElement& e : wl.elements) {
    if (e.is_sp()) {
      current_sp_bytes = EncodedSpSize(e.sp());
      stats.sp_bytes += current_sp_bytes;
      ++stats.sp_count;
    } else if (e.is_tuple()) {
      stats.tuple_bytes += TupleWireBytes(e.tuple());
      // The embedded alternative ships the policy inside every tuple; its
      // per-tuple policy field costs the SRP portion of the sp.
      stats.embedded_bytes += current_sp_bytes;
      ++stats.tuple_count;
    }
  }
  return stats;
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream::bench;
  std::cout << "Wire overhead of in-stream access control (30000 location "
               "updates)\n";

  PrintHeader("Wire overhead",
              "policy bytes per KB of tuple payload (sp vs tuple-embedded)");
  PrintLegend("ratio / |R|",
              {"sp B/KB", "embedded B/KB", "sp overhead %"});
  for (int k : {1, 10, 25, 50, 100}) {
    for (size_t r : {size_t{2}, size_t{25}, size_t{100}}) {
      WireStats s = Measure(30000, k, r);
      const double kb = static_cast<double>(s.tuple_bytes) / 1024.0;
      char label[32];
      snprintf(label, sizeof(label), "1/%d / %zu", k, r);
      PrintRow(label,
               {static_cast<double>(s.sp_bytes) / kb,
                static_cast<double>(s.embedded_bytes) / kb,
                100.0 * static_cast<double>(s.sp_bytes) /
                    static_cast<double>(s.tuple_bytes)},
               2);
    }
  }
  std::cout << "\nAt the paper's representative 1/10 ratio with small "
               "policies, punctuations add\nonly a few percent to the "
               "stream's wire volume - and an sp fits in the same\nnetwork "
               "message as the tuples it precedes.\n";
  return 0;
}
