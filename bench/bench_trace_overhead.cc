// Tracing overhead — what the always-available tracer costs the hot path:
// end-to-end tuples/sec of the single-shard engine over the same punctuated
// windowed join as bench_batch_size, measured (a) with tracing compiled in
// but disabled (the shipping default: every span site is two predictable
// branches), and (b) with tracing enabled at sample rates 1/1, 1/8 and
// 1/64. The contract is <3% throughput cost with tracing enabled at the
// default CLI rate (1/1) and noise-level cost when disabled. Emits a
// machine-readable summary to stdout, BENCH_trace_overhead.json in the
// working directory, and SPSTREAM_BENCH_JSON_DIR when set.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/trace.h"
#include "engine/engine.h"
#include "security/security_punctuation.h"

namespace spstream::bench {
namespace {

constexpr size_t kEpochs = 3;
constexpr int kReps = 3;  // timed repetitions after one warmup epoch
constexpr size_t kTuplesPerEpoch = 20000;  // per stream, per epoch
constexpr int kTuplesPerSp = 400;
constexpr int64_t kWindow = 4000;
constexpr size_t kKeySpace = 1 << 12;
constexpr size_t kRolePool = 16;
constexpr size_t kRolesPerSp = 8;

SchemaPtr ASchema() {
  return MakeSchema("A", {Field{"k", ValueType::kInt64},
                          Field{"v", ValueType::kInt64}});
}

SchemaPtr BSchema() {
  return MakeSchema("B", {Field{"k", ValueType::kInt64},
                          Field{"u", ValueType::kInt64}});
}

SecurityPunctuation GrantSp(const std::string& stream, Rng* rng,
                            Timestamp ts) {
  SecurityPunctuation sp(Pattern::Literal(stream), Pattern::Any(),
                         Pattern::Any(), Pattern::Any(), Sign::kPositive,
                         /*immutable=*/false, ts);
  std::vector<RoleId> roles;
  for (size_t i = 0; i < kRolesPerSp; ++i) {
    roles.push_back(static_cast<RoleId>(rng->NextBounded(kRolePool)));
  }
  roles.push_back(0);  // always include the query's role: SS-pass workload
  sp.SetResolvedRoles(RoleSet::FromIds(roles));
  return sp;
}

std::vector<StreamElement> MakeEpoch(const std::string& stream, Rng* rng,
                                     Timestamp* ts, TupleId* tid) {
  std::vector<StreamElement> out;
  out.reserve(kTuplesPerEpoch + kTuplesPerEpoch / kTuplesPerSp + 1);
  for (size_t i = 0; i < kTuplesPerEpoch; ++i) {
    if (i % kTuplesPerSp == 0) out.emplace_back(GrantSp(stream, rng, *ts));
    const int64_t key = static_cast<int64_t>(rng->NextBounded(kKeySpace));
    out.emplace_back(
        Tuple(0, (*tid)++,
              {Value(key),
               Value(static_cast<int64_t>(rng->NextBounded(2000)))},
              *ts));
    *ts += 2;
  }
  return out;
}

struct Mode {
  std::string name;      // "off", "sample_1", ...
  uint64_t sample_n = 0;  // 0 = tracing disabled
};

struct OverheadResult {
  std::string mode;
  uint64_t sample_n = 0;
  double seconds = 0;
  double tuples_per_sec = 0;
  double overhead_pct = 0;  // vs tracing off
  size_t results = 0;
  RepStats stats;
};

OverheadResult RunMode(const Mode& mode) {
  // The tracer is process-global: arm it (or not) for this mode, and clear
  // retained events so one mode's rings don't skew the next one's Snapshot.
  Tracer& tracer = Tracer::Global();
  if (mode.sample_n > 0) {
    tracer.Enable(mode.sample_n);
  } else {
    tracer.Disable();
  }
  tracer.Clear();

  EngineOptions opts;
  opts.num_shards = 1;
  opts.batch_size = 64;
  SpStreamEngine engine(std::move(opts));
  for (size_t r = 0; r < kRolePool; ++r) {
    engine.RegisterRole("role" + std::to_string(r));
  }
  (void)engine.RegisterStream(ASchema());
  (void)engine.RegisterStream(BSchema());
  (void)engine.RegisterSubject("tracker", {"role0"});
  const QueryId qid =
      engine
          .RegisterQuery("tracker",
                         "SELECT A.v FROM A [RANGE " +
                             std::to_string(kWindow) + "], B [RANGE " +
                             std::to_string(kWindow) +
                             "] WHERE A.k = B.k")
          .value();

  Rng rng_a(2008);
  Rng rng_b(2009);
  Timestamp ts_a = 1;
  Timestamp ts_b = 2;
  TupleId tid = 0;
  OverheadResult res;
  res.mode = mode.name;
  res.sample_n = mode.sample_n;
  auto epoch = [&] {
    (void)engine.Push("A", MakeEpoch("A", &rng_a, &ts_a, &tid));
    (void)engine.Push("B", MakeEpoch("B", &rng_b, &ts_b, &tid));
    (void)engine.Run();
    res.results += engine.TakeResults(qid).value().size();
  };
  res.stats = MeasureReps(
      kReps, /*warmup=*/epoch,
      /*timed_rep=*/[&] {
        const int64_t start = NowNanos();
        for (size_t e = 0; e < kEpochs; ++e) epoch();
        return static_cast<double>(NowNanos() - start) / 1e9;
      });
  res.seconds = res.stats.Min();
  res.tuples_per_sec =
      static_cast<double>(kEpochs * kTuplesPerEpoch * 2) / res.seconds;
  tracer.Disable();
  return res;
}

std::string ToJson(const std::vector<OverheadResult>& results) {
  std::ostringstream os;
  os << "{\"bench\":\"trace_overhead\",\"config\":{\"epochs\":" << kEpochs
     << ",\"tuples_per_epoch_per_stream\":" << kTuplesPerEpoch
     << ",\"tuples_per_sp\":" << kTuplesPerSp << ",\"window\":" << kWindow
     << ",\"key_space\":" << kKeySpace
     << ",\"shards\":1,\"batch_size\":64,\"reps\":" << kReps
     << ",\"warmup_epochs\":1,\"target_overhead_pct\":3},\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const OverheadResult& r = results[i];
    if (i) os << ",";
    os << "{\"mode\":\"" << r.mode << "\",\"sample_n\":" << r.sample_n
       << ",";
    AppendRepStatsJson(os, r.stats);
    os << ",\"tuples_per_sec\":" << r.tuples_per_sec
       << ",\"overhead_pct\":" << r.overhead_pct
       << ",\"results\":" << r.results << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream::bench;
  std::cout << "Trace overhead: single-shard engine throughput by tracer "
               "state\n"
            << "(windowed join, " << kEpochs << " epochs x "
            << kTuplesPerEpoch << " tuples/stream, sp every " << kTuplesPerSp
            << " tuples, batch 64)\n";

  const std::vector<Mode> modes = {
      {"off", 0}, {"sample_1", 1}, {"sample_8", 8}, {"sample_64", 64}};
  std::vector<OverheadResult> results;
  for (const Mode& m : modes) results.push_back(RunMode(m));
  for (OverheadResult& r : results) {
    r.overhead_pct =
        100.0 * (results[0].tuples_per_sec - r.tuples_per_sec) /
        results[0].tuples_per_sec;
  }

  PrintHeader("Trace overhead", "tuples/sec by tracer state");
  PrintLegend("mode", {"tuples/s", "overhead %", "stddev(ms)", "results"});
  for (const OverheadResult& r : results) {
    PrintRow(r.mode,
             {r.tuples_per_sec, r.overhead_pct, r.stats.Stddev() * 1e3,
              static_cast<double>(r.results)},
             2);
  }

  const std::string json = ToJson(results);
  std::cout << "\nJSON: " << json << "\n";
  {
    std::ofstream out("BENCH_trace_overhead.json");
    out << json << "\n";
    std::cout << "wrote BENCH_trace_overhead.json\n";
  }
  if (const char* dir = std::getenv("SPSTREAM_BENCH_JSON_DIR")) {
    const std::string path = std::string(dir) + "/BENCH_trace_overhead.json";
    std::ofstream out(path);
    out << json << "\n";
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\nSpans are recorded into per-thread lock-free rings (one "
               "relaxed-atomic slot\nwrite per span); disabled tracing is "
               "two branches per site and allocates\nnothing. The contract "
               "is <3% overhead at the default 1/1 sampling.\n";
  return 0;
}
