// Micro-batch size sweep — what batched execution buys on one thread:
// end-to-end tuples/sec of the single-shard engine at batch sizes
// 1/8/64/256/1024 over the same punctuated windowed join as
// bench_shard_scaling (SELECT A.v FROM A [RANGE w], B [RANGE w] WHERE
// A.k = B.k). batch_size=1 is the legacy per-element hand-off; larger
// batches amortize virtual dispatch, timer reads and state-gauge refreshes
// across a whole run of tuples, and let the SS operator reuse one
// policy-match decision per sp-delimited run. Output is sequence-identical
// at every size (tests/batch_equivalence_test.cc). Emits a machine-readable
// summary to stdout, BENCH_batch_size.json in the working directory, and
// SPSTREAM_BENCH_JSON_DIR when set.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "security/security_punctuation.h"

namespace spstream::bench {
namespace {

constexpr size_t kEpochs = 3;
constexpr int kReps = 5;  // timed repetitions after one warmup epoch
constexpr size_t kTuplesPerEpoch = 20000;  // per stream, per epoch
constexpr int kTuplesPerSp = 400;
constexpr int64_t kWindow = 4000;  // RANGE in ts units; ts advances 1/tuple
constexpr size_t kKeySpace = 1 << 12;
constexpr size_t kRolePool = 16;
constexpr size_t kRolesPerSp = 8;

SchemaPtr ASchema() {
  return MakeSchema("A", {Field{"k", ValueType::kInt64},
                          Field{"v", ValueType::kInt64}});
}

SchemaPtr BSchema() {
  return MakeSchema("B", {Field{"k", ValueType::kInt64},
                          Field{"u", ValueType::kInt64}});
}

SecurityPunctuation GrantSp(const std::string& stream, Rng* rng,
                            Timestamp ts) {
  SecurityPunctuation sp(Pattern::Literal(stream), Pattern::Any(),
                         Pattern::Any(), Pattern::Any(), Sign::kPositive,
                         /*immutable=*/false, ts);
  std::vector<RoleId> roles;
  for (size_t i = 0; i < kRolesPerSp; ++i) {
    roles.push_back(static_cast<RoleId>(rng->NextBounded(kRolePool)));
  }
  roles.push_back(0);  // always include the query's role: SS-pass workload
  sp.SetResolvedRoles(RoleSet::FromIds(roles));
  return sp;
}

/// One epoch of one input stream: a policy refresh every kTuplesPerSp
/// tuples, join keys drawn from kKeySpace so most probes miss
/// (compute-heavy, output-light).
std::vector<StreamElement> MakeEpoch(const std::string& stream, Rng* rng,
                                     Timestamp* ts, TupleId* tid) {
  std::vector<StreamElement> out;
  out.reserve(kTuplesPerEpoch + kTuplesPerEpoch / kTuplesPerSp + 1);
  for (size_t i = 0; i < kTuplesPerEpoch; ++i) {
    if (i % kTuplesPerSp == 0) out.emplace_back(GrantSp(stream, rng, *ts));
    const int64_t key = static_cast<int64_t>(rng->NextBounded(kKeySpace));
    out.emplace_back(
        Tuple(0, (*tid)++,
              {Value(key),
               Value(static_cast<int64_t>(rng->NextBounded(2000)))},
              *ts));
    *ts += 2;  // both streams advance; interleaved ts keeps windows aligned
  }
  return out;
}

struct SweepResult {
  size_t batch_size = 0;
  double seconds = 0;
  double tuples_per_sec = 0;
  double speedup = 1.0;  // vs batch_size=1
  size_t results = 0;
  RepStats stats;
};

SweepResult RunWithBatchSize(size_t batch_size) {
  EngineOptions opts;
  opts.batch_size = batch_size;
  opts.num_shards = 1;
  SpStreamEngine engine(std::move(opts));
  for (size_t r = 0; r < kRolePool; ++r) {
    engine.RegisterRole("role" + std::to_string(r));
  }
  (void)engine.RegisterStream(ASchema());
  (void)engine.RegisterStream(BSchema());
  (void)engine.RegisterSubject("tracker", {"role0"});
  const QueryId qid =
      engine
          .RegisterQuery("tracker",
                         "SELECT A.v FROM A [RANGE " +
                             std::to_string(kWindow) + "], B [RANGE " +
                             std::to_string(kWindow) +
                             "] WHERE A.k = B.k")
          .value();

  Rng rng_a(2008);
  Rng rng_b(2009);
  Timestamp ts_a = 1;
  Timestamp ts_b = 2;
  TupleId tid = 0;
  SweepResult res;
  res.batch_size = batch_size;
  auto epoch = [&] {
    (void)engine.Push("A", MakeEpoch("A", &rng_a, &ts_a, &tid));
    (void)engine.Push("B", MakeEpoch("B", &rng_b, &ts_b, &tid));
    (void)engine.Run();
    res.results += engine.TakeResults(qid).value().size();
  };
  // One untimed warmup epoch (allocator + cache warm, threads spun up),
  // then kReps timed repetitions of kEpochs epochs each. Windows are
  // RANGE-bounded, so state stays steady across repetitions.
  res.stats = MeasureReps(
      kReps, /*warmup=*/epoch,
      /*timed_rep=*/[&] {
        const int64_t start = NowNanos();
        for (size_t e = 0; e < kEpochs; ++e) epoch();
        return static_cast<double>(NowNanos() - start) / 1e9;
      });
  res.seconds = res.stats.Min();
  res.tuples_per_sec =
      static_cast<double>(kEpochs * kTuplesPerEpoch * 2) / res.seconds;
  return res;
}

std::string ToJson(const std::vector<SweepResult>& results) {
  std::ostringstream os;
  os << "{\"bench\":\"batch_size\",\"config\":{\"epochs\":" << kEpochs
     << ",\"tuples_per_epoch_per_stream\":" << kTuplesPerEpoch
     << ",\"tuples_per_sp\":" << kTuplesPerSp << ",\"window\":" << kWindow
     << ",\"key_space\":" << kKeySpace << ",\"shards\":1,\"reps\":" << kReps
     << ",\"warmup_epochs\":1},\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    if (i) os << ",";
    os << "{\"batch_size\":" << r.batch_size << ",";
    AppendRepStatsJson(os, r.stats);
    os << ",\"tuples_per_sec\":" << r.tuples_per_sec
       << ",\"speedup\":" << r.speedup << ",\"results\":" << r.results
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream::bench;
  std::cout << "Batch-size sweep: single-shard engine throughput by "
               "micro-batch size\n"
            << "(windowed join, " << kEpochs << " epochs x "
            << kTuplesPerEpoch << " tuples/stream, RANGE " << kWindow
            << ", sp every " << kTuplesPerSp << " tuples)\n";

  std::vector<SweepResult> results;
  for (size_t batch : {1u, 8u, 64u, 256u, 1024u}) {
    results.push_back(RunWithBatchSize(batch));
  }
  for (SweepResult& r : results) {
    r.speedup = r.tuples_per_sec / results[0].tuples_per_sec;
  }

  PrintHeader("Batch-size sweep", "tuples/sec by EngineOptions::batch_size");
  PrintLegend("batch", {"tuples/s", "speedup", "stddev(ms)", "results"});
  for (const SweepResult& r : results) {
    PrintRow(std::to_string(r.batch_size),
             {r.tuples_per_sec, r.speedup, r.stats.Stddev() * 1e3,
              static_cast<double>(r.results)},
             2);
  }

  const std::string json = ToJson(results);
  std::cout << "\nJSON: " << json << "\n";
  {
    std::ofstream out("BENCH_batch_size.json");
    out << json << "\n";
    std::cout << "wrote BENCH_batch_size.json\n";
  }
  if (const char* dir = std::getenv("SPSTREAM_BENCH_JSON_DIR")) {
    const std::string path = std::string(dir) + "/BENCH_batch_size.json";
    std::ofstream out(path);
    out << json << "\n";
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\nEvery size produces the same result sequence; only the "
               "hand-off granularity\nchanges. The knee is where per-batch "
               "overhead stops dominating per-tuple work\n(the windowed "
               "probe); past it, larger batches only add latency.\n";
  return 0;
}
