// Enforcement latency — "the speed of enforcement is fast" (§I.C) made
// measurable: per-result latency percentiles of the select-project region
// query under the punctuation mechanism, across sp:tuple ratios, plus the
// reorder-buffer's latency cost when out-of-order repair is enabled.
#include "bench_util.h"
#include "exec/replay.h"
#include "exec/reorder.h"
#include "exec/sa_project.h"
#include "exec/sa_select.h"
#include "exec/ss_operator.h"

namespace spstream::bench {
namespace {

constexpr size_t kUpdates = 20000;

LatencySummary RunLatency(int tuples_per_sp, bool with_reorder,
                          Timestamp slack = 0) {
  RoleCatalog roles;
  StreamCatalog streams;
  EnforcementWorkload wl = MakeLocationWorkload(
      &roles, kUpdates, tuples_per_sp, /*roles_per_policy=*/2,
      /*role_pool=*/100);
  auto r1 = roles.Lookup("r1").value();
  auto r2 = roles.Lookup("r2").value();

  ExecContext ctx{&roles, &streams};
  Pipeline pipeline(&ctx);
  auto* src = pipeline.Add<SourceOperator>("src", wl.elements);
  Operator* top = src;
  if (with_reorder) {
    auto* reorder = pipeline.Add<ReorderOp>(ReorderOptions{slack});
    top->AddOutput(reorder);
    top = reorder;
  }
  SsOptions ss_opts;
  ss_opts.predicates = {RoleSet::FromIds({r1, r2})};
  ss_opts.stream_name = wl.stream_name;
  ss_opts.schema = wl.schema;
  auto* ss = pipeline.Add<SsOperator>(std::move(ss_opts));
  top->AddOutput(ss);
  auto* sel = pipeline.Add<SaSelect>(Expr::Compare(
      Expr::CmpOp::kLe,
      Expr::Distance(Expr::Column(1), Expr::Column(2),
                     Expr::Literal(Value(1450.0)),
                     Expr::Literal(Value(1450.0))),
      Expr::Literal(Value(1200.0))));
  ss->AddOutput(sel);
  auto* proj = pipeline.Add<SaProject>(std::vector<int>{0, 1, 2}, wl.schema);
  sel->AddOutput(proj);
  auto* sink = pipeline.Add<LatencySink>();
  proj->AddOutput(sink);

  ReplayOptions ropts;
  ropts.arrival_rate_per_ms = 0;  // back-to-back: pure processing latency
  ReplayWithLatency(&pipeline, {src}, sink, ropts);
  return sink->Summarize();
}

}  // namespace
}  // namespace spstream::bench

int main() {
  using namespace spstream;
  using namespace spstream::bench;
  std::cout << "Per-result enforcement latency (select-project region "
               "query, " << kUpdates << " updates)\n";

  PrintHeader("Latency", "result latency percentiles (us) vs sp:tuple ratio");
  PrintLegend("sp:tuple", {"mean", "p50", "p95", "p99", "results"});
  for (int k : {1, 10, 50, 100}) {
    LatencySummary s = RunLatency(k, /*with_reorder=*/false);
    PrintRow("1/" + std::to_string(k),
             {s.mean_us, s.p50_us, s.p95_us, s.p99_us,
              static_cast<double>(s.count)},
             2);
  }

  PrintHeader("Latency",
              "reorder-buffer cost: slack delays results (ratio 1/10)");
  PrintLegend("slack (ts units)", {"mean", "p50", "p99"});
  for (Timestamp slack : {Timestamp{0}, Timestamp{16}, Timestamp{64},
                          Timestamp{256}}) {
    LatencySummary s = RunLatency(10, /*with_reorder=*/true, slack);
    PrintRow(std::to_string(slack), {s.mean_us, s.p50_us, s.p99_us}, 2);
  }
  std::cout << "\nPunctuation enforcement adds no queuing: per-result "
               "latency is the plan's\nprocessing time, dropping as sps are "
               "shared. Out-of-order slack trades latency\nfor repair "
               "tolerance (buffered elements wait for the watermark).\n";
  return 0;
}
