// Figure 9 — SAJoin with varying sp (policy-compatibility) selectivity:
// nested-loop vs index SAJoin, with the per-100-tuples cost broken into
// total / join / sp-maintenance / tuple-maintenance, at
// σ_sp ∈ {0, 0.1, 0.5, 1}.
//
// Plus two ablations from §V.B:
//   A2  the Lemma 5.1 skipping rule (vs naive per-shared-role probing)
//   A3  probe-and-filter vs filter-and-probe nested-loop ordering
#include "bench_util.h"
#include "exec/sajoin.h"
#include "workload/policy_gen.h"

namespace spstream::bench {
namespace {

constexpr size_t kTuplesPerStream = 20000;
constexpr Timestamp kWindow = 300;

struct JoinRun {
  double total_ms;
  double join_ms;
  double sp_maint_ms;
  double tuple_maint_ms;
  int64_t results;
  int64_t segments_processed = 0;
};

JoinRun RunJoin(const JoinWorkload& wl, RoleCatalog* roles, bool index,
                SaJoinOptions::ProbeMethod probe, bool skipping) {
  StreamCatalog streams;
  ExecContext ctx{roles, &streams};
  Pipeline pipeline(&ctx);
  auto* l = pipeline.Add<SourceOperator>("l", wl.left);
  auto* r = pipeline.Add<SourceOperator>("r", wl.right);
  SaJoinOptions o;
  o.window_size = kWindow;
  o.left_key_col = 0;
  o.right_key_col = 0;
  o.left_stream_name = "s1";
  o.right_stream_name = "s2";
  o.probe_method = probe;
  o.use_skipping_rule = skipping;
  SaJoinBase* join;
  SaJoinIndex* idx_join = nullptr;
  if (index) {
    idx_join = pipeline.Add<SaJoinIndex>(o);
    join = idx_join;
  } else {
    join = pipeline.Add<SaJoinNl>(o);
  }
  auto* sink = pipeline.Add<CollectorSink>();
  l->AddOutput(join, 0);
  r->AddOutput(join, 1);
  join->AddOutput(sink);
  pipeline.Run(256);

  // Cost breakdown via the harvested registry slice (the engine-facing
  // metrics surface); segments_processed stays operator-local — it is a
  // join-implementation detail, not an OperatorMetrics field.
  QueryMetricsSnapshot snap = HarvestPipeline(pipeline, "fig9");
  const OperatorMetrics& m =
      OpMetrics(snap, index ? "sajoin_index" : "sajoin_nl");
  JoinRun run;
  run.total_ms = MsPer100Tuples(m.total_nanos, m.tuples_in);
  run.join_ms = MsPer100Tuples(m.join_nanos, m.tuples_in);
  run.sp_maint_ms = MsPer100Tuples(m.sp_maintenance_nanos, m.tuples_in);
  run.tuple_maint_ms = MsPer100Tuples(m.tuple_maintenance_nanos, m.tuples_in);
  run.results = m.tuples_out;
  if (idx_join) run.segments_processed = idx_join->segments_processed();
  return run;
}

JoinWorkload MakeWorkload(RoleCatalog* roles, double sigma,
                          size_t roles_per_policy = 3) {
  JoinWorkloadOptions opts;
  opts.tuples_per_stream = kTuplesPerStream;
  opts.tuples_per_sp = 10;
  opts.sp_selectivity = sigma;
  opts.join_key_cardinality = 500;
  opts.roles_per_policy = roles_per_policy;
  opts.seed = 2008;
  return GenerateJoinWorkload(roles, opts);
}

void SelectivitySweep() {
  PrintHeader("Figure 9",
              "SAJoin cost breakdown (ms per 100 tuples) vs sp selectivity");
  PrintLegend("variant", {"total", "join", "sp-maint", "tuple-maint",
                          "results"});
  for (double sigma : {0.0, 0.1, 0.5, 1.0}) {
    RoleCatalog roles;
    JoinWorkload wl = MakeWorkload(&roles, sigma);
    JoinRun nl = RunJoin(wl, &roles, /*index=*/false,
                         SaJoinOptions::ProbeMethod::kProbeAndFilter, true);
    JoinRun idx = RunJoin(wl, &roles, /*index=*/true,
                          SaJoinOptions::ProbeMethod::kProbeAndFilter, true);
    std::cout << "-- s_sp = " << sigma << "\n";
    PrintRow("nested-loop", {nl.total_ms, nl.join_ms, nl.sp_maint_ms,
                             nl.tuple_maint_ms,
                             static_cast<double>(nl.results)},
             4);
    PrintRow("index", {idx.total_ms, idx.join_ms, idx.sp_maint_ms,
                       idx.tuple_maint_ms,
                       static_cast<double>(idx.results)},
             4);
  }
}

void SkippingRuleAblation() {
  PrintHeader("Ablation A2 (Lemma 5.1)",
              "index SAJoin with/without the skipping rule, overlapping "
              "3-role policies");
  PrintLegend("variant",
              {"total", "join", "segs-probed", "results"});
  RoleCatalog roles;
  // All policies share 3 roles: the worst case the skipping rule targets.
  JoinWorkloadOptions opts;
  opts.tuples_per_stream = kTuplesPerStream;
  opts.tuples_per_sp = 10;
  opts.sp_selectivity = 1.0;
  opts.join_key_cardinality = 500;
  opts.roles_per_policy = 1;
  opts.seed = 7;
  JoinWorkload wl = GenerateJoinWorkload(&roles, opts);
  // Re-tag every sp with an identical 3-role policy to maximize overlap.
  RoleSet three;
  three.Insert(roles.RegisterRole("x1"));
  three.Insert(roles.RegisterRole("x2"));
  three.Insert(roles.RegisterRole("x3"));
  for (auto* stream : {&wl.left, &wl.right}) {
    for (StreamElement& e : *stream) {
      if (e.is_sp()) e.sp().SetResolvedRoles(three);
    }
  }
  JoinRun with = RunJoin(wl, &roles, true,
                         SaJoinOptions::ProbeMethod::kProbeAndFilter, true);
  JoinRun without = RunJoin(
      wl, &roles, true, SaJoinOptions::ProbeMethod::kProbeAndFilter, false);
  PrintRow("skipping-rule",
           {with.total_ms, with.join_ms,
            static_cast<double>(with.segments_processed),
            static_cast<double>(with.results)},
           4);
  PrintRow("naive (no rule)",
           {without.total_ms, without.join_ms,
            static_cast<double>(without.segments_processed),
            static_cast<double>(without.results)},
           4);
}

void ProbeOrderAblation() {
  PrintHeader("Ablation A3 (SV.B.1)",
              "nested-loop probe-and-filter vs filter-and-probe");
  PrintLegend("s_sp", {"PF total", "PF join", "FP total", "FP join"});
  for (double sigma : {0.0, 0.1, 0.5, 1.0}) {
    RoleCatalog roles;
    JoinWorkload wl = MakeWorkload(&roles, sigma);
    JoinRun pf = RunJoin(wl, &roles, false,
                         SaJoinOptions::ProbeMethod::kProbeAndFilter, true);
    JoinRun fp = RunJoin(wl, &roles, false,
                         SaJoinOptions::ProbeMethod::kFilterAndProbe, true);
    PrintRow(std::to_string(sigma),
             {pf.total_ms, pf.join_ms, fp.total_ms, fp.join_ms}, 4);
  }
}

}  // namespace
}  // namespace spstream::bench

int main() {
  std::cout << "Reproduction of Figure 9: SAJoin with varying sp "
               "selectivity\n(two streams x "
            << spstream::bench::kTuplesPerStream
            << " tuples, window=" << spstream::bench::kWindow
            << ", equijoin)\n";
  spstream::bench::SelectivitySweep();
  spstream::bench::SkippingRuleAblation();
  spstream::bench::ProbeOrderAblation();
  return 0;
}
