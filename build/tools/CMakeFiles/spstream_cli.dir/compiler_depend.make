# Empty compiler generated dependencies file for spstream_cli.
# This may be replaced when dependencies are built.
