file(REMOVE_RECURSE
  "CMakeFiles/spstream_cli.dir/spstream_cli.cc.o"
  "CMakeFiles/spstream_cli.dir/spstream_cli.cc.o.d"
  "spstream_cli"
  "spstream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spstream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
