# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/spstream_cli" "/root/repo/tools/demo.sps")
set_tests_properties(cli_demo PROPERTIES  PASS_REGULAR_EXPRESSION "results q_doctor \\(2 rows\\)" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
