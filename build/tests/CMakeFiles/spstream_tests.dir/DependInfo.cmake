
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adaptive_engine_test.cc" "tests/CMakeFiles/spstream_tests.dir/adaptive_engine_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/adaptive_engine_test.cc.o.d"
  "/root/repo/tests/analyzer_test.cc" "tests/CMakeFiles/spstream_tests.dir/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/analyzer_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/spstream_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/spstream_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/enforcement_test.cc" "tests/CMakeFiles/spstream_tests.dir/enforcement_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/enforcement_test.cc.o.d"
  "/root/repo/tests/engine_sharing_test.cc" "tests/CMakeFiles/spstream_tests.dir/engine_sharing_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/engine_sharing_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/spstream_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/exec_support_test.cc" "tests/CMakeFiles/spstream_tests.dir/exec_support_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/exec_support_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/spstream_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/spstream_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/hierarchy_test.cc" "tests/CMakeFiles/spstream_tests.dir/hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/hierarchy_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/spstream_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/multiway_join_test.cc" "tests/CMakeFiles/spstream_tests.dir/multiway_join_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/multiway_join_test.cc.o.d"
  "/root/repo/tests/negative_policy_test.cc" "tests/CMakeFiles/spstream_tests.dir/negative_policy_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/negative_policy_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/spstream_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/spstream_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/pattern_test.cc" "tests/CMakeFiles/spstream_tests.dir/pattern_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/pattern_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/spstream_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/policy_store_test.cc" "tests/CMakeFiles/spstream_tests.dir/policy_store_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/policy_store_test.cc.o.d"
  "/root/repo/tests/policy_test.cc" "tests/CMakeFiles/spstream_tests.dir/policy_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/policy_test.cc.o.d"
  "/root/repo/tests/policy_tracker_test.cc" "tests/CMakeFiles/spstream_tests.dir/policy_tracker_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/policy_tracker_test.cc.o.d"
  "/root/repo/tests/replay_test.cc" "tests/CMakeFiles/spstream_tests.dir/replay_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/replay_test.cc.o.d"
  "/root/repo/tests/role_set_test.cc" "tests/CMakeFiles/spstream_tests.dir/role_set_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/role_set_test.cc.o.d"
  "/root/repo/tests/rules_test.cc" "tests/CMakeFiles/spstream_tests.dir/rules_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/rules_test.cc.o.d"
  "/root/repo/tests/sa_distinct_test.cc" "tests/CMakeFiles/spstream_tests.dir/sa_distinct_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/sa_distinct_test.cc.o.d"
  "/root/repo/tests/sa_groupby_test.cc" "tests/CMakeFiles/spstream_tests.dir/sa_groupby_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/sa_groupby_test.cc.o.d"
  "/root/repo/tests/sa_select_project_test.cc" "tests/CMakeFiles/spstream_tests.dir/sa_select_project_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/sa_select_project_test.cc.o.d"
  "/root/repo/tests/sajoin_test.cc" "tests/CMakeFiles/spstream_tests.dir/sajoin_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/sajoin_test.cc.o.d"
  "/root/repo/tests/scale_test.cc" "tests/CMakeFiles/spstream_tests.dir/scale_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/scale_test.cc.o.d"
  "/root/repo/tests/security_punctuation_test.cc" "tests/CMakeFiles/spstream_tests.dir/security_punctuation_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/security_punctuation_test.cc.o.d"
  "/root/repo/tests/shared_dag_test.cc" "tests/CMakeFiles/spstream_tests.dir/shared_dag_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/shared_dag_test.cc.o.d"
  "/root/repo/tests/sp_codec_test.cc" "tests/CMakeFiles/spstream_tests.dir/sp_codec_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/sp_codec_test.cc.o.d"
  "/root/repo/tests/ss_operator_test.cc" "tests/CMakeFiles/spstream_tests.dir/ss_operator_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/ss_operator_test.cc.o.d"
  "/root/repo/tests/statistics_test.cc" "tests/CMakeFiles/spstream_tests.dir/statistics_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/statistics_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/spstream_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/stream_model_test.cc" "tests/CMakeFiles/spstream_tests.dir/stream_model_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/stream_model_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/spstream_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/wellformed_fuzz_test.cc" "tests/CMakeFiles/spstream_tests.dir/wellformed_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/wellformed_fuzz_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/spstream_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/spstream_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spstream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
