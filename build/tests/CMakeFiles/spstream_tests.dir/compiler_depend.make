# Empty compiler generated dependencies file for spstream_tests.
# This may be replaced when dependencies are built.
