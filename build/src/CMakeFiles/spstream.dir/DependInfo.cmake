
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/sp_analyzer.cc" "src/CMakeFiles/spstream.dir/analyzer/sp_analyzer.cc.o" "gcc" "src/CMakeFiles/spstream.dir/analyzer/sp_analyzer.cc.o.d"
  "/root/repo/src/baselines/enforcement.cc" "src/CMakeFiles/spstream.dir/baselines/enforcement.cc.o" "gcc" "src/CMakeFiles/spstream.dir/baselines/enforcement.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/spstream.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/spstream.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/spstream.dir/common/status.cc.o" "gcc" "src/CMakeFiles/spstream.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/spstream.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/spstream.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/spstream.dir/common/value.cc.o" "gcc" "src/CMakeFiles/spstream.dir/common/value.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/spstream.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/spstream.dir/engine/engine.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/spstream.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/spstream.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/plan_builder.cc" "src/CMakeFiles/spstream.dir/exec/plan_builder.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/plan_builder.cc.o.d"
  "/root/repo/src/exec/policy_tracker.cc" "src/CMakeFiles/spstream.dir/exec/policy_tracker.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/policy_tracker.cc.o.d"
  "/root/repo/src/exec/reorder.cc" "src/CMakeFiles/spstream.dir/exec/reorder.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/reorder.cc.o.d"
  "/root/repo/src/exec/replay.cc" "src/CMakeFiles/spstream.dir/exec/replay.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/replay.cc.o.d"
  "/root/repo/src/exec/sa_distinct.cc" "src/CMakeFiles/spstream.dir/exec/sa_distinct.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sa_distinct.cc.o.d"
  "/root/repo/src/exec/sa_groupby.cc" "src/CMakeFiles/spstream.dir/exec/sa_groupby.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sa_groupby.cc.o.d"
  "/root/repo/src/exec/sa_project.cc" "src/CMakeFiles/spstream.dir/exec/sa_project.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sa_project.cc.o.d"
  "/root/repo/src/exec/sa_select.cc" "src/CMakeFiles/spstream.dir/exec/sa_select.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sa_select.cc.o.d"
  "/root/repo/src/exec/sa_setops.cc" "src/CMakeFiles/spstream.dir/exec/sa_setops.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sa_setops.cc.o.d"
  "/root/repo/src/exec/sajoin.cc" "src/CMakeFiles/spstream.dir/exec/sajoin.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sajoin.cc.o.d"
  "/root/repo/src/exec/sp_synth.cc" "src/CMakeFiles/spstream.dir/exec/sp_synth.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/sp_synth.cc.o.d"
  "/root/repo/src/exec/ss_operator.cc" "src/CMakeFiles/spstream.dir/exec/ss_operator.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/ss_operator.cc.o.d"
  "/root/repo/src/exec/window.cc" "src/CMakeFiles/spstream.dir/exec/window.cc.o" "gcc" "src/CMakeFiles/spstream.dir/exec/window.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/spstream.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/spstream.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/spstream.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/spstream.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/CMakeFiles/spstream.dir/optimizer/rules.cc.o" "gcc" "src/CMakeFiles/spstream.dir/optimizer/rules.cc.o.d"
  "/root/repo/src/optimizer/statistics.cc" "src/CMakeFiles/spstream.dir/optimizer/statistics.cc.o" "gcc" "src/CMakeFiles/spstream.dir/optimizer/statistics.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/spstream.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/spstream.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/logical_plan.cc" "src/CMakeFiles/spstream.dir/query/logical_plan.cc.o" "gcc" "src/CMakeFiles/spstream.dir/query/logical_plan.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/spstream.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/spstream.dir/query/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/spstream.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/spstream.dir/query/planner.cc.o.d"
  "/root/repo/src/security/pattern.cc" "src/CMakeFiles/spstream.dir/security/pattern.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/pattern.cc.o.d"
  "/root/repo/src/security/policy.cc" "src/CMakeFiles/spstream.dir/security/policy.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/policy.cc.o.d"
  "/root/repo/src/security/policy_store.cc" "src/CMakeFiles/spstream.dir/security/policy_store.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/policy_store.cc.o.d"
  "/root/repo/src/security/role_catalog.cc" "src/CMakeFiles/spstream.dir/security/role_catalog.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/role_catalog.cc.o.d"
  "/root/repo/src/security/role_set.cc" "src/CMakeFiles/spstream.dir/security/role_set.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/role_set.cc.o.d"
  "/root/repo/src/security/security_punctuation.cc" "src/CMakeFiles/spstream.dir/security/security_punctuation.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/security_punctuation.cc.o.d"
  "/root/repo/src/security/sp_codec.cc" "src/CMakeFiles/spstream.dir/security/sp_codec.cc.o" "gcc" "src/CMakeFiles/spstream.dir/security/sp_codec.cc.o.d"
  "/root/repo/src/stream/schema.cc" "src/CMakeFiles/spstream.dir/stream/schema.cc.o" "gcc" "src/CMakeFiles/spstream.dir/stream/schema.cc.o.d"
  "/root/repo/src/stream/stream_element.cc" "src/CMakeFiles/spstream.dir/stream/stream_element.cc.o" "gcc" "src/CMakeFiles/spstream.dir/stream/stream_element.cc.o.d"
  "/root/repo/src/stream/tuple.cc" "src/CMakeFiles/spstream.dir/stream/tuple.cc.o" "gcc" "src/CMakeFiles/spstream.dir/stream/tuple.cc.o.d"
  "/root/repo/src/workload/health_streams.cc" "src/CMakeFiles/spstream.dir/workload/health_streams.cc.o" "gcc" "src/CMakeFiles/spstream.dir/workload/health_streams.cc.o.d"
  "/root/repo/src/workload/moving_objects.cc" "src/CMakeFiles/spstream.dir/workload/moving_objects.cc.o" "gcc" "src/CMakeFiles/spstream.dir/workload/moving_objects.cc.o.d"
  "/root/repo/src/workload/policy_gen.cc" "src/CMakeFiles/spstream.dir/workload/policy_gen.cc.o" "gcc" "src/CMakeFiles/spstream.dir/workload/policy_gen.cc.o.d"
  "/root/repo/src/workload/road_network.cc" "src/CMakeFiles/spstream.dir/workload/road_network.cc.o" "gcc" "src/CMakeFiles/spstream.dir/workload/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
