file(REMOVE_RECURSE
  "libspstream.a"
)
