# Empty compiler generated dependencies file for spstream.
# This may be replaced when dependencies are built.
