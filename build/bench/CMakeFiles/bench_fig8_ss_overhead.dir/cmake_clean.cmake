file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ss_overhead.dir/bench_fig8_ss_overhead.cc.o"
  "CMakeFiles/bench_fig8_ss_overhead.dir/bench_fig8_ss_overhead.cc.o.d"
  "CMakeFiles/bench_fig8_ss_overhead.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig8_ss_overhead.dir/bench_util.cc.o.d"
  "bench_fig8_ss_overhead"
  "bench_fig8_ss_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ss_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
