# Empty dependencies file for bench_wire_overhead.
# This may be replaced when dependencies are built.
