file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_overhead.dir/bench_util.cc.o"
  "CMakeFiles/bench_wire_overhead.dir/bench_util.cc.o.d"
  "CMakeFiles/bench_wire_overhead.dir/bench_wire_overhead.cc.o"
  "CMakeFiles/bench_wire_overhead.dir/bench_wire_overhead.cc.o.d"
  "bench_wire_overhead"
  "bench_wire_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
