file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_enforcement.dir/bench_fig7_enforcement.cc.o"
  "CMakeFiles/bench_fig7_enforcement.dir/bench_fig7_enforcement.cc.o.d"
  "CMakeFiles/bench_fig7_enforcement.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig7_enforcement.dir/bench_util.cc.o.d"
  "bench_fig7_enforcement"
  "bench_fig7_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
