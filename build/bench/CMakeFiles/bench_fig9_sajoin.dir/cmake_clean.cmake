file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sajoin.dir/bench_fig9_sajoin.cc.o"
  "CMakeFiles/bench_fig9_sajoin.dir/bench_fig9_sajoin.cc.o.d"
  "CMakeFiles/bench_fig9_sajoin.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig9_sajoin.dir/bench_util.cc.o.d"
  "bench_fig9_sajoin"
  "bench_fig9_sajoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sajoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
