# Empty compiler generated dependencies file for bench_fig9_sajoin.
# This may be replaced when dependencies are built.
