# Empty compiler generated dependencies file for example_location_privacy.
# This may be replaced when dependencies are built.
