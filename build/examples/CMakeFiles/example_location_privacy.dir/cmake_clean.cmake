file(REMOVE_RECURSE
  "CMakeFiles/example_location_privacy.dir/location_privacy.cpp.o"
  "CMakeFiles/example_location_privacy.dir/location_privacy.cpp.o.d"
  "example_location_privacy"
  "example_location_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_location_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
