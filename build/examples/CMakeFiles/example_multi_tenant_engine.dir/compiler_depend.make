# Empty compiler generated dependencies file for example_multi_tenant_engine.
# This may be replaced when dependencies are built.
