file(REMOVE_RECURSE
  "CMakeFiles/example_multi_tenant_engine.dir/multi_tenant_engine.cpp.o"
  "CMakeFiles/example_multi_tenant_engine.dir/multi_tenant_engine.cpp.o.d"
  "example_multi_tenant_engine"
  "example_multi_tenant_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_tenant_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
