file(REMOVE_RECURSE
  "CMakeFiles/example_health_monitoring.dir/health_monitoring.cpp.o"
  "CMakeFiles/example_health_monitoring.dir/health_monitoring.cpp.o.d"
  "example_health_monitoring"
  "example_health_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_health_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
