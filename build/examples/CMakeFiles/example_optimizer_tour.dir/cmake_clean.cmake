file(REMOVE_RECURSE
  "CMakeFiles/example_optimizer_tour.dir/optimizer_tour.cpp.o"
  "CMakeFiles/example_optimizer_tour.dir/optimizer_tour.cpp.o.d"
  "example_optimizer_tour"
  "example_optimizer_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_optimizer_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
