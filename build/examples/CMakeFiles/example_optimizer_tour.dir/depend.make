# Empty dependencies file for example_optimizer_tour.
# This may be replaced when dependencies are built.
