// Quickstart: the smallest end-to-end spstream program.
//
// 1. Register roles and a stream.
// 2. Declare access-control policies with the paper's INSERT SP syntax.
// 3. Register a continuous query; its Security Shield inherits the query
//    specifier's roles.
// 4. Push a punctuated stream through the compiled plan and print what each
//    subject is allowed to see.
#include <iostream>

#include "exec/plan_builder.h"
#include "query/parser.h"
#include "query/planner.h"

using namespace spstream;

int main() {
  // --- Catalogs -----------------------------------------------------------
  RoleCatalog roles;
  const RoleId doctor = roles.RegisterRole("doctor");
  const RoleId insurer = roles.RegisterRole("insurer");
  (void)doctor;
  (void)insurer;

  StreamCatalog streams;
  SchemaPtr schema = MakeSchema(
      "Vitals", {Field{"patient_id", ValueType::kInt64},
                 Field{"heart_rate", ValueType::kInt64}});
  if (auto st = streams.RegisterStream(schema); !st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  Planner planner(&streams, &roles);

  // --- Policies, in the paper's CQL extension ------------------------------
  auto sp_stmt = ParseInsertSp(
      "INSERT SP INTO STREAM Vitals "
      "LET DDP = (Vitals, *, *), SRP = (RBAC, doctor), TS = 1");
  if (!sp_stmt.ok()) {
    std::cerr << sp_stmt.status().ToString() << "\n";
    return 1;
  }
  auto sp = planner.BuildSp(*sp_stmt, /*default_ts=*/1);
  if (!sp.ok()) {
    std::cerr << sp.status().ToString() << "\n";
    return 1;
  }
  std::cout << "policy: " << sp->ToString() << "\n";

  // --- The punctuated stream ----------------------------------------------
  std::vector<StreamElement> elements;
  elements.emplace_back(*sp);  // the sp precedes the tuples it governs
  elements.emplace_back(Tuple(0, 120, {Value(120), Value(72)}, 1));
  elements.emplace_back(Tuple(0, 121, {Value(121), Value(95)}, 2));

  // --- A continuous query per subject --------------------------------------
  auto query = ParseSelect(
      "SELECT patient_id, heart_rate FROM Vitals WHERE heart_rate > 80");
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  ExecContext ctx{&roles, &streams};
  for (const char* subject : {"doctor", "insurer"}) {
    auto role = roles.Lookup(subject);
    auto plan = planner.PlanSelect(*query, RoleSet::Of(*role));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    Pipeline pipeline(&ctx);
    auto built =
        BuildPhysicalPlan(&pipeline, *plan, {{"Vitals", elements}});
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    pipeline.Run();
    std::cout << "\nresults for subject '" << subject << "':\n";
    const auto tuples = built->sink->Tuples();
    if (tuples.empty()) {
      std::cout << "  (access denied - nothing)\n";
    }
    for (const Tuple& t : tuples) {
      std::cout << "  " << t.ToString() << "\n";
    }
  }
  std::cout << "\nThe doctor sees the elevated reading; the insurer sees "
               "nothing - denial by default,\nenforced in-stream by the "
               "security punctuation.\n";
  return 0;
}
