// Health monitoring — the paper's motivating Example 2 and Figure 4
// environment: a patient streams vitals; only his general physician may
// read them — until his vital signs spike, when a newer-timestamped sp
// escalates access so ER staff (hospital employees) also see the stream.
// The hospital server additionally refines provider policies through the
// SP Analyzer, and an attribute-level policy hides the temperature column
// from everyone but doctors and nurses.
#include <iostream>

#include "analyzer/sp_analyzer.h"
#include "exec/plan_builder.h"
#include "exec/ss_operator.h"
#include "query/parser.h"
#include "query/planner.h"
#include "workload/health_streams.h"

using namespace spstream;

int main() {
  RoleCatalog roles;
  HospitalRoles hospital = RegisterHospitalRoles(&roles);
  StreamCatalog streams;
  for (const SchemaPtr& s : {HeartRateSchema(), BodyTemperatureSchema(),
                             BreathingRateSchema()}) {
    if (auto st = streams.RegisterStream(s); !st.ok()) {
      std::cerr << st.status().ToString() << "\n";
      return 1;
    }
  }

  // --- Generate the vitals streams with escalation -------------------------
  HealthStreamOptions opts;
  opts.num_patients = 5;
  opts.updates_per_patient = 200;
  opts.emergency_prob = 0.02;
  opts.seed = 41;
  HealthWorkload wl = GenerateHealthWorkload(&roles, opts);

  // --- Server-side refinement through the SP Analyzer ----------------------
  // Hospital policy: HeartRate is never exposed beyond clinical roles,
  // whatever the patient grants.
  SpAnalyzer analyzer(&roles, "HeartRate");
  SecurityPunctuation server = SecurityPunctuation::StreamLevel(
      Pattern::Literal("HeartRate"), Pattern::Compile("GP|D|ND|E").value(),
      0);
  if (auto st = analyzer.AddServerPolicy(server); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::vector<StreamElement> heart_rate;
  for (StreamElement& e : wl.heart_rate) {
    for (StreamElement& fwd : analyzer.Process(std::move(e))) {
      heart_rate.push_back(std::move(fwd));
    }
  }
  std::cout << "admitted HeartRate stream: " << analyzer.stats().sps_in
            << " sps in, " << analyzer.stats().sps_out << " out ("
            << analyzer.stats().sps_combined << " combined, "
            << analyzer.stats().sps_refined_by_server
            << " refined by the hospital policy)\n";

  // --- Queries per subject --------------------------------------------------
  Planner planner(&streams, &roles);
  auto query = ParseSelect(
      "SELECT patient_id, beats_per_min FROM HeartRate "
      "WHERE beats_per_min > 120");
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  ExecContext ctx{&roles, &streams};
  struct Subject {
    const char* name;
    RoleId role;
  };
  for (Subject s : {Subject{"general physician", hospital.general_physician},
                    Subject{"ER staff (employee)", hospital.employee},
                    Subject{"dermatologist", hospital.dermatologist}}) {
    auto plan = planner.PlanSelect(*query, RoleSet::Of(s.role));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    Pipeline pipeline(&ctx);
    auto built =
        BuildPhysicalPlan(&pipeline, *plan, {{"HeartRate", heart_rate}});
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    pipeline.Run(64);
    std::cout << "\ntachycardia alerts visible to " << s.name << ": "
              << built->sink->Tuples().size() << "\n";
  }

  // --- Attribute-level masking ----------------------------------------------
  // Policy: temperature readable by D or ND only; the row itself readable
  // by every hospital employee. An employee's shield masks the column.
  std::cout << "\n--- attribute-granularity masking on BodyTemperature ---\n";
  SecurityPunctuation row_grant(
      Pattern::Literal("BodyTemperature"), Pattern::Any(), Pattern::Any(),
      Pattern::Compile("E|D|ND").value(), Sign::kPositive, false, 1);
  row_grant.ResolveRoles(roles);
  SecurityPunctuation temp_deny(
      Pattern::Literal("BodyTemperature"), Pattern::Any(),
      Pattern::Literal("temperature"), Pattern::Literal("E"),
      Sign::kNegative, false, 1);
  temp_deny.ResolveRoles(roles);

  std::vector<StreamElement> temps;
  temps.emplace_back(row_grant);
  temps.emplace_back(temp_deny);
  temps.emplace_back(Tuple(1, 120, {Value(120), Value(101.3)}, 1));

  for (Subject s : {Subject{"nurse on duty", hospital.nurse_on_duty},
                    Subject{"employee", hospital.employee}}) {
    Pipeline pipeline(&ctx);
    auto* src = pipeline.Add<SourceOperator>("src", temps);
    SsOptions sso;
    sso.predicates = {RoleSet::Of(s.role)};
    sso.stream_name = "BodyTemperature";
    sso.schema = BodyTemperatureSchema();
    sso.mask_attributes = true;
    auto* ss = pipeline.Add<SsOperator>(std::move(sso));
    auto* sink = pipeline.Add<CollectorSink>();
    src->AddOutput(ss);
    ss->AddOutput(sink);
    pipeline.Run();
    for (const Tuple& t : sink->Tuples()) {
      std::cout << "  " << s.name << " sees: patient "
                << t.values[0].ToString() << ", temperature "
                << t.values[1].ToString() << "\n";
    }
  }
  std::cout << "\nThe nurse reads 101.3F; the generic employee receives the "
               "row with the\ntemperature masked to NULL — one stream, two "
               "views, zero server round-trips.\n";
  return 0;
}
