// Multi-tenant engine demo: the integrated SpStreamEngine facade running
// several continuous queries for different subjects over one punctuated
// stream, with server-side policy refinement, an incremental policy change
// (§IX extension), and a runtime role-assignment change (§IX extension).
#include <iostream>

#include "engine/engine.h"

using namespace spstream;

namespace {

Tuple Reading(TupleId patient, int64_t bpm, Timestamp ts) {
  return Tuple(0, patient,
               {Value(static_cast<int64_t>(patient)), Value(bpm)}, ts);
}

void Report(SpStreamEngine& engine, QueryId q, const std::string& who) {
  auto results = engine.TakeResults(q);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return;
  }
  std::cout << "  " << who << " received " << results->size()
            << " tuple(s)";
  if (!results->empty()) {
    std::cout << " (first: " << results->front().ToString() << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  SpStreamEngine engine;
  engine.RegisterRole("GP");
  engine.RegisterRole("ND");
  engine.RegisterRole("E");

  if (auto st = engine.RegisterStream(MakeSchema(
          "Vitals", {Field{"patient_id", ValueType::kInt64},
                     Field{"bpm", ValueType::kInt64}}));
      !st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // Hospital-wide server policy: Vitals never leaves clinical roles.
  SecurityPunctuation server = SecurityPunctuation::StreamLevel(
      Pattern::Literal("Vitals"), Pattern::Compile("GP|ND").value(), 0);
  (void)engine.AddServerPolicy("Vitals", server);

  (void)engine.RegisterSubject("alice_gp", {"GP"});
  (void)engine.RegisterSubject("bob_nurse", {"ND"});
  (void)engine.RegisterSubject("carol_admin", {"E"});

  auto q_alice = engine.RegisterQuery(
      "alice_gp", "SELECT patient_id, bpm FROM Vitals WHERE bpm > 100");
  auto q_bob = engine.RegisterQuery("bob_nurse",
                                    "SELECT patient_id, bpm FROM Vitals");
  auto q_carol = engine.RegisterQuery("carol_admin",
                                      "SELECT patient_id FROM Vitals");
  if (!q_alice.ok() || !q_bob.ok() || !q_carol.ok()) {
    std::cerr << "query registration failed\n";
    return 1;
  }
  std::cout << "plan for alice:\n" << *engine.ExplainQuery(*q_alice);

  // ---- epoch 1: patient grants GP and the (server-blocked) employee ------
  (void)engine.ExecuteInsertSp(
      "INSERT SP INTO STREAM Vitals "
      "LET DDP = (Vitals, *, *), SRP = (RBAC, GP|E), TS = 1");
  (void)engine.Push("Vitals", {StreamElement(Reading(120, 110, 1)),
                               StreamElement(Reading(121, 80, 2))});
  (void)engine.Run();
  std::cout << "\nepoch 1 (policy GP|E, server clamps to GP|ND):\n";
  Report(engine, *q_alice, "alice (GP, bpm>100)");
  Report(engine, *q_bob, "bob   (ND)");
  Report(engine, *q_carol, "carol (E)  [server policy blocks employees]");

  // ---- epoch 2: incremental delta adds the nurse role (§IX) ---------------
  // Base policy (GP only), then a delta sp that EDITS it (+ND) instead of
  // overriding — both ride the stream ahead of the reading.
  (void)engine.ExecuteInsertSp(
      "INSERT SP INTO STREAM Vitals "
      "LET DDP = (Vitals, *, *), SRP = (RBAC, GP), TS = 9");
  (void)engine.ExecuteInsertSp(
      "INSERT SP INTO STREAM Vitals "
      "LET DDP = (Vitals, *, *), SRP = (RBAC, ND), SIGN = positive, "
      "INCREMENTAL = true, TS = 10");
  (void)engine.Push("Vitals", {StreamElement(Reading(120, 120, 10))});
  (void)engine.Run();
  std::cout << "\nepoch 2 (base GP, then incremental +ND):\n";
  Report(engine, *q_alice, "alice (GP)  [keeps access: delta edits, not "
                           "overrides]");
  Report(engine, *q_bob, "bob   (ND)  [gains access via the delta sp]");

  // ---- epoch 3: runtime role change — bob is promoted to GP (§IX) --------
  (void)engine.UpdateSubjectRoles("bob_nurse", {"GP"});
  (void)engine.ExecuteInsertSp(
      "INSERT SP INTO STREAM Vitals "
      "LET DDP = (Vitals, *, *), SRP = (RBAC, GP), TS = 20");
  (void)engine.Push("Vitals", {StreamElement(Reading(122, 95, 20))});
  (void)engine.Run();
  std::cout << "\nepoch 3 (policy GP-only; bob now holds GP):\n";
  Report(engine, *q_bob, "bob   (GP after runtime role change)");
  Report(engine, *q_carol, "carol (E)");

  std::cout << "\nOne engine, three tenants: every result above was "
               "authorized by punctuations\nstreamed with the data, refined "
               "by the server, and enforced inside the plans.\n";
  return 0;
}
