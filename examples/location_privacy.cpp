// Location privacy — the paper's motivating Example 1 ("protection against
// context-aware spam") and the workload of its evaluation:
//
// Moving objects (people with GPS devices) stream their positions and
// selectively restrict who may see them. A retail store registers the
// evaluation's running query — "continuously retrieve all moving objects in
// the two-mile region around the store" — but only receives the objects
// whose current policy admits the store's role. A family-member query over
// the very same plan shape sees a different slice of the stream.
#include <iostream>

#include "exec/plan_builder.h"
#include "query/parser.h"
#include "query/planner.h"
#include "workload/moving_objects.h"
#include "workload/road_network.h"

using namespace spstream;

int main() {
  RoleCatalog roles;
  // The paper's example roles: r1 family member, r2 manager, r3 retail
  // store (§VII.A).
  const RoleId family = roles.RegisterRole("family_member");
  const RoleId manager = roles.RegisterRole("manager");
  const RoleId store = roles.RegisterRole("retail_store");
  (void)manager;

  StreamCatalog streams;
  SchemaPtr schema = MovingObjectsGenerator::LocationSchema("Location");
  if (auto st = streams.RegisterStream(schema); !st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // Synthetic city road network (our Brinkhoff-generator substitute) with
  // objects walking it. Policies rotate: every block of 10 updates carries
  // one sp naming who may currently see those objects.
  MovingObjectsOptions opts;
  opts.num_objects = 500;
  opts.num_updates = 5000;
  opts.tuples_per_sp = 10;
  opts.roles_per_policy = 2;
  opts.role_pool = 3;  // policies drawn over {family, manager, store}
  opts.seed = 99;
  MovingObjectsGenerator gen(&roles, RoadNetwork::Grid({}), opts);
  std::vector<StreamElement> elements = gen.Generate();

  size_t n_sps = 0, n_tuples = 0;
  for (const auto& e : elements) {
    n_sps += e.is_sp();
    n_tuples += e.is_tuple();
  }
  std::cout << "generated " << n_tuples << " location updates guarded by "
            << n_sps << " security punctuations\n";

  // The store's continuous query (the paper's two-mile-region query; our
  // synthetic city uses meters).
  Planner planner(&streams, &roles);
  auto query = ParseSelect(
      "SELECT object_id, x, y FROM Location "
      "WHERE DISTANCE(x, y, 1450, 1450) <= 800");
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  ExecContext ctx{&roles, &streams};
  auto run_for = [&](const std::string& who, RoleId role) {
    auto plan = planner.PlanSelect(*query, RoleSet::Of(role));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return;
    }
    Pipeline pipeline(&ctx);
    auto built =
        BuildPhysicalPlan(&pipeline, *plan, {{"Location", elements}});
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return;
    }
    pipeline.Run(64);
    const auto tuples = built->sink->Tuples();
    std::cout << "\n'" << who << "' query: " << tuples.size()
              << " in-region updates visible";
    if (!tuples.empty()) {
      std::cout << "; e.g. object " << tuples.front().tid << " at ("
                << tuples.front().values[1].ToString() << ", "
                << tuples.front().values[2].ToString() << ")";
    }
    std::cout << "\n";
  };

  run_for("retail store (context-aware advertiser)", store);
  run_for("family member", family);

  std::cout << "\nBoth queries run the same plan; the in-stream policies "
               "decide per segment\nwho receives which objects — the store "
               "is blocked exactly where people opted out.\n";
  return 0;
}
