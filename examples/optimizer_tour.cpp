// Optimizer tour — the security-aware algebra at work (§VI):
// shows a query plan before and after optimization, the Table II rewrites
// the optimizer considered, the §VI.A cost estimates that drove the choice,
// and the multi-query merge/split sharing construction.
#include <iostream>

#include "optimizer/optimizer.h"
#include "query/logical_plan.h"

using namespace spstream;

int main() {
  RoleCatalog roles;
  auto ids = roles.RegisterSyntheticRoles(8);
  SchemaPtr s1 = MakeSchema("GpsA", {Field{"key", ValueType::kInt64},
                                     Field{"x", ValueType::kDouble}});
  SchemaPtr s2 = MakeSchema("GpsB", {Field{"key", ValueType::kInt64},
                                     Field{"y", ValueType::kDouble}});

  // A shielded join: ψ_q( GpsA ⋈ GpsB ) — the shield initially sits at the
  // root (post-filtering).
  RoleSet q = RoleSet::FromIds({ids[0], ids[3]});
  auto plan = LogicalNode::Ss(
      {q}, LogicalNode::Join(0, 0, /*window=*/100,
                             LogicalNode::Source("GpsA", s1),
                             LogicalNode::Source("GpsB", s2)));

  CostModelOptions mopts;
  mopts.ss_selectivity = 0.1;  // the shield kills 90% of segments
  mopts.sp_selectivity = 0.1;
  CostModel model({{"GpsA", SourceStats{200, 20}},
                   {"GpsB", SourceStats{200, 20}}},
                  mopts);

  std::cout << "== initial plan (post-filtering) ==\n"
            << plan->ToString() << "estimated cost: "
            << model.PlanCost(plan) << "\n\n";

  std::cout << "== Table II rewrites available at this plan ==\n";
  for (const LogicalNodePtr& n : Neighbors(plan)) {
    std::cout << "candidate (cost " << model.PlanCost(n) << "):\n"
              << n->ToString() << "\n";
  }

  Optimizer optimizer(&model);
  auto best = optimizer.Optimize(plan);
  std::cout << "== optimized plan ==\n"
            << best->ToString() << "estimated cost: " << model.PlanCost(best)
            << "  (evaluated " << optimizer.last_candidates_evaluated()
            << " candidates)\n\n";

  // Rule 1 in action: split a two-predicate shield into a cascade.
  auto conjunctive =
      LogicalNode::Ss({RoleSet::Of(ids[0]), RoleSet::Of(ids[1])},
                      LogicalNode::Source("GpsA", s1));
  std::cout << "== Rule 1: splitting ψ{p1,p2} ==\nbefore:\n"
            << conjunctive->ToString() << "after SplitSs:\n"
            << SplitSs(conjunctive)->ToString() << "\n";

  // Multi-query sharing: merged shield before the shared subplan, split
  // shields after it (§VI.C).
  std::vector<RoleSet> query_roles = {RoleSet::Of(ids[0]),
                                      RoleSet::Of(ids[1]),
                                      RoleSet::Of(ids[2])};
  SharedPlan shared =
      BuildSharedPlan(LogicalNode::Source("GpsA", s1), query_roles);
  std::cout << "== multi-query sharing (3 queries) ==\nshared trunk:\n"
            << shared.trunk->ToString();
  for (size_t i = 0; i < shared.query_roots.size(); ++i) {
    std::cout << "query " << i + 1 << " root: "
              << shared.query_roots[i]->Describe() << "\n";
  }
  std::cout << "\nThe merged shield discards data no query may see before "
               "the shared work;\neach split shield then narrows the shared "
               "result to its own subject.\n";
  return 0;
}
